// Migration plane bench (Ablation S).
//
// Claim: when a cluster dies mid-flight under a long alignment job,
// failover-by-restore — resume on a survivor from the latest
// replicated /ndn/k8s/ckpt epoch — lands the result materially sooner
// than failover-by-recompute (cold resubmit of the same request), and
// the no-failure path pays < 5% modeled checkpoint overhead for that
// insurance. The incident replays byte-identically from the same
// seed. Results land in BENCH_migration.json.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/semantic_name.hpp"
#include "genomics/datasets.hpp"
#include "migrate/checkpoint.hpp"
#include "migrate/coordinator.hpp"
#include "replica/directory.hpp"
#include "replica/policy.hpp"
#include "replica/repair.hpp"
#include "replica/scheduler.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace lidc;

constexpr double kCkptIntervalSeconds = 300.0;
constexpr double kCrashAtSeconds = 750.0;  // mid-epoch-3, after 2 writes

enum class Mode {
  kClean,      // no failure: measures the checkpoint overhead
  kResume,     // crash; coordinator restores from the survivor replica
  kRecompute,  // crash; no checkpoints exist, cold fallback reruns all
};

struct RunOutcome {
  bool completed = false;
  double makespanSeconds = -1.0;
  double jobRuntimeSeconds = -1.0;
  double ckptOverheadSeconds = 0.0;
  migrate::MigrationCounters counters;
  std::string decisions;
};

/// Same world as the migration integration test: a rice-sample
/// MiniBlast job on east, west as the survivor, the replica plane
/// keeping checkpoint copies on both sides.
RunOutcome runScenario(Mode mode) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  genomics::DatasetCatalog catalog(/*scale=*/0.05);
  overlay.addNode("client-host");
  overlay.addNode("ops-host");

  auto addCluster = [&](const std::string& name) -> core::ComputeCluster* {
    core::ComputeClusterConfig config;
    config.name = name;
    // 10x testbed throughput: ~minutes of simulated time, not ~8 h.
    config.blast.throughputBytesPerSec = 1.2e6;
    auto& cc = overlay.addCluster(config);
    cc.loadGenomicsDatasets(catalog);
    cc.enableCheckpointServing();
    return &cc;
  };
  auto* east = addCluster("east");
  auto* west = addCluster("west");
  overlay.connect("client-host", "east",
                  net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "west",
                  net::LinkParams{sim::Duration::millis(30)});
  overlay.connect("ops-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("ops-host", "west", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("east", "west", net::LinkParams{sim::Duration::millis(10)});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  replica::ReplicaCatalog eastCatalog(east->forwarder(), "east");
  replica::ReplicaCatalog westCatalog(west->forwarder(), "west");
  replica::PlacementPolicy policy;
  std::optional<migrate::CheckpointManager> eastCkpt;
  std::optional<migrate::CheckpointManager> westCkpt;
  if (mode != Mode::kRecompute) {
    migrate::CheckpointOptions ckptOptions;
    ckptOptions.interval = sim::Duration::seconds(kCkptIntervalSeconds);
    eastCkpt.emplace(east->cluster(), east->store(), ckptOptions, &eastCatalog,
                     &policy);
    westCkpt.emplace(west->cluster(), west->store(), ckptOptions, &westCatalog,
                     &policy);
  }
  replica::TransferScheduler eastSched(east->forwarder(), east->store(), "east",
                                       replica::TransferOptions{},
                                       &eastCatalog);
  replica::TransferScheduler westSched(west->forwarder(), west->store(), "west",
                                       replica::TransferOptions{},
                                       &westCatalog);
  replica::ReplicaDirectory directory(*overlay.topology().node("ops-host"));
  directory.watchCluster("east");
  directory.watchCluster("west");
  replica::RepairLoop repair(sim, directory, policy);
  repair.addScheduler("east", &eastSched);
  repair.addScheduler("west", &westSched);
  directory.start();
  repair.start();

  core::LidcClient user(*overlay.topology().node("client-host"), "user");
  core::LidcClient ops(*overlay.topology().node("ops-host"), "ops");
  migrate::MigrationCoordinator coordinator(ops, /*placement=*/nullptr,
                                            &directory);
  coordinator.addScheduler("east", &eastSched);
  coordinator.addScheduler("west", &westSched);
  coordinator.routeInstaller = [&overlay](const std::string& oldCluster,
                                          const std::string& oldJobId,
                                          const std::string& target) {
    overlay.topology().installRoutesTo(
        core::makeStatusName(oldCluster, oldJobId), target);
  };

  core::ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";
  std::optional<Result<core::SubmitResult>> ack;
  user.submit(request,
              [&ack](Result<core::SubmitResult> r) { ack = std::move(r); });
  sim.runUntil(sim::Time() + sim::Duration::seconds(2));
  RunOutcome out;
  if (!ack.has_value() || !ack->ok()) return out;
  coordinator.track(**ack, request);
  const std::string originalJobId = (*ack)->jobId;

  std::optional<Result<core::JobStatusSnapshot>> final;
  sim::Time doneAt;
  auto settle = [&final, &doneAt, &sim](Result<core::JobStatusSnapshot> r) {
    final = std::move(r);
    doneAt = sim.now();
  };

  sim::ChaosEngine chaos(sim);
  if (mode == Mode::kClean) {
    user.waitForCompletion(ndn::Name((*ack)->statusName), settle);
  } else {
    const sim::Time crashAt =
        sim::Time() + sim::Duration::seconds(kCrashAtSeconds);
    chaos.clusterCrash("east-crash", east->cluster(), crashAt);
    chaos.custom("east-blackout", crashAt,
                 [&overlay] { overlay.failCluster("east"); });
    // The failover settles ~2 s after the crash (2 probe misses +
    // resubmit); watch whichever job id the coordinator is now
    // tracking. The original-name alias path is the integration
    // test's concern — here both arms get the same observer.
    chaos.custom("watch", crashAt + sim::Duration::seconds(20),
                 [&ops, &coordinator, &originalJobId, &settle] {
                   ops.waitForCompletion(
                       coordinator.currentStatusName(originalJobId), settle);
                 });
  }

  sim.runUntil(sim::Time() + sim::Duration::hours(2));
  repair.stop();
  directory.stop();
  sim.run();

  if (final.has_value() && final->ok() &&
      (*final)->state == k8s::JobState::kCompleted) {
    out.completed = true;
    out.makespanSeconds = (doneAt - sim::Time()).toSeconds();
    out.jobRuntimeSeconds = (*final)->runtime.toSeconds();
  }
  if (eastCkpt.has_value()) {
    out.ckptOverheadSeconds = eastCkpt->totalOverhead().toSeconds();
  }
  out.counters = coordinator.counters();
  out.decisions = coordinator.decisionLog();
  return out;
}

}  // namespace

int main() {
  using bench::fmt;

  bench::printHeader(
      "Ablation S: failover-by-restore vs failover-by-recompute");
  std::printf("rice-sample MiniBlast (scale 0.05), ckpt every %.0f s, "
              "east crashes at t=%.0f s\n",
              kCkptIntervalSeconds, kCrashAtSeconds);

  const RunOutcome clean = runScenario(Mode::kClean);
  const RunOutcome resume = runScenario(Mode::kResume);
  const RunOutcome replay = runScenario(Mode::kResume);
  const RunOutcome recompute = runScenario(Mode::kRecompute);
  if (!clean.completed || !resume.completed || !replay.completed ||
      !recompute.completed) {
    std::printf("FATAL: a run did not complete\n%s\n",
                resume.decisions.c_str());
    return 1;
  }

  const double overheadPct =
      100.0 * clean.ckptOverheadSeconds / clean.jobRuntimeSeconds;
  bench::printRow({"mode", "makespan_s", "job_runtime_s", "migrations"});
  bench::printRule(4);
  bench::printRow({"clean", fmt(clean.makespanSeconds),
                   fmt(clean.jobRuntimeSeconds),
                   std::to_string(clean.counters.completed)});
  bench::printRow({"resume", fmt(resume.makespanSeconds),
                   fmt(resume.jobRuntimeSeconds),
                   std::to_string(resume.counters.completed)});
  bench::printRow({"recompute", fmt(recompute.makespanSeconds),
                   fmt(recompute.jobRuntimeSeconds),
                   std::to_string(recompute.counters.completed)});
  const double savedSeconds = recompute.makespanSeconds - resume.makespanSeconds;
  std::printf("restore saves %s s over recompute; no-failure ckpt overhead "
              "%s%% of runtime\n",
              fmt(savedSeconds).c_str(), fmt(overheadPct).c_str());

  const bool deterministic = replay.decisions == resume.decisions &&
                             replay.makespanSeconds == resume.makespanSeconds;

  bench::JsonReport report("migration");
  report.add("makespan_clean_s", clean.makespanSeconds);
  report.add("makespan_resume_s", resume.makespanSeconds);
  report.add("makespan_recompute_s", recompute.makespanSeconds);
  report.add("failover_saved_s", savedSeconds);
  report.add("ckpt_overhead_pct", overheadPct);
  report.add("resume_migrations", static_cast<double>(resume.counters.completed));
  report.add("recompute_cold_fallbacks",
             static_cast<double>(recompute.counters.coldFallbacks));
  report.add("deterministic", deterministic ? 1.0 : 0.0);
  report.write();

  // Self-checks: the claims this ablation exists to defend. "Materially
  // lower" means the restore arm wins by at least half a checkpoint
  // interval — anything less and the insurance isn't paying out.
  const bool restoreFaster =
      resume.makespanSeconds + 0.5 * kCkptIntervalSeconds <
      recompute.makespanSeconds;
  const bool overheadBounded = overheadPct > 0.0 && overheadPct < 5.0;
  const bool armsBehaved = resume.counters.completed == 1 &&
                           resume.counters.coldFallbacks == 0 &&
                           recompute.counters.coldFallbacks == 1;
  std::printf("\nrestore materially faster: %s; overhead < 5%%: %s; "
              "arms behaved: %s; deterministic replay: %s\n",
              restoreFaster ? "yes" : "NO (regression)",
              overheadBounded ? "yes" : "NO (regression)",
              armsBehaved ? "yes" : "NO (regression)",
              deterministic ? "yes" : "NO (regression)");
  return restoreFaster && overheadBounded && armsBehaved && deterministic ? 0
                                                                          : 1;
}
