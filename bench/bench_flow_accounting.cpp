// Flow-accounting cost and accuracy: what one LinkFlowStats tap costs
// per packet (the forwarder hot path), what full attribute() costs per
// Data at a link face, how the Space-Saving + Count-Min top-k tracks
// exact counting on a Zipf workload (deterministic, so the JSON gates
// regressions), and what flow accounting does to two-node forwarder
// throughput. Under -DLIDC_DISABLE_TELEMETRY=ON the taps compile away
// and the hot-path rows read ~0. Results go to BENCH_flow_accounting.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "net/topology.hpp"
#include "telemetry/flow.hpp"

namespace {

using namespace lidc;

/// Keeps the compiler from deleting the measured loop.
inline void sink(std::uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per iteration of `body` over `iters` runs.
template <typename Body>
double measureNs(std::uint64_t iters, Body body) {
  const double start = nowSeconds();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  return (nowSeconds() - start) * 1e9 / static_cast<double>(iters);
}

/// Uniform [0,1) from raw mt19937_64 output — std::uniform_real_distribution
/// is implementation-defined, and the sketch-accuracy metrics below are
/// regression-gated, so the sampling must be bit-stable everywhere.
double uniform01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
}

struct SketchAccuracy {
  double topkMisses = 0;       // true top-k keys absent from the sketch top-k
  double maxErrorPct = 0;      // worst overestimate among reported talkers
  double boundPct = 0;         // Space-Saving guarantee: N / capacity
};

/// 200k Zipf(1.1) draws over 10k distinct flow keys through a
/// 16-counter Space-Saving sketch, compared against exact counting.
SketchAccuracy sketchAccuracyOnZipf() {
  constexpr std::size_t kDistinct = 10'000;
  constexpr std::uint64_t kDraws = 200'000;
  constexpr std::size_t kTopK = 8;
  constexpr std::size_t kCapacity = 16;

  std::vector<double> cumulative(kDistinct);
  double total = 0;
  for (std::size_t rank = 0; rank < kDistinct; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), 1.1);
    cumulative[rank] = total;
  }

  telemetry::SpaceSaving sketch(kCapacity);
  std::map<std::string, std::uint64_t> exact;
  std::mt19937_64 rng(0x51ed);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const double u = uniform01(rng) * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::string key = "tenant-" + std::to_string(rank);
    exact[key] += 1;
    sketch.add(key, 1);
  }

  // Exact top-k, count desc then key asc (the sketch's own tiebreak).
  std::vector<std::pair<std::string, std::uint64_t>> ranked(exact.begin(),
                                                            exact.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  SketchAccuracy result;
  auto reported = sketch.top();
  if (reported.size() > kTopK) reported.resize(kTopK);
  for (std::size_t i = 0; i < kTopK && i < ranked.size(); ++i) {
    bool found = false;
    for (const auto& entry : reported) {
      if (entry.key == ranked[i].first) found = true;
    }
    if (!found) result.topkMisses += 1;
  }
  for (const auto& entry : reported) {
    const auto it = exact.find(entry.key);
    const std::uint64_t truth = it == exact.end() ? 0 : it->second;
    const double errorPct =
        100.0 * static_cast<double>(entry.count - std::min(entry.count, truth)) /
        static_cast<double>(kDraws);
    result.maxErrorPct = std::max(result.maxErrorPct, errorPct);
  }
  result.boundPct = 100.0 / static_cast<double>(kCapacity);
  return result;
}

/// Full consumer->A->link->B->producer exchanges (distinct names, no
/// caching), optionally with both forwarders' link faces tapped.
double linkThroughput(bool withFlow, std::uint64_t exchanges) {
  sim::Simulator sim;
  net::Topology topology(sim);
  ndn::Forwarder& a = topology.addNode("a");
  ndn::Forwarder& b = topology.addNode("b");
  topology.connect("a", "b", net::LinkParams{sim::Duration::micros(1)});
  a.cs().setCapacity(0);
  b.cs().setCapacity(0);
  topology.installRoutesTo(ndn::Name("/svc"), "b");

  telemetry::FlowAccountant accountant(sim);
  if (withFlow) {
    a.attachFlowAccounting(accountant);
    b.attachFlowAccounting(accountant);
  }

  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 901);
  auto producer = std::make_shared<ndn::AppFace>("app://p", sim, 902);
  a.addFace(consumer);
  b.addFace(producer);
  b.registerPrefix(ndn::Name("/svc"), producer->id());
  producer->setInterestHandler([&producer](const ndn::Interest& interest) {
    ndn::Data data(interest.name());
    data.setContent("r");
    data.sign();
    producer->putData(std::move(data));
  });

  const double start = nowSeconds();
  for (std::uint64_t i = 0; i < exchanges; ++i) {
    bool done = false;
    consumer->expressInterest(
        ndn::Interest(ndn::Name("/svc").appendNumber(i)),
        [&done](const ndn::Interest&, const ndn::Data&) { done = true; });
    sim.run();
    sink(done ? 1 : 0);
  }
  return static_cast<double>(exchanges) / (nowSeconds() - start);
}

}  // namespace

int main() {
  bench::JsonReport report("flow_accounting");

  bench::printHeader("Link tap hot path (per packet)");
  bench::printRow({"op", "ns"});
  bench::printRule(2);
  sim::Simulator sim;
  constexpr std::uint64_t kPackets = 20'000'000;
  telemetry::LinkFlowStats stats(sim, /*bucketWidthNs=*/1'000'000'000ULL);
  const double onDataNs =
      measureNs(kPackets, [&stats](std::uint64_t i) { stats.onData(1500 + (i & 7)); });
  sink(stats.bytes());
  bench::printRow({"onData", bench::fmt(onDataNs, "%.3f")});
  const double onInterestNs =
      measureNs(kPackets, [&stats](std::uint64_t) { stats.onInterest(40); });
  sink(stats.interests());
  bench::printRow({"onInterest", bench::fmt(onInterestNs, "%.3f")});
  report.add("hot_path_ns_per_packet", onDataNs);

  bench::printHeader("attribute() per Data at a link face");
  bench::printRow({"op", "ns"});
  bench::printRule(2);
  telemetry::FlowAccountant accountant(sim);
  accountant.registerLink("link://a->b");
  telemetry::FlowKey key;
  key.group = "data";
  key.tenant = "acme";
  const double attributeNs = measureNs(2'000'000, [&](std::uint64_t i) {
    accountant.attribute("link://a->b", key, 1500, (i & 1) != 0);
  });
  sink(accountant.revision());
  bench::printRow({"attribute", bench::fmt(attributeNs, "%.3f")});
  report.add("attribute_ns_per_data", attributeNs);

  bench::printHeader("Sketch accuracy vs exact (Zipf 1.1, 200k draws)");
  bench::printRow({"metric", "value"});
  bench::printRule(2);
  const SketchAccuracy accuracy = sketchAccuracyOnZipf();
  bench::printRow({"topk-misses", bench::fmt(accuracy.topkMisses, "%.0f")});
  bench::printRow({"max-error-pct", bench::fmt(accuracy.maxErrorPct, "%.4f")});
  bench::printRow({"bound-pct", bench::fmt(accuracy.boundPct, "%.4f")});
  report.add("topk_miss_count", accuracy.topkMisses);
  report.add("sketch_max_error_pct", accuracy.maxErrorPct);

  bench::printHeader("Two-node forwarder throughput: flow tap on vs off");
  bench::printRow({"mode", "exchanges/s"});
  bench::printRule(2);
  // Alternate modes and keep the best of each: a single 20k-exchange
  // run is ~250 ms, well inside scheduler-noise territory, and the
  // best-of estimate converges on the unloaded cost of each mode.
  constexpr std::uint64_t kExchanges = 20'000;
  constexpr int kRounds = 5;
  double off = 0.0;
  double on = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    off = std::max(off, linkThroughput(false, kExchanges));
    on = std::max(on, linkThroughput(true, kExchanges));
  }
  bench::printRow({"off", bench::fmt(off, "%.0f")});
  bench::printRow({"flow", bench::fmt(on, "%.0f")});
  const double overheadPct = 100.0 * (off - on) / off;
  std::printf("flow-accounting overhead: %.1f%%\n", overheadPct);
  report.add("throughput_off_per_sec", off);
  report.add("throughput_flow_per_sec", on);
  report.add("flow_overhead_pct", overheadPct);

  std::printf(
      "shape check: the per-packet tap is two relaxed fetch_adds plus a\n"
      "bucket-epoch check; attribution (mutex + sketch) runs once per Data\n"
      "at a link face, not per hop; Space-Saving error stays within\n"
      "N/capacity and the true heavy hitters survive the 16-slot sketch.\n");
  report.write();
  // The sketch claims are deterministic (fixed seeds), so they gate
  // here directly — the regression script skips zero baselines.
  if (accuracy.topkMisses > 0) {
    std::fprintf(stderr, "FAIL: true top-k keys missing from the sketch\n");
    return 1;
  }
  if (accuracy.maxErrorPct > accuracy.boundPct) {
    std::fprintf(stderr, "FAIL: Space-Saving error exceeds the N/k bound\n");
    return 1;
  }
  return 0;
}
