// Workflow engine bench.
//
// Claim (paper SI/SVII): scientific workflows are DAGs of named compute
// stages whose intermediates live in the data lake, and data–compute
// affinity decides the bill for moving them. This bench runs a
// fan-out/fan-in pipeline (prep -> t1..t4 -> merge) on a two-cluster
// overlay and reports (a) DAG-concurrent vs strictly sequential
// makespan and (b) intermediate bytes moved over the overlay with
// locality-aware placement on vs off. Results also land in
// BENCH_workflow.json for machine tracking.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "workflow/engine.hpp"

namespace {

using namespace lidc;

constexpr std::size_t kInputBytes = 256 * 1024;
constexpr int kFanOut = 4;

std::vector<std::uint8_t> rawInput() {
  std::vector<std::uint8_t> bytes(kInputBytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>("ACGT"[i % 4]);
  }
  return bytes;
}

/// prep fans out to kFanOut transforms which merge back — the smallest
/// DAG where concurrency and data placement both matter.
workflow::WorkflowSpec pipelineSpec() {
  workflow::WorkflowSpec spec;
  spec.id = "bench";

  workflow::StageSpec prep;
  prep.name = "prep";
  prep.app = "transform";
  prep.cpu = MilliCpu::fromCores(2);
  prep.memory = ByteSize::fromGiB(1);
  prep.lakeInputs = {"raw/sample"};
  spec.addStage(prep);

  workflow::StageSpec merge;
  merge.name = "merge";
  merge.app = "transform";
  merge.cpu = MilliCpu::fromCores(2);
  merge.memory = ByteSize::fromGiB(1);

  for (int i = 0; i < kFanOut; ++i) {
    workflow::StageSpec stage;
    stage.name = "t" + std::to_string(i);
    stage.app = "transform";
    stage.cpu = MilliCpu::fromCores(2);
    stage.memory = ByteSize::fromGiB(1);
    stage.params["tag"] = "branch-" + std::to_string(i);
    stage.stageInputs = {{"prep", "input"}};
    spec.addStage(stage);
    merge.stageInputs.push_back({stage.name, ""});
  }
  spec.addStage(merge);
  return spec;
}

struct RunResult {
  workflow::WorkflowOutcome outcome;
  std::uint64_t bytesMoved = 0;
};

/// Builds a fresh two-cluster world (near/far) and runs the pipeline
/// with the given engine options. Deterministic per configuration.
std::optional<RunResult> runScenario(workflow::WorkflowOptions options) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  for (const std::string& name : {std::string("near"), std::string("far")}) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 4;
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    // Locality-off staging republishes the ~1 MiB merge output.
    config.gateway.maxPublishBytes = 8u << 20;
    auto& cc = overlay.addCluster(config);
    // ~8 s per 256 KiB stage so orchestration overheads don't dominate.
    apps::TransformConfig slow;
    slow.bytesPerSecondPerCore = 32'768.0;
    slow.scalingEfficiency = 0.0;
    apps::installTransformApp(cc.cluster(), cc.store(), slow);
    ndn::Name rawName = core::kDataPrefix;
    rawName.append("raw").append("sample");
    (void)cc.store().put(rawName, rawInput());
  }
  overlay.connect("client-host", "near", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "far", net::LinkParams{sim::Duration::millis(40)});
  overlay.announceCluster("near");
  overlay.announceCluster("far");

  core::ClientOptions clientOptions;
  clientOptions.statusPollInterval = sim::Duration::seconds(1);
  core::LidcClient client(*overlay.topology().node("client-host"), "bench-user",
                          clientOptions, /*seed=*/777);
  workflow::WorkflowEngine engine(client, std::move(options));

  std::optional<RunResult> result;
  engine.run(pipelineSpec(), [&](Result<workflow::WorkflowOutcome> r) {
    if (r.ok()) result = RunResult{std::move(r).value(), 0};
  });
  sim.run();
  if (result.has_value()) result->bytesMoved = engine.bytesMoved();
  return result;
}

}  // namespace

int main() {
  using bench::fmt;

  bench::printHeader("Workflow DAG orchestration (prep -> t1..t4 -> merge)");
  std::printf("input %zu KiB, %d-way fan-out, two clusters (5 ms / 40 ms)\n",
              kInputBytes / 1024, kFanOut);

  workflow::WorkflowOptions dag;  // concurrent, locality-aware
  workflow::WorkflowOptions sequential;
  sequential.maxConcurrentStages = 1;
  workflow::WorkflowOptions noLocality;
  noLocality.localityAware = false;

  const auto dagRun = runScenario(dag);
  const auto seqRun = runScenario(sequential);
  const auto noLocRun = runScenario(noLocality);
  if (!dagRun || !seqRun || !noLocRun || !dagRun->outcome.succeeded ||
      !seqRun->outcome.succeeded || !noLocRun->outcome.succeeded) {
    std::printf("FATAL: a workflow run did not complete\n");
    return 1;
  }

  const double dagMakespan = dagRun->outcome.makespan.toSeconds();
  const double seqMakespan = seqRun->outcome.makespan.toSeconds();

  bench::printHeader("DAG-concurrent vs sequential makespan");
  bench::printRow({"mode", "makespan_s", "stages", "succeeded"});
  bench::printRule(4);
  bench::printRow({"dag-concurrent", fmt(dagMakespan),
                   std::to_string(dagRun->outcome.stages.size()),
                   dagRun->outcome.succeeded ? "yes" : "no"});
  bench::printRow({"sequential", fmt(seqMakespan),
                   std::to_string(seqRun->outcome.stages.size()),
                   seqRun->outcome.succeeded ? "yes" : "no"});
  std::printf("speedup: %sx\n", fmt(seqMakespan / dagMakespan).c_str());

  bench::printHeader("locality-aware placement vs naive staging");
  bench::printRow({"placement", "bytes_moved", "makespan_s"});
  bench::printRule(3);
  bench::printRow({"locality-on", std::to_string(dagRun->bytesMoved),
                   fmt(dagMakespan)});
  bench::printRow({"locality-off", std::to_string(noLocRun->bytesMoved),
                   fmt(noLocRun->outcome.makespan.toSeconds())});

  bench::JsonReport report("workflow");
  report.add("dag_makespan_s", dagMakespan);
  report.add("sequential_makespan_s", seqMakespan);
  report.add("speedup", seqMakespan / dagMakespan);
  report.add("locality_on_bytes_moved", static_cast<double>(dagRun->bytesMoved));
  report.add("locality_off_bytes_moved",
             static_cast<double>(noLocRun->bytesMoved));
  report.add("locality_off_makespan_s", noLocRun->outcome.makespan.toSeconds());
  report.add("stages", static_cast<double>(dagRun->outcome.stages.size()));
  report.write();

  const bool dagFaster = dagMakespan < seqMakespan;
  const bool localityCheaper = dagRun->bytesMoved < noLocRun->bytesMoved;
  std::printf("\nDAG faster than sequential: %s; locality moves fewer bytes: %s\n",
              dagFaster ? "yes" : "NO (regression)",
              localityCheaper ? "yes" : "NO (regression)");
  return dagFaster && localityCheaper ? 0 : 1;
}
