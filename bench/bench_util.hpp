// Shared helpers for LIDC bench binaries: fixed-width table printing
// and a tiny stats accumulator. Bench binaries print the same rows the
// paper's tables/figures report; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

namespace lidc::bench {

/// Prints a row of fixed-width columns.
inline void printRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void printRule(std::size_t columns, int width = 14) {
  std::printf("%s\n", std::string(columns * static_cast<std::size_t>(width), '-').c_str());
}

inline void printHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Mean / p50 / p95 over a sample set.
struct Summary {
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
};

inline Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  s.p50 = samples[samples.size() / 2];
  s.p95 = samples[std::min(samples.size() - 1,
                           static_cast<std::size_t>(samples.size() * 0.95))];
  s.min = samples.front();
  s.max = samples.back();
  return s;
}

inline std::string fmt(double value, const char* format = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Machine-readable bench output: collects metric name -> value pairs
/// and writes them as BENCH_<name>.json next to the working directory,
/// so the perf trajectory of every bench can be tracked across commits.
/// Metrics keep insertion order; integral values are emitted without a
/// fractional part so the files diff cleanly.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  /// Serialises to a stable, human-diffable JSON object.
  [[nodiscard]] std::string toJson() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\"";
    for (const auto& [metric, value] : metrics_) {
      out += ",\n  \"" + metric + "\": ";
      if (std::nearbyint(value) == value && std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        out += buf;
      } else {
        out += fmt(value, "%.6f");
      }
    }
    out += "\n}\n";
    return out;
  }

  /// Writes BENCH_<name>.json into the current working directory and
  /// reports the path on stdout.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::printf("could not write %s\n", path.c_str());
      return;
    }
    const std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace lidc::bench
