// Chaos recovery sweep.
//
// Claim (paper SI): computations continue "as long as some cluster is
// reachable". This bench drives the chaos engine at increasing fault
// intensity — lossy access links plus a mid-run crash of the nearest
// cluster with a gateway blackout — and reports per-intensity job
// completion rate and the added end-to-end latency (p50/p99) relative
// to a fault-free run of the same workload.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace lidc;

constexpr int kJobs = 20;
constexpr double kJobSpacingSec = 0.75;

void registerSleeper(core::ComputeCluster& cluster) {
  cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(20);
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
}

struct RunStats {
  int completed = 0;
  int failed = 0;
  int failovers = 0;
  std::vector<double> latenciesSec;  // submit -> terminal outcome, per job
  std::uint64_t injections = 0;
};

/// One full workload run. `lossRate` shapes both access links; faults
/// (crash + blackout) are only planned when `withFaults` is set, so the
/// same function also produces the clean baseline.
RunStats runScenario(double lossRate, bool withFaults) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  core::ComputeClusterConfig config;
  config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(32)};
  config.nodeCount = 2;
  config.name = "near";
  auto& near = overlay.addCluster(config);
  registerSleeper(near);
  config.name = "far";
  auto& far = overlay.addCluster(config);
  registerSleeper(far);
  overlay.connect("client-host", "near",
                  net::LinkParams{sim::Duration::millis(5), 0.0, lossRate});
  overlay.connect("client-host", "far",
                  net::LinkParams{sim::Duration::millis(40), 0.0, lossRate});
  overlay.announceCluster("near");
  overlay.announceCluster("far");

  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 10;
  options.maxStatusPollFailures = 6;
  options.maxFailovers = 10;
  options.deadline = sim::Duration::minutes(15);
  core::LidcClient client(*overlay.topology().node("client-host"), "bench",
                          options, /*seed=*/777);

  sim::ChaosEngine chaos(sim, /*seed=*/4242);
  if (withFaults) {
    const sim::Time crashAt = sim::Time::fromNanos(0) + sim::Duration::seconds(15);
    chaos.clusterCrash("near-crash", near.cluster(), crashAt);
    chaos.blackout("near-gw-dark", crashAt, sim::Duration::seconds(10),
                   [&near](bool on) { near.gateway().setBlackout(on); });
  }

  RunStats stats;
  for (int i = 0; i < kJobs; ++i) {
    const sim::Time submitAt =
        sim::Time::fromNanos(0) + sim::Duration::seconds(kJobSpacingSec * i);
    sim.scheduleAt(submitAt, [&, submitAt] {
      core::ComputeRequest request;
      request.app = "sleep";
      request.cpu = MilliCpu::fromCores(1);
      request.memory = ByteSize::fromGiB(1);
      client.runToCompletion(request, [&, submitAt](Result<core::JobOutcome> r) {
        if (r.ok() && r->finalStatus.state == k8s::JobState::kCompleted) {
          ++stats.completed;
          stats.failovers += r->failovers;
          stats.latenciesSec.push_back((sim.now() - submitAt).toSeconds());
        } else {
          ++stats.failed;
        }
      });
    });
  }
  sim.run();
  stats.injections = chaos.totalInjections();
  return stats;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      static_cast<double>(samples.size()) * p);
  return samples[std::min(samples.size() - 1, index)];
}

}  // namespace

int main() {
  bench::printHeader(
      "Chaos recovery: nearest-cluster crash + gateway blackout under loss");
  std::printf("workload: %d one-core 20 s jobs, one every %.2f s; crash at t=15 s\n",
              kJobs, kJobSpacingSec);

  const RunStats baseline = runScenario(/*lossRate=*/0.0, /*withFaults=*/false);
  const double basP50 = percentile(baseline.latenciesSec, 0.50);
  const double basP99 = percentile(baseline.latenciesSec, 0.99);
  std::printf("fault-free baseline: %d/%d complete, p50 %.1f s, p99 %.1f s\n\n",
              baseline.completed, kJobs, basP50, basP99);

  bench::JsonReport report("chaos_recovery");
  report.add("baseline_completed", baseline.completed);
  report.add("baseline_p50_s", basP50);
  report.add("baseline_p99_s", basP99);

  bench::printRow({"loss-rate", "complete", "failovers", "p50-added", "p99-added"});
  bench::printRule(5);
  for (const double loss : {0.05, 0.15, 0.30}) {
    const RunStats stats = runScenario(loss, /*withFaults=*/true);
    bench::printRow({bench::fmt(loss * 100, "%.0f%%"),
                     std::to_string(stats.completed) + "/" + std::to_string(kJobs),
                     std::to_string(stats.failovers),
                     bench::fmt(percentile(stats.latenciesSec, 0.50) - basP50, "%.1f") + "s",
                     bench::fmt(percentile(stats.latenciesSec, 0.99) - basP99, "%.1f") + "s"});
    const std::string key = "loss" + bench::fmt(loss * 100, "%.0f");
    report.add(key + "_completed", stats.completed);
    report.add(key + "_failovers", stats.failovers);
    report.add(key + "_p50_added_s", percentile(stats.latenciesSec, 0.50) - basP50);
    report.add(key + "_p99_added_s", percentile(stats.latenciesSec, 0.99) - basP99);
  }

  std::printf(
      "\nshape check: completion stays at %d/%d across intensities — failed\n"
      "jobs are resubmitted to the survivor — while the latency penalty\n"
      "grows with loss (more submit retries and poll re-expressions burn\n"
      "backoff time before the failover lands).\n",
      kJobs, kJobs);
  report.write();
  return 0;
}
