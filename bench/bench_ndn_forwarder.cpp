// Ablation H — NDN data-plane microbenchmarks (google-benchmark).
//
// Host-time costs of the primitives every LIDC operation rides on:
// name parsing, TLV encode/decode, FIB longest-prefix match at several
// table sizes, Content Store insert/lookup, and the full forwarder
// Interest->Data exchange.
#include <benchmark/benchmark.h>

#include "bench_gbench_util.hpp"

#include "common/rng.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"

namespace {

using namespace lidc;

void BM_NameParse(benchmark::State& state) {
  const std::string uri = "/ndn/k8s/compute/mem=4&cpu=6&app=BLAST&srr_id=SRR2931415";
  for (auto _ : state) {
    ndn::Name name(uri);
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_NameParse);

void BM_NameToUri(benchmark::State& state) {
  const ndn::Name name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST");
  for (auto _ : state) {
    auto uri = name.toUri();
    benchmark::DoNotOptimize(uri);
  }
}
BENCHMARK(BM_NameToUri);

void BM_InterestEncode(benchmark::State& state) {
  ndn::Interest interest(ndn::Name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"));
  interest.setNonce(42);
  for (auto _ : state) {
    auto wire = interest.wireEncode();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_InterestEncode);

void BM_InterestDecode(benchmark::State& state) {
  ndn::Interest interest(ndn::Name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"));
  interest.setNonce(42);
  const auto wire = interest.wireEncode();
  for (auto _ : state) {
    auto decoded =
        ndn::Interest::wireDecode(std::span<const std::uint8_t>(wire));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_InterestDecode);

void BM_DataEncodeWithContent(benchmark::State& state) {
  ndn::Data data(ndn::Name("/ndn/k8s/data/object/seg=0"));
  data.setContent(std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  data.sign();
  for (auto _ : state) {
    auto wire = data.wireEncode();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataEncodeWithContent)->Arg(1024)->Arg(8 * 1024)->Arg(64 * 1024);

void BM_FibLongestPrefixMatch(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  ndn::Fib fib;
  Rng rng(3);
  for (std::size_t i = 0; i < entries; ++i) {
    ndn::Name prefix("/ndn/k8s");
    prefix.append("svc" + std::to_string(i % 97));
    prefix.append("inst" + std::to_string(i));
    fib.insert(prefix, static_cast<ndn::FaceId>(i % 16 + 1), i);
  }
  fib.insert(ndn::Name("/ndn/k8s/compute"), 1, 0);
  const ndn::Name lookup("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST/req=1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.longestPrefixMatch(lookup));
  }
}
BENCHMARK(BM_FibLongestPrefixMatch)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ContentStoreInsertFind(benchmark::State& state) {
  ndn::ContentStore cs(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  std::size_t counter = 0;
  for (auto _ : state) {
    ndn::Data data(ndn::Name("/ndn/k8s/data").appendNumber(counter % 10'000));
    data.setContent("payload");
    cs.insert(data, sim::Time::fromNanos(static_cast<std::int64_t>(counter)));
    ndn::Interest probe(ndn::Name("/ndn/k8s/data").appendNumber(rng.uniform(10'000)));
    benchmark::DoNotOptimize(
        cs.find(probe, sim::Time::fromNanos(static_cast<std::int64_t>(counter))));
    ++counter;
  }
}
BENCHMARK(BM_ContentStoreInsertFind)->Arg(1024)->Arg(16 * 1024);

void BM_ForwarderExchange(benchmark::State& state) {
  // Full pipeline: consumer Interest -> producer Data -> consumer,
  // single node, no link delay (host-time cost of the software path).
  sim::Simulator sim;
  ndn::Forwarder node("bench", sim);
  node.cs().setCapacity(0);  // measure the full path, not cache hits
  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  auto producer = std::make_shared<ndn::AppFace>("app://p", sim, 2);
  node.addFace(consumer);
  node.addFace(producer);
  node.registerPrefix(ndn::Name("/svc"), producer->id());
  producer->setInterestHandler([&producer](const ndn::Interest& interest) {
    ndn::Data data(interest.name());
    data.setContent("r");
    data.sign();
    producer->putData(std::move(data));
  });

  std::size_t counter = 0;
  for (auto _ : state) {
    ndn::Interest interest(ndn::Name("/svc").appendNumber(counter++));
    bool done = false;
    consumer->expressInterest(interest,
                              [&done](const ndn::Interest&, const ndn::Data&) {
                                done = true;
                              });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(counter));
}
BENCHMARK(BM_ForwarderExchange);

}  // namespace

int main(int argc, char** argv) {
  return lidc::bench::runBenchmarksWithJsonReport(argc, argv, "ndn_forwarder");
}
