// Ablation D — decentralized (LIDC) vs logically centralized control.
//
// Claims (paper SI, SVII): a centralized control plane (a) adds
// controller round trips to every operation, (b) is a single point of
// failure, and (c) needs manual cluster registration. This bench runs
// the same job stream through both control planes and then injects a
// controller outage.
#include <cstdio>

#include "bench_util.hpp"
#include "core/centralized.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

constexpr int kClusters = 3;
constexpr int kJobs = 50;

void registerSleeper(core::ComputeCluster& cluster) {
  cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(10);
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
}

core::ComputeRequest sleepRequest() {
  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  return request;
}

struct RunStats {
  int placed = 0;
  int failed = 0;
  bench::Summary latencyMs;
};

RunStats runLidc(bool controllerOutage) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  for (int i = 0; i < kClusters; ++i) {
    core::ComputeClusterConfig config;
    config.name = "cluster-" + std::to_string(i);
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    registerSleeper(overlay.addCluster(config));
    overlay.connect("client-host", config.name,
                    net::LinkParams{sim::Duration::millis(10 + 15 * i)});
    overlay.announceCluster(config.name);
  }
  // There is no controller to fail in LIDC; an "outage" has no target.
  (void)controllerOutage;

  core::LidcClient client(*overlay.topology().node("client-host"), "bench");
  RunStats stats;
  std::vector<double> latencies;
  for (int i = 0; i < kJobs; ++i) {
    client.submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
      if (r.ok()) {
        ++stats.placed;
        latencies.push_back(r->placementLatency.toMillis());
      } else {
        ++stats.failed;
      }
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(1));
  }
  sim.runUntil(sim.now() + sim::Duration::seconds(30));
  stats.latencyMs = bench::summarize(latencies);
  return stats;
}

RunStats runCentralized(bool controllerOutage) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  core::CentralizedController controller(sim, core::CentralizedOptions{});
  for (int i = 0; i < kClusters; ++i) {
    core::ComputeClusterConfig config;
    config.name = "cluster-" + std::to_string(i);
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    auto& cluster = overlay.addCluster(config);
    registerSleeper(cluster);
    // Manual registration step the paper criticises.
    controller.registerCluster(cluster, sim::Duration::millis(10 + 15 * i));
  }

  RunStats stats;
  std::vector<double> latencies;
  for (int i = 0; i < kJobs; ++i) {
    if (controllerOutage && i == kJobs / 2) controller.setDown(true);
    controller.submit(sleepRequest(),
                      [&](Result<core::CentralizedController::SubmitAck> r) {
                        if (r.ok()) {
                          ++stats.placed;
                          latencies.push_back(r->latency.toMillis());
                        } else {
                          ++stats.failed;
                        }
                      });
    sim.runUntil(sim.now() + sim::Duration::seconds(1));
  }
  sim.runUntil(sim.now() + sim::Duration::seconds(30));
  stats.latencyMs = bench::summarize(latencies);
  return stats;
}

}  // namespace

int main() {
  bench::printHeader("Ablation D: LIDC vs centralized controller (" +
                     std::to_string(kJobs) + " jobs, " + std::to_string(kClusters) +
                     " clusters)");
  bench::printRow({"system", "placed", "failed", "lat-mean", "lat-p95"});
  bench::printRule(5);

  const RunStats lidc = runLidc(false);
  bench::printRow({"LIDC", std::to_string(lidc.placed), std::to_string(lidc.failed),
                   bench::fmt(lidc.latencyMs.mean) + "ms",
                   bench::fmt(lidc.latencyMs.p95) + "ms"});
  const RunStats central = runCentralized(false);
  bench::printRow({"centralized", std::to_string(central.placed),
                   std::to_string(central.failed),
                   bench::fmt(central.latencyMs.mean) + "ms",
                   bench::fmt(central.latencyMs.p95) + "ms"});

  bench::printHeader("Ablation D2: controller outage mid-run (single point of failure)");
  bench::printRow({"system", "placed", "failed", "lat-mean", "lat-p95"});
  bench::printRule(5);
  const RunStats lidcOutage = runLidc(true);
  bench::printRow({"LIDC", std::to_string(lidcOutage.placed),
                   std::to_string(lidcOutage.failed),
                   bench::fmt(lidcOutage.latencyMs.mean) + "ms",
                   bench::fmt(lidcOutage.latencyMs.p95) + "ms"});
  const RunStats centralOutage = runCentralized(true);
  bench::printRow({"centralized", std::to_string(centralOutage.placed),
                   std::to_string(centralOutage.failed),
                   bench::fmt(centralOutage.latencyMs.mean) + "ms",
                   bench::fmt(centralOutage.latencyMs.p95) + "ms"});

  std::printf(
      "shape check: comparable latency when healthy (LIDC follows the nearest\n"
      "cluster; the controller adds relay hops); under controller outage the\n"
      "centralized plane places nothing while LIDC is unaffected — it has no\n"
      "controller to lose.\n");

  bench::JsonReport report("centralized_vs_lidc");
  report.add("lidc_placed", lidc.placed);
  report.add("lidc_failed", lidc.failed);
  report.add("lidc_latency_mean_ms", lidc.latencyMs.mean);
  report.add("lidc_latency_p95_ms", lidc.latencyMs.p95);
  report.add("central_placed", central.placed);
  report.add("central_failed", central.failed);
  report.add("central_latency_mean_ms", central.latencyMs.mean);
  report.add("central_latency_p95_ms", central.latencyMs.p95);
  report.add("lidc_outage_placed", lidcOutage.placed);
  report.add("lidc_outage_failed", lidcOutage.failed);
  report.add("central_outage_placed", centralOutage.placed);
  report.add("central_outage_failed", centralOutage.failed);
  report.write();
  return 0;
}
