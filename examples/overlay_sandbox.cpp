// Overlay sandbox: a parameterised what-if tool for exploring LIDC
// deployments from the command line. Builds N clusters with a latency
// spread, drives a Poisson job stream at the chosen rate, and reports
// placement distribution, latency, and cache behaviour.
//
// Usage:
//   overlay_sandbox [--clusters N] [--jobs M] [--rate JOBS_PER_MIN]
//                   [--strategy best-route|load-balance|round-robin|asf]
//                   [--job-seconds S] [--cache] [--seed K]
#include <cstdio>
#include <cstring>

#include "common/strings.hpp"
#include "common/workload.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct Options {
  int clusters = 3;
  int jobs = 50;
  double jobsPerMinute = 10.0;
  core::PlacementStrategy strategy = core::PlacementStrategy::kBestRoute;
  double jobSeconds = 60.0;
  bool useCache = false;
  std::uint64_t seed = 1;
};

bool parseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--clusters") {
      const char* v = next();
      if (v == nullptr) return false;
      options.clusters = std::max(1, atoi(v));
    } else if (flag == "--jobs") {
      const char* v = next();
      if (v == nullptr) return false;
      options.jobs = std::max(1, atoi(v));
    } else if (flag == "--rate") {
      const char* v = next();
      if (v == nullptr) return false;
      options.jobsPerMinute = std::max(0.1, atof(v));
    } else if (flag == "--strategy") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = core::parsePlacementStrategy(v);
      if (!parsed) {
        std::fprintf(stderr, "unknown strategy '%s'\n", v);
        return false;
      }
      options.strategy = *parsed;
    } else if (flag == "--job-seconds") {
      const char* v = next();
      if (v == nullptr) return false;
      options.jobSeconds = std::max(0.1, atof(v));
    } else if (flag == "--cache") {
      options.useCache = true;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options.seed = static_cast<std::uint64_t>(atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", std::string(flag).c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parseArgs(argc, argv, options)) {
    std::fprintf(stderr,
                 "usage: %s [--clusters N] [--jobs M] [--rate JOBS_PER_MIN]\n"
                 "          [--strategy best-route|load-balance|round-robin|asf]\n"
                 "          [--job-seconds S] [--cache] [--seed K]\n",
                 argv[0]);
    return 2;
  }

  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  for (int i = 0; i < options.clusters; ++i) {
    core::ComputeClusterConfig config;
    config.name = "cluster-" + std::to_string(i);
    config.perNode = k8s::Resources{MilliCpu::fromCores(16), ByteSize::fromGiB(64)};
    auto& cluster = overlay.addCluster(config);
    const double seconds = options.jobSeconds;
    cluster.cluster().registerApp("sleeper", [seconds](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(seconds);
      result.resultPath = "/ndn/k8s/data/results/r";
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    const int latencyMs =
        5 + (options.clusters == 1 ? 0 : 90 * i / (options.clusters - 1));
    overlay.connect("client-host", config.name,
                    net::LinkParams{sim::Duration::millis(latencyMs)});
    overlay.announceCluster(config.name);
    std::printf("cluster-%d: 16 cores @ %d ms\n", i, latencyMs);
  }
  overlay.setPlacementStrategy(options.strategy, options.seed);

  core::ClientOptions clientOptions;
  clientOptions.bypassCache = !options.useCache;
  core::LidcClient client(*overlay.topology().node("client-host"), "sandbox",
                          clientOptions, options.seed);
  PoissonArrivals arrivals(options.jobsPerMinute / 60.0, options.seed);

  std::map<std::string, int> placements;
  std::vector<double> placementMs;
  std::vector<double> completionS;
  int failed = 0;
  int cached = 0;

  for (int i = 0; i < options.jobs; ++i) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(2);
    request.memory = ByteSize::fromGiB(2);
    if (!options.useCache) request.params["job"] = std::to_string(i);
    const sim::Time start = sim.now();
    client.runToCompletion(request, [&, start](Result<core::JobOutcome> outcome) {
      if (!outcome.ok()) {
        ++failed;
        return;
      }
      ++placements[outcome->finalStatus.cluster.empty()
                       ? outcome->submit.cluster
                       : outcome->finalStatus.cluster];
      placementMs.push_back(outcome->submit.placementLatency.toMillis());
      completionS.push_back((sim.now() - start).toSeconds());
      if (outcome->submit.cached) ++cached;
    });
    sim.runUntil(sim.now() + arrivals.next());
  }
  sim.run();

  std::printf("\n== results over %d jobs (%.0f jobs/min) ==\n", options.jobs,
              options.jobsPerMinute);
  for (const auto& [cluster, count] : placements) {
    std::printf("  %-12s %d\n", cluster.c_str(), count);
  }
  std::printf("  failed       %d\n", failed);
  if (options.useCache) std::printf("  cache hits   %d\n", cached);

  auto report = [](const char* label, std::vector<double> samples,
                   const char* unit) {
    if (samples.empty()) return;
    std::sort(samples.begin(), samples.end());
    const double p50 = samples[samples.size() / 2];
    const double p95 = samples[static_cast<std::size_t>(
        std::min<double>(static_cast<double>(samples.size()) - 1,
                         static_cast<double>(samples.size()) * 0.95))];
    std::printf("  %-12s p50 %.1f%s  p95 %.1f%s\n", label, p50, unit, p95, unit);
  };
  report("placement", placementMs, "ms");
  report("completion", completionS, "s");
  return 0;
}
