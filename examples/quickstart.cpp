// Quickstart: the smallest complete LIDC deployment.
//
// One cluster, one client, one named compute job:
//   1. build a cluster with a gateway, a data lake, and the magic-blast app
//   2. connect a client host and announce the cluster into the overlay
//   3. express /ndn/k8s/compute/app=BLAST&cpu=2&mem=4&srr_id=SRR2931415
//   4. poll /ndn/k8s/status/... until Completed
//   5. fetch the result from /ndn/k8s/data/results/...
//
// The client never names the cluster — placement is location-independent.
#include <cstdio>

#include "common/strings.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

int main() {
  using namespace lidc;

  // All activity runs on one deterministic simulated clock.
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);

  // --- infrastructure side ---
  overlay.addNode("laptop");

  core::ComputeClusterConfig config;
  config.name = "campus-cluster";
  auto& cluster = overlay.addCluster(config);

  // Load the synthetic genomics datasets into the cluster's data lake
  // (scale 0.2 keeps the example fast) and install magic-blast.
  genomics::DatasetCatalog catalog(/*scale=*/0.2);
  cluster.loadGenomicsDatasets(catalog);

  overlay.connect("laptop", "campus-cluster",
                  net::LinkParams{sim::Duration::millis(12)});
  overlay.announceCluster("campus-cluster");

  // --- user side ---
  core::LidcClient client(*overlay.topology().node("laptop"), "quickstart-user");

  core::ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";
  std::printf("submitting: %s\n", request.toName().toUri().c_str());

  std::string resultName;
  client.runToCompletion(request, [&](Result<core::JobOutcome> outcome) {
    if (!outcome.ok()) {
      std::printf("job failed: %s\n", outcome.status().toString().c_str());
      return;
    }
    std::printf("placed on:  %s (ack in %s)\n", outcome->submit.cluster.c_str(),
                outcome->submit.placementLatency.toString().c_str());
    std::printf("state:      %s\n",
                std::string(k8s::jobStateName(outcome->finalStatus.state)).c_str());
    std::printf("runtime:    %s (testbed scale)\n",
                strings::formatDurationHms(outcome->finalStatus.runtime.toSeconds())
                    .c_str());
    std::printf("output:     %s at %s\n",
                strings::formatBytes(outcome->finalStatus.outputBytes).c_str(),
                outcome->finalStatus.resultPath.c_str());
    resultName = outcome->finalStatus.resultPath;
  });
  sim.run();

  if (resultName.empty()) return 1;

  // Retrieve the (simulation-scale) result object from the data lake.
  client.fetchData(ndn::Name(resultName), [&](Result<std::vector<std::uint8_t>> bytes) {
    if (bytes.ok()) {
      std::printf("fetched:    %zu bytes from the data lake\n", bytes->size());
    } else {
      std::printf("fetch failed: %s\n", bytes.status().toString().c_str());
    }
  });
  sim.run();
  return 0;
}
