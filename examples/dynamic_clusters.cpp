// Dynamic overlay membership: clusters join and leave at runtime while
// a client keeps submitting the same named request. Also demonstrates
// the completion-time predictor (paper SVII "intelligence") learning
// from finished jobs.
#include <cstdio>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

core::ComputeCluster& addCluster(core::ClusterOverlay& overlay,
                                 const std::string& name, int linkMs,
                                 double jobSeconds) {
  core::ComputeClusterConfig config;
  config.name = name;
  config.perNode = k8s::Resources{MilliCpu::fromCores(32), ByteSize::fromGiB(64)};
  auto& cluster = overlay.addCluster(config);
  cluster.cluster().registerApp("analyze", [jobSeconds](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(jobSeconds);
    result.resultPath = "/ndn/k8s/data/results/out";
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("analyze", "analyze");
  overlay.connect("client-host", name,
                  net::LinkParams{sim::Duration::millis(linkMs)});
  overlay.announceCluster(name);
  std::printf("[t=%6.0fs] + cluster '%s' joined\n",
              overlay.simulator().now().toSeconds(), name.c_str());
  return cluster;
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  auto& alpha = addCluster(overlay, "alpha", 5, /*jobSeconds=*/120);

  core::ClientOptions options;
  options.bypassCache = true;  // every run is a fresh job
  core::LidcClient client(*overlay.topology().node("client-host"), "user",
                          options);

  auto submitOne = [&](int id) {
    core::ComputeRequest request;
    request.app = "analyze";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    request.params["run"] = std::to_string(id);

    // Ask the predictor before running (it learns as jobs finish).
    if (auto predicted = alpha.predictor().predict(request)) {
      std::printf("[t=%6.0fs] job %d predicted to take %.0fs\n",
                  sim.now().toSeconds(), id, predicted->toSeconds());
    }
    client.runToCompletion(request, [&, id](Result<core::JobOutcome> outcome) {
      if (outcome.ok()) {
        std::printf("[t=%6.0fs] job %d completed on '%s' (ran %.0fs)\n",
                    sim.now().toSeconds(), id,
                    outcome->finalStatus.cluster.c_str(),
                    outcome->finalStatus.runtime.toSeconds());
      } else {
        std::printf("[t=%6.0fs] job %d failed: %s\n", sim.now().toSeconds(), id,
                    outcome.status().toString().c_str());
      }
    });
  };

  // Timeline: jobs arrive every 90 s; membership changes mid-stream.
  submitOne(1);
  sim.runUntil(sim.now() + sim::Duration::seconds(90));

  submitOne(2);
  sim.runUntil(sim.now() + sim::Duration::seconds(90));

  addCluster(overlay, "beta", 2, /*jobSeconds=*/120);  // nearer newcomer
  submitOne(3);
  // Let job 3 finish on beta before beta leaves: a withdrawn cluster's
  // status namespace leaves the overlay with it.
  sim.runUntil(sim.now() + sim::Duration::seconds(150));

  std::printf("[t=%6.0fs] - cluster 'beta' left the overlay\n",
              sim.now().toSeconds());
  overlay.withdrawCluster("beta");
  submitOne(4);
  sim.runUntil(sim.now() + sim::Duration::seconds(90));

  submitOne(5);
  sim.run();

  std::printf(
      "\npredictor after %zu completions: mean abs error %.1fs on alpha\n",
      alpha.predictor().sampleCount(), alpha.predictor().meanAbsoluteErrorSeconds());
  std::printf("no client reconfiguration happened at any point.\n");
  return 0;
}
