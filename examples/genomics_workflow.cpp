// The paper's SIV deployment end to end, now as a *declared workflow*:
// BLAST both SRA samples (rice SRR2931415 and kidney SRR5139395)
// against the human reference and compress the rice alignment — a
// three-stage DAG the WorkflowEngine drives through named requests,
// with the Fig. 5 protocol timeline narrated from the engine's own
// event log. Each stage's output lands in the data lake under
// /ndn/k8s/data/wf/genomics/<stage>, where the next stage (and we, at
// the end) pull it by name.
#include <cstdio>

#include "common/strings.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "workflow/engine.hpp"

namespace {

using namespace lidc;

constexpr const char* kRiceSrr = "SRR2931415";

}  // namespace

int main() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("lab-workstation");

  core::ComputeClusterConfig config;
  config.name = "gcp-microk8s";
  config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(32)};
  auto& cluster = overlay.addCluster(config);

  genomics::DatasetCatalog catalog(/*scale=*/0.2);
  cluster.loadGenomicsDatasets(catalog);
  std::printf("data lake loaded: human reference + %zu SRA samples\n",
              catalog.allSamples().size());

  overlay.connect("lab-workstation", "gcp-microk8s",
                  net::LinkParams{sim::Duration::millis(25)});
  overlay.announceCluster("gcp-microk8s");

  core::LidcClient client(*overlay.topology().node("lab-workstation"),
                          "genomics-researcher");

  // The workflow: both Table I alignments fan out in parallel; the
  // compression tool (paper SIV-B's second application) consumes the
  // rice alignment as soon as it lands in the lake.
  workflow::WorkflowSpec spec;
  spec.id = "genomics";
  for (const auto& sample : catalog.allSamples()) {
    workflow::StageSpec blast;
    blast.name = "blast-" + sample.srrId;
    blast.app = "BLAST";
    blast.cpu = MilliCpu::fromCores(2);
    blast.memory = ByteSize::fromGiB(4);
    blast.params["srr_id"] = sample.srrId;
    spec.addStage(blast);
  }
  workflow::StageSpec compress;
  compress.name = "compress-rice";
  compress.app = "compress";
  compress.cpu = MilliCpu::fromCores(4);
  compress.memory = ByteSize::fromGiB(2);
  compress.stageInputs = {{std::string("blast-") + kRiceSrr, "input"}};
  spec.addStage(compress);

  for (const auto& stage : spec.stages) {
    std::printf("stage %-18s app=%-8s -> %s\n", stage.name.c_str(),
                stage.app.c_str(),
                workflow::intermediateName(spec.id, stage.name).toUri().c_str());
  }
  std::printf("\n");

  // Narrate the engine's event log live — the Fig. 5 timeline, but for
  // a whole DAG instead of one job.
  workflow::WorkflowOptions options;
  options.observer = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  workflow::WorkflowEngine engine(client, options);

  bool failed = false;
  engine.run(spec, [&](Result<workflow::WorkflowOutcome> result) {
    if (!result.ok()) {
      std::printf("workflow rejected: %s\n", result.status().toString().c_str());
      failed = true;
      return;
    }
    const auto& outcome = result.value();
    std::printf("\nworkflow %s %s  makespan=%s\n", outcome.id.c_str(),
                outcome.succeeded ? "succeeded" : "FAILED",
                strings::formatDurationHms(outcome.makespan.toSeconds()).c_str());
    for (const auto& [name, st] : outcome.stages) {
      std::printf("  %-18s %-9s cluster=%-12s runtime=%-9s output=%s\n",
                  name.c_str(),
                  std::string(workflow::stageStateName(st.state)).c_str(),
                  st.cluster.c_str(),
                  strings::formatDurationHms(st.runtime.toSeconds()).c_str(),
                  strings::formatBytes(st.outputBytes).c_str());
    }
    failed = !outcome.succeeded;
  });
  sim.run();
  if (failed) return 1;

  // The compressed rice alignment is addressable by its workflow name.
  const ndn::Name finalName = workflow::intermediateName("genomics", "compress-rice");
  bool fetched = false;
  client.fetchData(finalName, [&](Result<std::vector<std::uint8_t>> bytes) {
    if (bytes.ok()) {
      std::printf("\nretrieved %s from %s\n",
                  strings::formatBytes(bytes->size()).c_str(),
                  finalName.toUri().c_str());
      fetched = true;
    } else {
      std::printf("\nretrieval failed: %s\n", bytes.status().toString().c_str());
    }
  });
  sim.run();
  if (!fetched) return 1;

  const auto& counters = cluster.gateway().counters();
  std::printf("gateway: %llu compute Interests, %llu jobs launched, %llu status polls\n",
              static_cast<unsigned long long>(counters.computeReceived),
              static_cast<unsigned long long>(counters.jobsLaunched),
              static_cast<unsigned long long>(counters.statusReceived));
  return 0;
}
