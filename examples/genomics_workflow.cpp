// The paper's SIV deployment end to end: a genomics workflow BLASTing
// both SRA samples (rice SRR2931415 and kidney SRR5139395) against the
// human reference through named requests, with live status polling and
// result retrieval — the Fig. 5 protocol timeline, narrated.
#include <cstdio>

#include "common/strings.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

void narrate(const sim::Simulator& sim, const std::string& line) {
  std::printf("[t=%8.1fs] %s\n", sim.now().toSeconds(), line.c_str());
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("lab-workstation");

  core::ComputeClusterConfig config;
  config.name = "gcp-microk8s";
  config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(32)};
  auto& cluster = overlay.addCluster(config);

  genomics::DatasetCatalog catalog(/*scale=*/0.2);
  cluster.loadGenomicsDatasets(catalog);
  std::printf("data lake loaded: human reference + %zu SRA samples\n",
              catalog.allSamples().size());

  overlay.connect("lab-workstation", "gcp-microk8s",
                  net::LinkParams{sim::Duration::millis(25)});
  overlay.announceCluster("gcp-microk8s");

  core::LidcClient client(*overlay.topology().node("lab-workstation"),
                          "genomics-researcher");

  // Run both Table I samples sequentially, polling status as in Fig. 5.
  for (const auto& sample : catalog.allSamples()) {
    core::ComputeRequest request;
    request.app = "BLAST";
    request.cpu = MilliCpu::fromCores(2);
    request.memory = ByteSize::fromGiB(4);
    request.params["srr_id"] = sample.srrId;

    narrate(sim, "Interest  " + request.toName().toUri());

    std::string statusName;
    client.submit(request, [&](Result<core::SubmitResult> ack) {
      if (!ack.ok()) {
        narrate(sim, "REJECTED  " + ack.status().toString());
        return;
      }
      narrate(sim, "ack       job_id=" + ack->jobId + " on " + ack->cluster);
      statusName = ack->statusName;
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(2));
    if (statusName.empty()) return 1;

    // Poll a few times to show the Pending -> Running transition, then
    // wait for the terminal state.
    for (int poll = 0; poll < 2; ++poll) {
      client.queryStatus(ndn::Name(statusName),
                         [&](Result<core::JobStatusSnapshot> status) {
                           if (status.ok()) {
                             narrate(sim, "status    " +
                                              std::string(k8s::jobStateName(
                                                  status->state)));
                           }
                         });
      sim.runUntil(sim.now() + sim::Duration::seconds(3));
    }

    bool done = false;
    client.waitForCompletion(
        ndn::Name(statusName), [&](Result<core::JobStatusSnapshot> status) {
          done = true;
          if (!status.ok()) {
            narrate(sim, "ERROR     " + status.status().toString());
            return;
          }
          narrate(sim, "status    " +
                           std::string(k8s::jobStateName(status->state)) +
                           "  runtime=" +
                           strings::formatDurationHms(status->runtime.toSeconds()) +
                           "  output=" +
                           strings::formatBytes(status->outputBytes) + "  -> " +
                           status->resultPath);
          client.fetchData(ndn::Name(status->resultPath),
                           [&](Result<std::vector<std::uint8_t>> bytes) {
                             if (bytes.ok()) {
                               narrate(sim, "retrieved " +
                                                std::to_string(bytes->size()) +
                                                " bytes from the data lake");
                             }
                           });
        });
    sim.run();
    if (!done) return 1;
    std::printf("\n");
  }

  // Post-processing stage (paper SIV-B's second application): compress
  // the rice result that is now sitting in the data lake.
  {
    core::ComputeRequest compressRequest;
    compressRequest.app = "compress";
    compressRequest.cpu = MilliCpu::fromCores(4);
    compressRequest.memory = ByteSize::fromGiB(2);
    compressRequest.params["input"] = "results/job-gcp-microk8s-1";
    narrate(sim, "Interest  " + compressRequest.toName().toUri());
    client.runToCompletion(compressRequest, [&](Result<core::JobOutcome> outcome) {
      if (outcome.ok()) {
        narrate(sim, "compress  " +
                         std::string(k8s::jobStateName(outcome->finalStatus.state)) +
                         " -> " + outcome->finalStatus.resultPath + " (" +
                         std::to_string(outcome->finalStatus.outputBytes) +
                         " bytes)");
      } else {
        narrate(sim, "compress  FAILED " + outcome.status().toString());
      }
    });
    sim.run();
    std::printf("\n");
  }

  const auto& counters = cluster.gateway().counters();
  std::printf("gateway: %llu compute Interests, %llu jobs launched, %llu status polls\n",
              static_cast<unsigned long long>(counters.computeReceived),
              static_cast<unsigned long long>(counters.jobsLaunched),
              static_cast<unsigned long long>(counters.statusReceived));
  return 0;
}
