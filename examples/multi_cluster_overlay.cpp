// Multi-cluster overlay: three geo-distributed clusters behind two
// regional routers. Shows location-independent placement (nearest
// cluster wins), capacity spill-over, and automatic failover when the
// nearest cluster goes dark — without any client reconfiguration.
#include <cstdio>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

core::ComputeRequest sleepRequest() {
  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(2);
  return request;
}

void submitAndReport(sim::Simulator& sim, core::LidcClient& client,
                     const std::string& label) {
  client.submit(sleepRequest(), [&sim, label](Result<core::SubmitResult> ack) {
    if (ack.ok()) {
      std::printf("  [%s] placed on %-12s (latency %s)\n", label.c_str(),
                  ack->cluster.c_str(), ack->placementLatency.toString().c_str());
    } else {
      std::printf("  [%s] FAILED: %s\n", label.c_str(),
                  ack.status().toString().c_str());
    }
  });
  sim.runUntil(sim.now() + sim::Duration::seconds(2));
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);

  // Network: client - R1 - R2, clusters hanging off both routers.
  overlay.addNode("r1");
  overlay.addNode("r2");
  overlay.addNode("client-host");
  overlay.connect("client-host", "r1", net::LinkParams{sim::Duration::millis(2)});
  overlay.connect("r1", "r2", net::LinkParams{sim::Duration::millis(40)});

  struct Site {
    const char* name;
    const char* router;
    int linkMs;
    std::uint64_t cores;
  };
  const Site sites[] = {
      {"campus", "r1", 3, 4},    // near, small
      {"regional", "r1", 10, 16},  // near-ish, mid
      {"cloud", "r2", 8, 64},    // far, big
  };
  for (const Site& site : sites) {
    core::ComputeClusterConfig config;
    config.name = site.name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(site.cores),
                                    ByteSize::fromGiB(4 * site.cores)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::minutes(10);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect(site.name, site.router,
                    net::LinkParams{sim::Duration::millis(site.linkMs)});
    overlay.announceCluster(site.name);
    std::printf("cluster '%s' joined the overlay (%llu cores, via %s)\n",
                site.name, static_cast<unsigned long long>(site.cores),
                site.router);
  }

  core::LidcClient client(*overlay.topology().node("client-host"), "demo-user");

  std::printf("\n-- phase 1: nearest cluster wins ------------------------\n");
  submitAndReport(sim, client, "job-1");

  std::printf("\n-- phase 2: capacity spill-over -------------------------\n");
  // 'campus' has 4 cores; each job takes 2. Two jobs fill it, then jobs
  // overflow to 'regional'.
  submitAndReport(sim, client, "job-2");  // campus full after this
  submitAndReport(sim, client, "job-3");  // spills over
  submitAndReport(sim, client, "job-4");

  std::printf("\n-- phase 3: failover ------------------------------------\n");
  std::printf("  !! 'regional' cluster goes dark\n");
  overlay.failCluster("regional");
  submitAndReport(sim, client, "job-5");  // lands on cloud across the WAN

  std::printf("\n-- phase 4: recovery ------------------------------------\n");
  std::printf("  !! 'regional' cluster returns\n");
  overlay.recoverCluster("regional");
  submitAndReport(sim, client, "job-6");

  std::printf("\nthe client used one name for every job: %s\n",
              sleepRequest().canonicalName().toUri().c_str());
  return 0;
}
