// Data staging: a new cluster joins the overlay with an empty data
// lake, replicates the genomics datasets over NDN from its peer, and
// immediately starts winning nearby BLAST jobs. Demonstrates the
// decentralized data/compute coupling of the paper (SII: "the framework
// also integrates data lakes built-upon content names").
#include <cstdio>

#include "common/strings.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/replication.hpp"

int main() {
  using namespace lidc;

  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  genomics::DatasetCatalog catalog(/*scale=*/0.1);

  // The established cluster, far away, holding all the data.
  core::ComputeClusterConfig seededConfig;
  seededConfig.name = "established";
  auto& seeded = overlay.addCluster(seededConfig);
  seeded.loadGenomicsDatasets(catalog);
  overlay.connect("client-host", "established",
                  net::LinkParams{sim::Duration::millis(60)});
  overlay.announceCluster("established");

  core::LidcClient client(*overlay.topology().node("client-host"), "user");
  core::ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";

  auto submitAndReport = [&](const char* phase) {
    client.submit(request, [&, phase](Result<core::SubmitResult> ack) {
      if (ack.ok()) {
        std::printf("[%s] job placed on '%s' (%s away)\n", phase,
                    ack->cluster.c_str(), ack->placementLatency.toString().c_str());
      } else {
        std::printf("[%s] placement failed: %s\n", phase,
                    ack.status().toString().c_str());
      }
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(2));
  };

  std::printf("-- phase 1: only the far cluster exists -----------------\n");
  submitAndReport("before");

  std::printf("\n-- phase 2: a nearby cluster joins, lake empty ----------\n");
  core::ComputeClusterConfig freshConfig;
  freshConfig.name = "campus";
  auto& fresh = overlay.addCluster(freshConfig);
  genomics::installMagicBlast(fresh.cluster(), fresh.store(), catalog);
  overlay.connect("client-host", "campus",
                  net::LinkParams{sim::Duration::millis(4)});
  overlay.announceCluster("campus");
  overlay.refreshAnnouncements();
  // Nearby but dataless: its gateway rejects BLAST (dataset validation),
  // and the network fails over to the established cluster.
  submitAndReport("dataless");

  std::printf("\n-- phase 3: stage the datasets over NDN -----------------\n");
  // DataReplicator is now a thin wrapper over the replica plane's
  // TransferScheduler: same one-shot API, but the fetches run through
  // the priority-ordered staging queue with bounded concurrency.
  core::DataReplicator replicator(fresh);
  const sim::Time stagingStart = sim.now();
  replicator.replicateAll(
      {ndn::Name("/ndn/k8s/data/human-ref"), ndn::Name("/ndn/k8s/data/SRR2931415"),
       ndn::Name("/ndn/k8s/data/SRR5139395")},
      [&](Status status) {
        std::printf("staging %s: %llu objects, %s in %s\n",
                    status.ok() ? "complete" : status.toString().c_str(),
                    static_cast<unsigned long long>(replicator.objectsReplicated()),
                    strings::formatBytes(replicator.bytesReplicated()).c_str(),
                    (sim.now() - stagingStart).toString().c_str());
        std::printf("transfer queue: %llu staged, %llu local hits\n",
                    static_cast<unsigned long long>(
                        replicator.scheduler().staged()),
                    static_cast<unsigned long long>(
                        replicator.scheduler().localHits()));
      });
  sim.run();

  std::printf("\n-- phase 4: the nearby cluster now wins -----------------\n");
  submitAndReport("after");
  return 0;
}
