// Live migration under a planned drain: a 3-stage DAG (prep -> train ->
// report) is mid-flight in its long checkpointable middle stage when the
// operator drains the cluster running it. Because checkpoints are named
// data-lake objects (/ndn/k8s/ckpt/<job>/<epoch>) that the replica plane
// has already copied to the survivor, the WorkflowEngine's
// restoreParamsHook resumes the stage on the other cluster from the
// latest epoch instead of recomputing it — the DAG completes with zero
// recomputed stages. Location independence applied to running state:
// "resume anywhere" falls out of the same machinery as "fetch anywhere".
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "core/checkpoint_format.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/replication.hpp"
#include "core/semantic_name.hpp"
#include "migrate/checkpoint.hpp"
#include "replica/directory.hpp"
#include "replica/policy.hpp"
#include "replica/repair.hpp"
#include "replica/scheduler.hpp"
#include "sim/chaos.hpp"
#include "workflow/engine.hpp"

using namespace lidc;

namespace {

constexpr double kTrainSeconds = 120.0;  // full training run
constexpr double kEpochSeconds = 10.0;   // work covered per checkpoint
constexpr double kDrainAtSeconds = 60.0;

ndn::Name lakeName(const std::string& path) {
  ndn::Name name = core::kDataPrefix;
  std::size_t begin = 0;
  while (begin < path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) name.append(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return name;
}

/// Resume-aware trainer: reads its staged input from the local lake,
/// skips the kEpochSeconds * epoch of work a ckpt=<job>/<epoch> arg
/// already covers (the gateway validated the epoch's digest before
/// launch), writes its model under the workflow intermediate name, and
/// exposes a checkpointPlan so the CheckpointManager can materialize
/// epochs while it runs.
void installTrainer(core::ComputeCluster& cc) {
  datalake::ObjectStore& store = cc.store();
  cc.cluster().registerApp("trainer", [&store](k8s::AppContext& ctx) {
    k8s::AppResult result;
    auto input = ctx.spec.args.find("input");
    if (input == ctx.spec.args.end() ||
        !store.get(lakeName(input->second))) {
      result.status = Status::NotFound("trainer input not in local lake");
      return result;
    }
    double done = 0.0;
    if (auto it = ctx.spec.args.find("ckpt"); it != ctx.spec.args.end()) {
      if (auto ref = core::parseCkptRef(it->second); ref.ok()) {
        if (store.get(core::makeCkptName(ref->jobId, ref->epoch))) {
          done = std::min(kTrainSeconds,
                          kEpochSeconds * static_cast<double>(ref->epoch));
        }
      }
    }
    result.runtime = sim::Duration::seconds(kTrainSeconds - done);
    std::string out = "results/model";
    if (auto it = ctx.spec.args.find("out"); it != ctx.spec.args.end()) {
      out = it->second;
    }
    std::vector<std::uint8_t> model(64 * 1024, 0x5a);
    const std::size_t modelBytes = model.size();
    if (auto st = store.put(lakeName(out), std::move(model)); !st.ok()) {
      result.status = st;
      return result;
    }
    result.resultPath = lakeName(out).toUri();
    result.outputBytes = modelBytes;
    result.message = done > 0.0
                         ? "trained, resumed past " + std::to_string(done) +
                               " s of checkpointed work"
                         : "trained from scratch";
    result.checkpointPlan = [](double progress) {
      const auto size =
          static_cast<std::size_t>(4096.0 + progress * 16384.0);
      return std::vector<std::uint8_t>(size, 0x5a);
    };
    return result;
  });
  cc.gateway().jobs().mapAppToImage("train", "trainer");
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  std::map<std::string, core::ComputeCluster*> clusters;
  for (const std::string& name : {std::string("east"), std::string("west")}) {
    core::ComputeClusterConfig config;
    config.name = name;
    auto& cc = overlay.addCluster(config);
    apps::installTransformApp(cc.cluster(), cc.store());
    installTrainer(cc);
    cc.enableCheckpointServing();
    clusters[name] = &cc;
  }
  auto* east = clusters["east"];
  auto* west = clusters["west"];
  overlay.connect("client-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "west", net::LinkParams{sim::Duration::millis(30)});
  overlay.connect("east", "west", net::LinkParams{sim::Duration::millis(10)});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  // Replica plane: east's checkpoint writes register in its catalog and
  // heat the shared policy; the repair loop copies each hot epoch to
  // west. That standing replication is what makes the later drain
  // cheap — the restore source is already on the survivor.
  replica::ReplicaCatalog eastCatalog(east->forwarder(), "east");
  replica::ReplicaCatalog westCatalog(west->forwarder(), "west");
  replica::PlacementPolicy policy;
  migrate::CheckpointOptions ckptOptions;
  ckptOptions.interval = sim::Duration::seconds(kEpochSeconds);
  migrate::CheckpointManager eastCkpt(east->cluster(), east->store(),
                                      ckptOptions, &eastCatalog, &policy);
  migrate::CheckpointManager westCkpt(west->cluster(), west->store(),
                                      ckptOptions, &westCatalog, &policy);
  replica::TransferScheduler westSched(west->forwarder(), west->store(), "west",
                                       replica::TransferOptions{}, &westCatalog);
  replica::ReplicaDirectory directory(*overlay.topology().node("client-host"));
  directory.watchCluster("east");
  directory.watchCluster("west");
  replica::RepairLoop repair(sim, directory, policy);
  repair.addScheduler("west", &westSched);
  directory.start();
  repair.start();

  // Raw input only in east's lake, so the DAG starts there.
  (void)east->store().put(lakeName("raw/reads"),
                          std::vector<std::uint8_t>(2 * 1024 * 1024, 0x17));

  core::ClientOptions clientOptions;
  clientOptions.statusPollInterval = sim::Duration::seconds(1);
  // Leave failure handling to the engine: a client-level failover would
  // blindly resubmit the original request (a recompute), while the
  // engine's retry consults the checkpoint hook first.
  clientOptions.maxFailovers = 0;
  core::LidcClient client(*overlay.topology().node("client-host"), "wf-user",
                          clientOptions, /*seed=*/777);

  workflow::WorkflowOptions engineOptions;
  // Resume instead of recompute: find the newest epoch of the failed
  // job that the survivor's lake holds and pin its digest. The west
  // gateway re-validates the pin against its own bytes before the
  // restore (wrong bytes = cold start, counted, alertable).
  engineOptions.restoreParamsHook =
      [&west](const std::string& stage,
              const std::string& jobId) -> std::map<std::string, std::string> {
    std::optional<std::uint64_t> newest;
    std::vector<std::uint8_t> payload;
    for (std::uint64_t epoch = 1; epoch <= 64; ++epoch) {
      if (auto bytes = west->store().get(core::makeCkptName(jobId, epoch))) {
        newest = epoch;
        payload = *bytes;
      }
    }
    if (!newest.has_value()) return {};
    std::printf("[hook ] resuming stage '%s' from %s (replicated epoch)\n",
                stage.c_str(),
                core::makeCkptName(jobId, *newest).toUri().c_str());
    return {{"ckpt", jobId + "/" + std::to_string(*newest)},
            {"ckpt_digest", std::to_string(core::ckptDigest(payload))},
            {"ckpt_from", "east"}};
  };
  workflow::WorkflowEngine engine(client, engineOptions);

  workflow::WorkflowSpec spec;
  spec.id = "demo";
  workflow::StageSpec prep;
  prep.name = "prep";
  prep.app = "transform";
  prep.cpu = MilliCpu::fromCores(2);
  prep.memory = ByteSize::fromGiB(2);
  prep.lakeInputs = {"raw/reads"};
  spec.addStage(prep);
  workflow::StageSpec train;
  train.name = "train";
  train.app = "train";
  train.cpu = MilliCpu::fromCores(4);
  train.memory = ByteSize::fromGiB(8);
  train.stageInputs = {{"prep", "input"}};
  spec.addStage(train);
  workflow::StageSpec report;
  report.name = "report";
  report.app = "transform";
  report.cpu = MilliCpu::fromCores(1);
  report.memory = ByteSize::fromGiB(1);
  report.stageInputs = {{"train", "input"}};
  spec.addStage(report);

  // The planned drain, mid-train: evacuate the DAG's intermediates to
  // the survivor (one replicate call — the names are location
  // independent, so consumers never change), steer new submits away,
  // then evict the pods. Exactly what an operator does before taking a
  // cluster down for maintenance.
  core::DataReplicator evacuation(*west);
  sim::ChaosEngine chaos(sim);
  chaos.drain("east-maintenance",
              sim::Time() + sim::Duration::seconds(kDrainAtSeconds), [&] {
                std::printf("[drain] t=%.1fs east: evacuating intermediates, "
                            "withdrawing compute routes, evicting pods\n",
                            sim.now().toSeconds());
                evacuation.replicate(lakeName("wf/demo/prep"), [](Status) {});
                overlay.topology().uninstallRoutesTo(core::kComputePrefix,
                                                     "east");
                overlay.topology().uninstallRoutesTo(core::kSubmitPrefix,
                                                     "east");
                for (const std::string& node : east->cluster().nodeNames()) {
                  east->cluster().failNode(node);
                }
              });

  std::optional<Result<workflow::WorkflowOutcome>> outcome;
  engine.run(spec, [&outcome](Result<workflow::WorkflowOutcome> r) {
    outcome = std::move(r);
  });
  // The directory/repair loops self-reschedule forever; run to a fixed
  // horizon, stop them, then drain the remaining events.
  sim.runUntil(sim::Time() + sim::Duration::minutes(10));
  repair.stop();
  directory.stop();
  sim.run();

  if (!outcome.has_value() || !outcome->ok()) {
    std::printf("workflow did not settle\n");
    return 1;
  }
  const workflow::WorkflowOutcome& wf = (*outcome).value();
  std::printf("\n-- outcome ----------------------------------------------\n");
  for (const auto& [name, st] : wf.stages) {
    std::printf("  %-7s %-10s cluster=%-5s retries=%d runtime=%.1fs\n",
                name.c_str(),
                std::string(workflow::stageStateName(st.state)).c_str(),
                st.cluster.c_str(), st.retries, st.runtime.toSeconds());
  }
  std::printf("  makespan %.1fs; checkpoint restores %d, lineage "
              "recoveries %d, west gateway restores %llu\n",
              wf.makespan.toSeconds(), wf.checkpointRestores,
              wf.lineageRecoveries,
              static_cast<unsigned long long>(
                  west->gateway().counters().ckptRestores));

  const auto& trainStatus = wf.stages.at("train");
  const bool migratedLive = wf.succeeded && trainStatus.cluster == "west" &&
                            wf.checkpointRestores == 1 &&
                            wf.lineageRecoveries == 0 &&
                            wf.stages.at("prep").retries == 0 &&
                            wf.stages.at("report").retries == 0;
  if (migratedLive) {
    std::printf("\ntrain resumed on west with %.1fs of east's work kept — "
                "zero stages recomputed.\n",
                kTrainSeconds - trainStatus.runtime.toSeconds());
  } else {
    std::printf("\nunexpected: the drain did not migrate cleanly\n%s\n",
                wf.trace.c_str());
  }
  return migratedLive ? 0 : 1;
}
