#include "common/workload.hpp"

#include <gtest/gtest.h>

namespace lidc {
namespace {

TEST(WorkloadTest, PoissonMeanRateMatches) {
  PoissonArrivals arrivals(/*eventsPerSecond=*/2.0, 7);
  double total = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) total += arrivals.next().toSeconds();
  EXPECT_NEAR(total / kSamples, 0.5, 0.01);
}

TEST(WorkloadTest, PoissonIsDeterministicPerSeed) {
  PoissonArrivals a(1.0, 42);
  PoissonArrivals b(1.0, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(WorkloadTest, PoissonGapsAreAllPositive) {
  PoissonArrivals arrivals(10.0, 3);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(arrivals.next().toNanos(), 0);
}

TEST(WorkloadTest, FixedArrivalsConstantGap) {
  FixedArrivals arrivals(4.0);
  EXPECT_EQ(arrivals.next(), sim::Duration::seconds(0.25));
  EXPECT_EQ(arrivals.next(), arrivals.next());
}

}  // namespace
}  // namespace lidc
