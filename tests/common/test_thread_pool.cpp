#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace lidc {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.waitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallelFor(1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not hang
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int> values(10'000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> sum{0};
  pool.parallelFor(values.size(),
                   [&](std::size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), 10'000LL * 10'001 / 2);
}

}  // namespace
}  // namespace lidc
