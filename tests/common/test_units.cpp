#include "common/units.hpp"

#include <gtest/gtest.h>

namespace lidc {
namespace {

TEST(ByteSizeTest, ParseBinarySuffixes) {
  EXPECT_EQ(ByteSize::parse("4Gi")->bytes(), 4ULL << 30);
  EXPECT_EQ(ByteSize::parse("512Mi")->bytes(), 512ULL << 20);
  EXPECT_EQ(ByteSize::parse("1Ki")->bytes(), 1024u);
}

TEST(ByteSizeTest, ParseDecimalSuffixes) {
  EXPECT_EQ(ByteSize::parse("100M")->bytes(), 100'000'000u);
  EXPECT_EQ(ByteSize::parse("2G")->bytes(), 2'000'000'000u);
  EXPECT_EQ(ByteSize::parse("1024")->bytes(), 1024u);
}

TEST(ByteSizeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ByteSize::parse("").has_value());
  EXPECT_FALSE(ByteSize::parse("Gi").has_value());
  EXPECT_FALSE(ByteSize::parse("4Q").has_value());
  EXPECT_FALSE(ByteSize::parse("-4Gi").has_value());
}

TEST(ByteSizeTest, ToStringPicksCleanSuffix) {
  EXPECT_EQ(ByteSize::fromGiB(4).toString(), "4Gi");
  EXPECT_EQ(ByteSize::fromMiB(512).toString(), "512Mi");
  EXPECT_EQ(ByteSize(1000).toString(), "1000");
}

TEST(ByteSizeTest, SaturatingSubtraction) {
  EXPECT_EQ((ByteSize(10) - ByteSize(20)).bytes(), 0u);
  EXPECT_EQ((ByteSize(30) - ByteSize(20)).bytes(), 10u);
}

TEST(ByteSizeTest, ArithmeticAndComparison) {
  ByteSize a = ByteSize::fromGiB(1);
  a += ByteSize::fromGiB(1);
  EXPECT_EQ(a, ByteSize::fromGiB(2));
  EXPECT_LT(ByteSize::fromMiB(1), ByteSize::fromGiB(1));
  EXPECT_DOUBLE_EQ(ByteSize::fromGiB(4).gib(), 4.0);
}

TEST(MilliCpuTest, ParseCoresAndMillicores) {
  EXPECT_EQ(MilliCpu::parse("2")->millicores(), 2000u);
  EXPECT_EQ(MilliCpu::parse("500m")->millicores(), 500u);
  EXPECT_EQ(MilliCpu::parse("2.5")->millicores(), 2500u);
}

TEST(MilliCpuTest, ParseRejectsGarbage) {
  EXPECT_FALSE(MilliCpu::parse("").has_value());
  EXPECT_FALSE(MilliCpu::parse("m").has_value());
  EXPECT_FALSE(MilliCpu::parse("two").has_value());
  EXPECT_FALSE(MilliCpu::parse("-1").has_value());
}

TEST(MilliCpuTest, ToStringRoundTrips) {
  EXPECT_EQ(MilliCpu::fromCores(6).toString(), "6");
  EXPECT_EQ(MilliCpu(1500).toString(), "1500m");
}

TEST(MilliCpuTest, SaturatingSubtraction) {
  EXPECT_EQ((MilliCpu(100) - MilliCpu(200)).millicores(), 0u);
}

}  // namespace
}  // namespace lidc
