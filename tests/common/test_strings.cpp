#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace lidc::strings {
namespace {

TEST(StringsTest, SplitPreservesEmptyTokens) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSkipEmptyDropsThem) {
  const auto parts = splitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, SplitOfEmptyStringYieldsOneEmptyToken) {
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_TRUE(splitSkipEmpty("", ',').empty());
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(StringsTest, TrimStripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("/ndn/k8s/compute", "/ndn"));
  EXPECT_FALSE(startsWith("/ndn", "/ndn/k8s"));
  EXPECT_TRUE(endsWith("file.fasta", ".fasta"));
  EXPECT_FALSE(endsWith("x", "longer"));
}

TEST(StringsTest, ParseIntAcceptsExactIntegers) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_FALSE(parseInt("42x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("4.2").has_value());
}

TEST(StringsTest, ParseUintRejectsNegative) {
  EXPECT_EQ(parseUint("10"), 10u);
  EXPECT_FALSE(parseUint("-1").has_value());
}

TEST(StringsTest, ParseDoubleHandlesDecimals) {
  EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
  EXPECT_FALSE(parseDouble("abc").has_value());
  EXPECT_FALSE(parseDouble("1.0extra").has_value());
}

TEST(StringsTest, FormatBytesMatchesTableOneStyle) {
  // The paper writes "941MB" and "2.71GB".
  EXPECT_EQ(formatBytes(941'000'000ULL), "941MB");
  EXPECT_EQ(formatBytes(2'710'000'000ULL), "2.71GB");
  EXPECT_EQ(formatBytes(512), "512B");
  EXPECT_EQ(formatBytes(2'000), "2KB");
}

TEST(StringsTest, FormatDurationMatchesTableOneStyle) {
  // 8h9m50s and 24h16m12s appear in Table I.
  EXPECT_EQ(formatDurationHms(8 * 3600 + 9 * 60 + 50), "8h9m50s");
  EXPECT_EQ(formatDurationHms(24 * 3600 + 16 * 60 + 12), "24h16m12s");
  EXPECT_EQ(formatDurationHms(59), "59s");
  EXPECT_EQ(formatDurationHms(61), "1m1s");
  EXPECT_EQ(formatDurationHms(-5), "0s");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(toLower("BlAsT"), "blast");
  EXPECT_EQ(toLower("123-X"), "123-x");
}

}  // namespace
}  // namespace lidc::strings
