#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lidc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.15);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng(19);
  double sum = 0;
  double sumSq = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / kTrials;
  const double variance = sumSq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.15);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

}  // namespace
}  // namespace lidc
