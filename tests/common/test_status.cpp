#include "common/status.hpp"

#include <gtest/gtest.h>

namespace lidc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.toString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Timeout("a"), Status::Timeout("b"));
  EXPECT_FALSE(Status::Timeout("a") == Status::Internal("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kAborted); ++code) {
    EXPECT_NE(statusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(ok.valueOr(0), 7);
  EXPECT_EQ(bad.valueOr(9), 9);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status failIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status useReturnIfError(int v) {
  LIDC_RETURN_IF_ERROR(failIfNegative(v));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(useReturnIfError(1).ok());
  EXPECT_EQ(useReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lidc
