#include "ndn/pit.hpp"

#include <gtest/gtest.h>

namespace lidc::ndn {
namespace {

Interest makeInterest(const std::string& uri, std::uint32_t nonce = 1,
                      bool canBePrefix = false) {
  Interest interest((Name(uri)));
  interest.setNonce(nonce);
  interest.setCanBePrefix(canBePrefix);
  return interest;
}

TEST(PitTest, InsertCreatesThenFinds) {
  Pit pit;
  auto [entry, isNew] = pit.insert(makeInterest("/a/b"));
  EXPECT_TRUE(isNew);
  ASSERT_NE(entry, nullptr);
  auto [again, isNewAgain] = pit.insert(makeInterest("/a/b", 2));
  EXPECT_FALSE(isNewAgain);
  EXPECT_EQ(entry, again);
  EXPECT_EQ(pit.size(), 1u);
}

TEST(PitTest, DifferentSelectorsAreDifferentEntries) {
  Pit pit;
  pit.insert(makeInterest("/a", 1, false));
  pit.insert(makeInterest("/a", 1, true));
  Interest fresh = makeInterest("/a", 1, false);
  fresh.setMustBeFresh(true);
  pit.insert(fresh);
  EXPECT_EQ(pit.size(), 3u);
}

TEST(PitTest, InRecordRefreshesPerFace) {
  PitEntry entry(makeInterest("/a"));
  entry.insertInRecord(1, 100, sim::Time::fromNanos(10));
  entry.insertInRecord(1, 200, sim::Time::fromNanos(20));
  entry.insertInRecord(2, 300, sim::Time::fromNanos(30));
  ASSERT_EQ(entry.inRecords().size(), 2u);
  EXPECT_EQ(entry.inRecords()[0].nonce, 200u);
}

TEST(PitTest, DuplicateNonceDetectedAcrossFaces) {
  PitEntry entry(makeInterest("/a"));
  entry.insertInRecord(1, 42, sim::Time::fromNanos(0));
  EXPECT_TRUE(entry.isDuplicateNonce(42, 2));   // same nonce, other face
  EXPECT_FALSE(entry.isDuplicateNonce(42, 1));  // same face: retransmission
  EXPECT_FALSE(entry.isDuplicateNonce(43, 2));
}

TEST(PitTest, OutRecordLifecycle) {
  PitEntry entry(makeInterest("/a"));
  EXPECT_FALSE(entry.hasOutRecords());
  entry.insertOutRecord(5, 1, sim::Time::fromNanos(100));
  EXPECT_TRUE(entry.hasOutRecords());
  auto* record = entry.findOutRecord(5);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->lastSent.toNanos(), 100);
  EXPECT_EQ(entry.findOutRecord(6), nullptr);
}

TEST(PitTest, AllUpstreamsNacked) {
  PitEntry entry(makeInterest("/a"));
  EXPECT_FALSE(entry.allUpstreamsNacked());  // vacuous case is false
  entry.insertOutRecord(1, 1, sim::Time());
  entry.insertOutRecord(2, 1, sim::Time());
  entry.findOutRecord(1)->nacked = true;
  EXPECT_FALSE(entry.allUpstreamsNacked());
  entry.findOutRecord(2)->nacked = true;
  EXPECT_TRUE(entry.allUpstreamsNacked());
  // Re-sending on a nacked face clears the flag.
  entry.insertOutRecord(1, 2, sim::Time());
  EXPECT_FALSE(entry.allUpstreamsNacked());
}

TEST(PitTest, FindMatchesExactName) {
  Pit pit;
  pit.insert(makeInterest("/a/b"));
  Data data(Name("/a/b"));
  EXPECT_EQ(pit.findMatches(data).size(), 1u);
  Data other(Name("/a/c"));
  EXPECT_TRUE(pit.findMatches(other).empty());
}

TEST(PitTest, FindMatchesPrefixOnlyWhenCanBePrefix) {
  Pit pit;
  pit.insert(makeInterest("/a", 1, /*canBePrefix=*/true));
  pit.insert(makeInterest("/a", 2, /*canBePrefix=*/false));
  Data deeper(Name("/a/b/c"));
  // Only the CanBePrefix entry matches deeper names.
  EXPECT_EQ(pit.findMatches(deeper).size(), 1u);
  Data exact(Name("/a"));
  EXPECT_EQ(pit.findMatches(exact).size(), 2u);
}

TEST(PitTest, EraseRemovesEntry) {
  Pit pit;
  auto [entry, isNew] = pit.insert(makeInterest("/a"));
  pit.erase(entry);
  EXPECT_EQ(pit.size(), 0u);
  EXPECT_EQ(pit.find(makeInterest("/a")), nullptr);
  pit.erase(nullptr);  // harmless
}

TEST(PitTest, DeleteInRecord) {
  PitEntry entry(makeInterest("/a"));
  entry.insertInRecord(1, 1, sim::Time());
  entry.insertInRecord(2, 2, sim::Time());
  entry.deleteInRecord(1);
  ASSERT_EQ(entry.inRecords().size(), 1u);
  EXPECT_EQ(entry.inRecords()[0].face, 2u);
}

}  // namespace
}  // namespace lidc::ndn
