#include "ndn/fib.hpp"

#include <gtest/gtest.h>

namespace lidc::ndn {
namespace {

TEST(FibTest, LongestPrefixMatchPicksDeepestEntry) {
  Fib fib;
  fib.insert(Name("/ndn"), 1, 0);
  fib.insert(Name("/ndn/k8s"), 2, 0);
  fib.insert(Name("/ndn/k8s/compute"), 3, 0);

  const auto* entry = fib.longestPrefixMatch(Name("/ndn/k8s/compute/job1"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix(), Name("/ndn/k8s/compute"));

  entry = fib.longestPrefixMatch(Name("/ndn/k8s/data/x"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix(), Name("/ndn/k8s"));

  entry = fib.longestPrefixMatch(Name("/ndn"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix(), Name("/ndn"));
}

TEST(FibTest, NoMatchReturnsNull) {
  Fib fib;
  fib.insert(Name("/a"), 1, 0);
  EXPECT_EQ(fib.longestPrefixMatch(Name("/b/c")), nullptr);
}

TEST(FibTest, RootEntryMatchesEverything) {
  Fib fib;
  fib.insert(Name("/"), 9, 0);
  EXPECT_NE(fib.longestPrefixMatch(Name("/anything/at/all")), nullptr);
}

TEST(FibTest, NextHopsSortedByCost) {
  Fib fib;
  fib.insert(Name("/p"), 1, 30);
  fib.insert(Name("/p"), 2, 10);
  fib.insert(Name("/p"), 3, 20);
  const auto* entry = fib.findExact(Name("/p"));
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->nextHops().size(), 3u);
  EXPECT_EQ(entry->nextHops()[0].face, 2u);
  EXPECT_EQ(entry->nextHops()[1].face, 3u);
  EXPECT_EQ(entry->nextHops()[2].face, 1u);
}

TEST(FibTest, UpdatingCostResorts) {
  Fib fib;
  fib.insert(Name("/p"), 1, 10);
  fib.insert(Name("/p"), 2, 20);
  fib.insert(Name("/p"), 1, 30);  // now face 2 is cheapest
  const auto* entry = fib.findExact(Name("/p"));
  ASSERT_EQ(entry->nextHops().size(), 2u);
  EXPECT_EQ(entry->nextHops()[0].face, 2u);
}

TEST(FibTest, RemoveNextHopDropsEmptyEntry) {
  Fib fib;
  fib.insert(Name("/p"), 1, 0);
  fib.removeNextHop(Name("/p"), 1);
  EXPECT_EQ(fib.findExact(Name("/p")), nullptr);
  EXPECT_EQ(fib.size(), 0u);
}

TEST(FibTest, RemoveFaceFromAllEntries) {
  Fib fib;
  fib.insert(Name("/a"), 1, 0);
  fib.insert(Name("/a"), 2, 0);
  fib.insert(Name("/b"), 1, 0);
  fib.removeFaceFromAll(1);
  EXPECT_NE(fib.findExact(Name("/a")), nullptr);
  EXPECT_FALSE(fib.findExact(Name("/a"))->hasNextHop(1));
  EXPECT_EQ(fib.findExact(Name("/b")), nullptr);  // became empty
}

TEST(FibTest, HasNextHop) {
  FibEntry entry((Name("/p")));
  entry.addOrUpdateNextHop(4, 1);
  EXPECT_TRUE(entry.hasNextHop(4));
  EXPECT_FALSE(entry.hasNextHop(5));
}

}  // namespace
}  // namespace lidc::ndn
