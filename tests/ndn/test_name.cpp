#include "ndn/name.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lidc::ndn {
namespace {

TEST(NameTest, ParseSimpleUri) {
  const Name name("/ndn/k8s/compute");
  ASSERT_EQ(name.size(), 3u);
  EXPECT_EQ(name[0].toString(), "ndn");
  EXPECT_EQ(name[2].toString(), "compute");
}

TEST(NameTest, ParseCollapsesEmptySegments) {
  EXPECT_EQ(Name("//a///b/").size(), 2u);
  EXPECT_EQ(Name("/").size(), 0u);
  EXPECT_EQ(Name("").size(), 0u);
}

TEST(NameTest, NdnSchemePrefixAccepted) {
  EXPECT_EQ(Name("ndn:/a/b"), Name("/a/b"));
}

TEST(NameTest, RoundTripUri) {
  const Name name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST");
  EXPECT_EQ(Name(name.toUri()), name);
  EXPECT_EQ(name.toUri(), "/ndn/k8s/compute/mem=4&cpu=6&app=BLAST");
}

TEST(NameTest, EmptyNameUriIsSlash) { EXPECT_EQ(Name().toUri(), "/"); }

TEST(NameTest, PercentEscapingRoundTrips) {
  Name name;
  name.append(Component(std::vector<std::uint8_t>{0x00, 0x2F, 0x41}));  // \0, '/', 'A'
  const std::string uri = name.toUri();
  EXPECT_EQ(uri, "/%00%2FA");
  EXPECT_EQ(Name(uri), name);
}

TEST(NameTest, AppendChains) {
  Name name("/a");
  name.append("b").append("c").appendNumber(42);
  EXPECT_EQ(name.toUri(), "/a/b/c/42");
}

TEST(NameTest, AppendName) {
  Name name("/a/b");
  name.append(Name("/c/d"));
  EXPECT_EQ(name, Name("/a/b/c/d"));
}

TEST(NameTest, SubNameAndPrefix) {
  const Name name("/a/b/c/d");
  EXPECT_EQ(name.subName(1, 2), Name("/b/c"));
  EXPECT_EQ(name.subName(2), Name("/c/d"));
  EXPECT_EQ(name.prefix(2), Name("/a/b"));
  EXPECT_EQ(name.subName(10), Name());
  EXPECT_EQ(name.prefix(0), Name());
}

TEST(NameTest, IsPrefixOf) {
  EXPECT_TRUE(Name("/a/b").isPrefixOf(Name("/a/b/c")));
  EXPECT_TRUE(Name("/a/b").isPrefixOf(Name("/a/b")));
  EXPECT_TRUE(Name("/").isPrefixOf(Name("/x")));
  EXPECT_FALSE(Name("/a/b/c").isPrefixOf(Name("/a/b")));
  EXPECT_FALSE(Name("/a/x").isPrefixOf(Name("/a/b/c")));
}

TEST(NameTest, CanonicalOrderShorterComponentsFirst) {
  // NDN canonical order: length first, then lexicographic.
  EXPECT_LT(Name("/z"), Name("/aa"));
  EXPECT_LT(Name("/a"), Name("/b"));
  EXPECT_LT(Name("/a"), Name("/a/b"));  // prefix sorts first
}

TEST(NameTest, HashConsistentWithEquality) {
  const Name a("/ndn/k8s/data/file");
  const Name b("/ndn/k8s/data/file");
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(NameTest, HashDistinguishesComponentBoundaries) {
  // "/ab/c" and "/a/bc" have the same bytes but different boundaries.
  EXPECT_NE(Name("/ab/c").hash(), Name("/a/bc").hash());
}

TEST(NameTest, UsableInUnorderedContainers) {
  std::unordered_set<Name, NameHash> names;
  names.insert(Name("/a"));
  names.insert(Name("/a"));
  names.insert(Name("/b"));
  EXPECT_EQ(names.size(), 2u);
}

TEST(ComponentTest, FromEscapedRejectsBadEscapes) {
  EXPECT_FALSE(Component::fromEscaped("abc%2").has_value());
  EXPECT_FALSE(Component::fromEscaped("%GG").has_value());
  EXPECT_TRUE(Component::fromEscaped("%41").has_value());
  EXPECT_EQ(Component::fromEscaped("%41")->toString(), "A");
}

TEST(ComponentTest, SemanticCharactersStayReadable) {
  // '=' and '&' are central to LIDC names; they must not be escaped.
  Component component(std::string_view("mem=4&cpu=6"));
  EXPECT_EQ(component.toEscapedString(), "mem=4&cpu=6");
}

}  // namespace
}  // namespace lidc::ndn
