#include "ndn/dead_nonce_list.hpp"

#include <gtest/gtest.h>

#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "net/link.hpp"

namespace lidc::ndn {
namespace {

TEST(DeadNonceListTest, AddAndHas) {
  DeadNonceList dnl(16);
  EXPECT_FALSE(dnl.has(Name("/a"), 1));
  dnl.add(Name("/a"), 1);
  EXPECT_TRUE(dnl.has(Name("/a"), 1));
  EXPECT_FALSE(dnl.has(Name("/a"), 2));
  EXPECT_FALSE(dnl.has(Name("/b"), 1));
}

TEST(DeadNonceListTest, FifoEviction) {
  DeadNonceList dnl(4);
  for (std::uint32_t nonce = 0; nonce < 8; ++nonce) {
    dnl.add(Name("/x"), nonce);
  }
  EXPECT_EQ(dnl.size(), 4u);
  EXPECT_FALSE(dnl.has(Name("/x"), 0));
  EXPECT_TRUE(dnl.has(Name("/x"), 7));
}

TEST(DeadNonceListTest, DuplicateEntriesRefCounted) {
  DeadNonceList dnl(4);
  dnl.add(Name("/x"), 1);
  dnl.add(Name("/x"), 1);
  dnl.add(Name("/x"), 2);
  dnl.add(Name("/x"), 3);
  // Evicts the first copy of (x,1); the second copy keeps it alive.
  dnl.add(Name("/x"), 4);
  EXPECT_TRUE(dnl.has(Name("/x"), 1));
  // Evicting the second copy finally drops it.
  dnl.add(Name("/x"), 5);
  EXPECT_FALSE(dnl.has(Name("/x"), 1));
}

TEST(DeadNonceListTest, ZeroCapacityDisables) {
  DeadNonceList dnl(0);
  dnl.add(Name("/x"), 1);
  EXPECT_FALSE(dnl.has(Name("/x"), 1));
}

TEST(DeadNonceListTest, ForwarderRejectsLateLoopedInterest) {
  // A nonce loops back *after* its PIT entry was satisfied: without the
  // DNL the forwarder would re-forward it; with the DNL it nacks.
  sim::Simulator sim;
  Forwarder consumerNode("consumer", sim);
  Forwarder producerNode("producer", sim);
  net::Link::connect(sim, consumerNode, producerNode,
                     net::LinkParams{sim::Duration::millis(1)});
  auto consumer = std::make_shared<AppFace>("app://c", sim, 1);
  consumerNode.addFace(consumer);
  consumerNode.registerPrefix(Name("/data"), 1);

  auto producer = std::make_shared<AppFace>("app://p", sim, 2);
  producerNode.addFace(producer);
  producerNode.registerPrefix(Name("/data"), producer->id());
  int producerHits = 0;
  producer->setInterestHandler([&](const Interest& interest) {
    ++producerHits;
    Data data(interest.name());
    data.sign();
    producer->putData(std::move(data));
  });

  Interest interest(Name("/data/x"));
  interest.setNonce(4242);
  consumer->expressInterest(interest, [](const Interest&, const Data&) {});
  sim.run();
  ASSERT_EQ(producerHits, 1);

  // The same nonce arrives again at the producer node (simulated loop),
  // long after the PIT entry was consumed. CS would normally answer, so
  // disable it to isolate the DNL behaviour.
  producerNode.cs().setCapacity(0);
  auto looper = std::make_shared<AppFace>("app://loop", sim, 3);
  producerNode.addFace(looper);
  int nacks = 0;
  looper->expressInterest(
      interest, [](const Interest&, const Data&) {},
      [&](const Interest&, const Nack& nack) {
        ++nacks;
        EXPECT_EQ(nack.reason(), NackReason::kDuplicate);
      });
  sim.run();
  EXPECT_EQ(nacks, 1);
  EXPECT_EQ(producerHits, 1);  // never reached the app again
}

}  // namespace
}  // namespace lidc::ndn
