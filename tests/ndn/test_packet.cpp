#include "ndn/packet.hpp"

#include <gtest/gtest.h>

namespace lidc::ndn {
namespace {

TEST(InterestTest, WireRoundTripPreservesEverything) {
  Interest interest(Name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"));
  interest.setCanBePrefix(true)
      .setMustBeFresh(true)
      .setNonce(0xDEADBEEF)
      .setLifetime(sim::Duration::millis(1234))
      .setHopLimit(7)
      .setApplicationParameters("params");

  const auto wire = interest.wireEncode();
  auto decoded = Interest::wireDecode(std::span<const std::uint8_t>(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->name(), interest.name());
  EXPECT_TRUE(decoded->canBePrefix());
  EXPECT_TRUE(decoded->mustBeFresh());
  EXPECT_EQ(decoded->nonce(), 0xDEADBEEFu);
  EXPECT_EQ(decoded->lifetime(), sim::Duration::millis(1234));
  EXPECT_EQ(decoded->hopLimit(), 7);
  EXPECT_EQ(decoded->applicationParameters(),
            (std::vector<std::uint8_t>{'p', 'a', 'r', 'a', 'm', 's'}));
}

TEST(InterestTest, DefaultsDecodeCleanly) {
  Interest interest(Name("/a"));
  const auto wire = interest.wireEncode();
  auto decoded = Interest::wireDecode(std::span<const std::uint8_t>(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->canBePrefix());
  EXPECT_FALSE(decoded->mustBeFresh());
  EXPECT_EQ(decoded->lifetime(), sim::Duration::millis(4000));
}

TEST(InterestTest, GarbageFailsToDecode) {
  const std::vector<std::uint8_t> garbage{0xFF, 0x00, 0x01};
  EXPECT_FALSE(Interest::wireDecode(std::span<const std::uint8_t>(garbage)).ok());
}

TEST(InterestTest, DataPacketIsNotAnInterest) {
  Data data(Name("/a"));
  data.sign();
  const auto wire = data.wireEncode();
  EXPECT_FALSE(Interest::wireDecode(std::span<const std::uint8_t>(wire)).ok());
}

TEST(DataTest, WireRoundTripPreservesEverything) {
  Data data(Name("/ndn/k8s/data/human-ref/seg=3"));
  data.setContent("ACGTACGT")
      .setContentType(ContentType::kBlob)
      .setFreshnessPeriod(sim::Duration::seconds(10));
  data.sign();

  const auto wire = data.wireEncode();
  auto decoded = Data::wireDecode(std::span<const std::uint8_t>(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->name(), data.name());
  EXPECT_EQ(decoded->contentAsString(), "ACGTACGT");
  EXPECT_EQ(decoded->freshnessPeriod(), sim::Duration::seconds(10));
  EXPECT_TRUE(decoded->verify());
}

TEST(DataTest, SignatureDetectsTampering) {
  Data data(Name("/x"));
  data.setContent("original");
  data.sign();
  EXPECT_TRUE(data.verify());
  data.setContent("tampered");
  EXPECT_FALSE(data.verify());
  data.sign();
  EXPECT_TRUE(data.verify());
}

TEST(DataTest, UnsignedDataDoesNotVerify) {
  Data data(Name("/x"));
  data.setContent("c");
  EXPECT_FALSE(data.verify());
}

TEST(DataTest, EmptyContentAllowed) {
  Data data(Name("/empty"));
  data.sign();
  const auto wire = data.wireEncode();
  auto decoded = Data::wireDecode(std::span<const std::uint8_t>(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->content().empty());
  EXPECT_TRUE(decoded->verify());
}

TEST(DataTest, WireSizeGrowsWithContent) {
  Data small(Name("/x"));
  small.setContent(std::string(10, 'a'));
  Data large(Name("/x"));
  large.setContent(std::string(10'000, 'a'));
  EXPECT_GT(large.wireSize(), small.wireSize() + 9'000);
}

TEST(NackTest, CarriesInterestAndReason) {
  Interest interest(Name("/a/b"));
  interest.setNonce(5);
  const Nack nack(interest, NackReason::kNoRoute);
  EXPECT_EQ(nack.interest().name(), Name("/a/b"));
  EXPECT_EQ(nack.reason(), NackReason::kNoRoute);
  EXPECT_EQ(nackReasonName(NackReason::kNoRoute), "NoRoute");
  EXPECT_EQ(nackReasonName(NackReason::kCongestion), "Congestion");
  EXPECT_EQ(nackReasonName(NackReason::kDuplicate), "Duplicate");
}

}  // namespace
}  // namespace lidc::ndn
