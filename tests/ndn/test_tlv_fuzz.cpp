// Seeded fuzz for the TLV decoder and packet codecs (gray-failure
// hardening): on-the-wire corruption must surface as a clean decode
// error, never as a crash, an over-read, or an infinite loop. Three
// adversarial families are driven from fixed seeds so CI (including
// the ASan/UBSan job) replays the exact same buffers every run:
//   1. truncations of valid packets at every byte boundary,
//   2. valid packets with seeded random bit flips,
//   3. TLV headers whose declared length lies about the payload.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ndn/packet.hpp"
#include "ndn/tlv.hpp"

namespace lidc::ndn {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 99, 31337, 8675309};

Interest sampleInterest(std::uint64_t seed) {
  Interest interest(Name("/ndn/k8s/compute/app=aligner/user=fuzz/seed=" +
                         std::to_string(seed)));
  interest.setNonce(static_cast<std::uint32_t>(seed * 2654435761u));
  interest.setMustBeFresh(true);
  interest.setLifetime(sim::Duration::millis(4000));
  interest.setExcludeDigest(seed ^ 0xdeadbeefULL);
  return interest;
}

Data sampleData(std::uint64_t seed) {
  Data data(Name("/ndn/k8s/data/wf/fuzz/seed=" + std::to_string(seed)));
  lidc::Rng rng(seed);
  std::vector<std::uint8_t> payload(64 + rng.uniform(128));
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.uniform(256));
  data.setContent(std::move(payload));
  data.setFreshnessPeriod(sim::Duration::seconds(2));
  data.sign();
  return data;
}

/// Every decode of `wire` must terminate and report ok/error — the
/// assertions live in ASan/UBSan (no over-read) plus "we returned".
void decodeBoth(const std::vector<std::uint8_t>& wire) {
  (void)Interest::wireDecode(wire);
  (void)Data::wireDecode(wire);
  tlv::Decoder decoder(wire);
  // Bounded by the buffer: each readElement either consumes bytes or
  // errors; count iterations to catch a non-advancing loop.
  for (int guard = 0; !decoder.atEnd(); ++guard) {
    ASSERT_LT(guard, 4096) << "decoder failed to make progress";
    if (!decoder.readElement().ok()) break;
  }
}

TEST(TlvFuzzTest, EveryTruncationFailsCleanly) {
  for (const std::uint64_t seed : kSeeds) {
    for (const bool asData : {false, true}) {
      const tlv::Buffer wire =
          asData ? sampleData(seed).wireEncode() : sampleInterest(seed).wireEncode();
      for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        std::vector<std::uint8_t> truncated(wire.begin(),
                                            wire.begin() + static_cast<long>(cut));
        decodeBoth(truncated);
        // A strict prefix of a valid packet is never a valid packet.
        if (asData) {
          EXPECT_FALSE(Data::wireDecode(truncated).ok())
              << "seed=" << seed << " cut=" << cut;
        } else {
          EXPECT_FALSE(Interest::wireDecode(truncated).ok())
              << "seed=" << seed << " cut=" << cut;
        }
      }
    }
  }
}

TEST(TlvFuzzTest, SeededBitFlipsNeverCrashTheDecoder) {
  for (const std::uint64_t seed : kSeeds) {
    lidc::Rng rng(seed ^ 0xb17f11b5ULL);
    for (const bool asData : {false, true}) {
      const tlv::Buffer original =
          asData ? sampleData(seed).wireEncode() : sampleInterest(seed).wireEncode();
      for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> mutated(original.begin(), original.end());
        const int flips = 1 + static_cast<int>(rng.uniform(4));
        for (int f = 0; f < flips; ++f) {
          const std::size_t at = rng.uniform(mutated.size());
          mutated[at] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
        }
        decodeBoth(mutated);
      }
    }
  }
}

TEST(TlvFuzzTest, LengthFieldLiesAreRejectedNotOverRead) {
  // Hand-built headers whose TLV length exceeds the bytes that follow.
  for (const std::uint64_t seed : kSeeds) {
    lidc::Rng rng(seed ^ 0x1e57ULL);
    for (int round = 0; round < 200; ++round) {
      std::vector<std::uint8_t> wire;
      // Single-byte type (1..252): 253+ would be parsed as a multi-byte
      // type var-number and swallow the lying length bytes.
      wire.push_back(static_cast<std::uint8_t>(1 + rng.uniform(252)));
      // Length claims up to 64 KiB - 1 (the most a 2-byte form encodes)...
      const std::uint64_t claimed = 1 + rng.uniform(65535);
      if (claimed < 253) {
        wire.push_back(static_cast<std::uint8_t>(claimed));
      } else {
        wire.push_back(253);
        wire.push_back(static_cast<std::uint8_t>(claimed >> 8));
        wire.push_back(static_cast<std::uint8_t>(claimed & 0xff));
      }
      // ...but only a sliver of payload is actually present.
      const std::uint64_t present = rng.uniform(claimed);
      for (std::uint64_t i = 0; i < present && i < 64; ++i) {
        wire.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      tlv::Decoder decoder(wire);
      EXPECT_FALSE(decoder.readElement().ok()) << "seed=" << seed;
      decodeBoth(wire);
    }
  }
}

TEST(TlvFuzzTest, MultiByteVarNumberTruncationsFailCleanly) {
  // 253/254/255 prefixes announce 2/4/8 length bytes; cut them short.
  for (const std::uint8_t prefix : {253, 254, 255}) {
    for (std::size_t provided = 0; provided < 8; ++provided) {
      std::vector<std::uint8_t> wire{0x05};  // Interest type
      wire.push_back(prefix);
      for (std::size_t i = 0; i < provided; ++i) wire.push_back(0xff);
      tlv::Decoder decoder(wire);
      EXPECT_FALSE(decoder.readElement().ok())
          << "prefix=" << int(prefix) << " provided=" << provided;
      decodeBoth(wire);
    }
  }
}

}  // namespace
}  // namespace lidc::ndn
