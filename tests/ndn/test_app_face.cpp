#include "ndn/app_face.hpp"

#include <gtest/gtest.h>

#include "ndn/forwarder.hpp"

namespace lidc::ndn {
namespace {

class AppFaceTest : public ::testing::Test {
 protected:
  AppFaceTest() : node_("node", sim_) {
    consumer_ = std::make_shared<AppFace>("app://c", sim_, 1);
    producer_ = std::make_shared<AppFace>("app://p", sim_, 2);
    node_.addFace(consumer_);
    node_.addFace(producer_);
    node_.registerPrefix(Name("/p"), producer_->id());
  }

  sim::Simulator sim_;
  Forwarder node_;
  std::shared_ptr<AppFace> consumer_;
  std::shared_ptr<AppFace> producer_;
};

TEST_F(AppFaceTest, NonceAutoAssignedWhenZero) {
  std::uint32_t seenNonce = 0;
  producer_->setInterestHandler([&](const Interest& interest) {
    seenNonce = interest.nonce();
  });
  consumer_->expressInterest(Interest(Name("/p/x")),
                             [](const Interest&, const Data&) {});
  sim_.run();
  EXPECT_NE(seenNonce, 0u);
}

TEST_F(AppFaceTest, ExplicitNoncePreserved) {
  std::uint32_t seenNonce = 0;
  producer_->setInterestHandler([&](const Interest& interest) {
    seenNonce = interest.nonce();
  });
  Interest interest(Name("/p/x"));
  interest.setNonce(424242);
  consumer_->expressInterest(interest, [](const Interest&, const Data&) {});
  sim_.run();
  EXPECT_EQ(seenNonce, 424242u);
}

TEST_F(AppFaceTest, CanBePrefixInterestAcceptsDeeperData) {
  producer_->setInterestHandler([this](const Interest& interest) {
    Data data(Name(interest.name()).append("v1").append("seg=0"));
    data.sign();
    producer_->putData(std::move(data));
  });
  Name receivedName;
  Interest interest(Name("/p/obj"));
  interest.setCanBePrefix(true);
  consumer_->expressInterest(interest, [&](const Interest&, const Data& data) {
    receivedName = data.name();
  });
  sim_.run();
  EXPECT_EQ(receivedName, Name("/p/obj/v1/seg=0"));
}

TEST_F(AppFaceTest, PendingCountTracksLifecycle) {
  producer_->setInterestHandler([this](const Interest& interest) {
    Data data(interest.name());
    data.sign();
    producer_->putData(std::move(data));
  });
  EXPECT_EQ(consumer_->pendingInterestCount(), 0u);
  consumer_->expressInterest(Interest(Name("/p/x")),
                             [](const Interest&, const Data&) {});
  // Resolution is synchronous within one event cascade here; after run
  // the pending set must be empty.
  sim_.run();
  EXPECT_EQ(consumer_->pendingInterestCount(), 0u);
}

TEST_F(AppFaceTest, TimeoutFiresExactlyOnceAndCleansUp) {
  int timeouts = 0;
  Interest interest(Name("/p/silent"));
  interest.setLifetime(sim::Duration::millis(100));
  consumer_->expressInterest(
      interest, [](const Interest&, const Data&) { FAIL(); }, nullptr,
      [&](const Interest&) { ++timeouts; });
  sim_.run();
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(consumer_->pendingInterestCount(), 0u);
}

TEST_F(AppFaceTest, PutDataIsSignedAutomatically) {
  producer_->setInterestHandler([this](const Interest& interest) {
    Data data(interest.name());
    data.setContent("unsigned");
    producer_->putData(std::move(data));  // putData signs
  });
  bool verified = false;
  consumer_->expressInterest(Interest(Name("/p/x")),
                             [&](const Interest&, const Data& data) {
                               verified = data.verify();
                             });
  sim_.run();
  EXPECT_TRUE(verified);
}

TEST_F(AppFaceTest, DownFaceDropsTraffic) {
  producer_->setInterestHandler([](const Interest&) { FAIL(); });
  consumer_->setUp(false);
  consumer_->expressInterest(Interest(Name("/p/x")),
                             [](const Interest&, const Data&) { FAIL(); });
  sim_.run();
  // Nothing crashed; the Interest never entered the forwarder (counter 0).
  EXPECT_EQ(consumer_->counters().nInInterests, 0u);
}

}  // namespace
}  // namespace lidc::ndn
