#include "ndn/cs.hpp"

#include <gtest/gtest.h>

namespace lidc::ndn {
namespace {

Data makeData(const std::string& uri, sim::Duration freshness = sim::Duration()) {
  Data data((Name(uri)));
  data.setContent(uri);
  data.setFreshnessPeriod(freshness);
  data.sign();
  return data;
}

Interest makeInterest(const std::string& uri, bool canBePrefix = false,
                      bool mustBeFresh = false) {
  Interest interest((Name(uri)));
  interest.setCanBePrefix(canBePrefix);
  interest.setMustBeFresh(mustBeFresh);
  return interest;
}

TEST(ContentStoreTest, ExactMatchHit) {
  ContentStore cs;
  cs.insert(makeData("/a/b"), sim::Time());
  auto hit = cs.find(makeInterest("/a/b"), sim::Time());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name(), Name("/a/b"));
  EXPECT_EQ(cs.hits(), 1u);
}

TEST(ContentStoreTest, ExactMatchDoesNotMatchDeeperName) {
  ContentStore cs;
  cs.insert(makeData("/a/b/c"), sim::Time());
  EXPECT_FALSE(cs.find(makeInterest("/a/b"), sim::Time()).has_value());
  EXPECT_EQ(cs.misses(), 1u);
}

TEST(ContentStoreTest, PrefixMatchWithCanBePrefix) {
  ContentStore cs;
  cs.insert(makeData("/a/b/c"), sim::Time());
  auto hit = cs.find(makeInterest("/a/b", /*canBePrefix=*/true), sim::Time());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name(), Name("/a/b/c"));
}

TEST(ContentStoreTest, PrefixMatchDoesNotCrossSubtree) {
  ContentStore cs;
  cs.insert(makeData("/a/bb"), sim::Time());
  EXPECT_FALSE(cs.find(makeInterest("/a/b", true), sim::Time()).has_value());
}

TEST(ContentStoreTest, MustBeFreshRespectsFreshnessPeriod) {
  ContentStore cs;
  cs.insert(makeData("/a", sim::Duration::seconds(1)), sim::Time());
  // Within freshness: hit.
  EXPECT_TRUE(cs.find(makeInterest("/a", false, true),
                      sim::Time() + sim::Duration::millis(500))
                  .has_value());
  // After freshness: stale, no hit for MustBeFresh...
  EXPECT_FALSE(cs.find(makeInterest("/a", false, true),
                       sim::Time() + sim::Duration::seconds(2))
                   .has_value());
  // ...but a hit without MustBeFresh.
  EXPECT_TRUE(cs.find(makeInterest("/a"),
                      sim::Time() + sim::Duration::seconds(2))
                  .has_value());
}

TEST(ContentStoreTest, ZeroFreshnessNeverSatisfiesMustBeFresh) {
  ContentStore cs;
  cs.insert(makeData("/a"), sim::Time());
  EXPECT_FALSE(cs.find(makeInterest("/a", false, true), sim::Time()).has_value());
}

TEST(ContentStoreTest, LruEvictionDropsColdest) {
  ContentStore cs(2);
  cs.insert(makeData("/a"), sim::Time());
  cs.insert(makeData("/b"), sim::Time());
  // Touch /a so /b is the LRU victim.
  (void)cs.find(makeInterest("/a"), sim::Time());
  cs.insert(makeData("/c"), sim::Time());
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_TRUE(cs.find(makeInterest("/a"), sim::Time()).has_value());
  EXPECT_FALSE(cs.find(makeInterest("/b"), sim::Time()).has_value());
  EXPECT_TRUE(cs.find(makeInterest("/c"), sim::Time()).has_value());
}

TEST(ContentStoreTest, ReinsertRefreshesArrivalTime) {
  ContentStore cs;
  cs.insert(makeData("/a", sim::Duration::seconds(1)), sim::Time());
  // Re-inserted at t=5s: fresh again relative to the new arrival.
  cs.insert(makeData("/a", sim::Duration::seconds(1)),
            sim::Time() + sim::Duration::seconds(5));
  EXPECT_TRUE(cs.find(makeInterest("/a", false, true),
                      sim::Time() + sim::Duration::seconds(5.5))
                  .has_value());
}

TEST(ContentStoreTest, ZeroCapacityStoresNothing) {
  ContentStore cs(0);
  cs.insert(makeData("/a"), sim::Time());
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ContentStoreTest, ShrinkingCapacityEvicts) {
  ContentStore cs(4);
  for (const char* uri : {"/a", "/b", "/c", "/d"}) {
    cs.insert(makeData(uri), sim::Time());
  }
  cs.setCapacity(2);
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ContentStoreTest, EraseAndClear) {
  ContentStore cs;
  cs.insert(makeData("/a"), sim::Time());
  cs.insert(makeData("/b"), sim::Time());
  cs.erase(Name("/a"));
  EXPECT_EQ(cs.size(), 1u);
  cs.erase(Name("/missing"));  // harmless
  cs.clear();
  EXPECT_EQ(cs.size(), 0u);
}

/// Signed, then tampered: the signature no longer matches the content.
Data makePoisoned(const std::string& uri) {
  Data data = makeData(uri);
  auto bytes = data.content();
  bytes[0] ^= 0x01;
  data.setContent(std::move(bytes));
  return data;
}

TEST(ContentStoreTest, PoisonedDataRejectedAtInsert) {
  ContentStore cs;
  cs.insert(makePoisoned("/a"), sim::Time());
  EXPECT_EQ(cs.size(), 0u);
  EXPECT_EQ(cs.poisonedRejects(), 1u);
  EXPECT_FALSE(cs.find(makeInterest("/a"), sim::Time()).has_value());
}

TEST(ContentStoreTest, PoisonedEntryEvictedOnLookupNotServed) {
  ContentStore cs;
  // Let the bad entry in (verification off — e.g. an undefended bench),
  // then flip the defense back on: the lookup must evict, not serve.
  cs.setVerification(false);
  cs.insert(makePoisoned("/a"), sim::Time());
  ASSERT_EQ(cs.size(), 1u);
  cs.setVerification(true);
  EXPECT_FALSE(cs.find(makeInterest("/a"), sim::Time()).has_value());
  EXPECT_EQ(cs.poisonedEvictions(), 1u);
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ContentStoreTest, UnsignedDataIsAdmittedUnchanged) {
  ContentStore cs;
  Data data((Name("/plain")));
  data.setContent("no signature at all");
  cs.insert(data, sim::Time());
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs.find(makeInterest("/plain"), sim::Time()).has_value());
  EXPECT_EQ(cs.poisonedRejects(), 0u);
}

TEST(ContentStoreTest, ExcludeDigestSkipsTheHintedEntry) {
  ContentStore cs;
  const Data data = makeData("/a/b");
  cs.insert(data, sim::Time());
  Interest interest = makeInterest("/a/b");
  interest.setExcludeDigest(data.contentDigest());
  // The consumer flagged this exact payload as bad: the CS must not
  // re-serve it, forcing the Interest upstream to the producer.
  EXPECT_FALSE(cs.find(interest, sim::Time()).has_value());
  // A different digest hint still hits.
  Interest other = makeInterest("/a/b");
  other.setExcludeDigest(data.contentDigest() ^ 1u);
  EXPECT_TRUE(cs.find(other, sim::Time()).has_value());
}

TEST(ContentStoreTest, ServeStaleModeReplaysExpiredEntriesAgainstMustBeFresh) {
  ContentStore cs;
  cs.insert(makeData("/a", sim::Duration::seconds(1)), sim::Time());
  const sim::Time later = sim::Time() + sim::Duration::seconds(5);
  const Interest fresh = makeInterest("/a", false, /*mustBeFresh=*/true);
  // Healthy cache: the entry expired 4 s ago, MustBeFresh misses.
  EXPECT_FALSE(cs.find(fresh, later).has_value());
  // Gray cache (ChaosEngine::staleReplay toggles this): the same
  // Interest is answered with the stale entry.
  cs.setServeStale(true);
  EXPECT_TRUE(cs.find(fresh, later).has_value());
  cs.setServeStale(false);
  EXPECT_FALSE(cs.find(fresh, later).has_value());
}

}  // namespace
}  // namespace lidc::ndn
