#include "ndn/tlv.hpp"

#include <gtest/gtest.h>

namespace lidc::ndn::tlv {
namespace {

TEST(TlvTest, VarNumberWidths) {
  Encoder e;
  e.writeVarNumber(252);        // 1 byte
  e.writeVarNumber(253);        // 3 bytes
  e.writeVarNumber(0xFFFF);     // 3 bytes
  e.writeVarNumber(0x10000);    // 5 bytes
  e.writeVarNumber(0x100000000ULL);  // 9 bytes
  EXPECT_EQ(e.size(), 1u + 3 + 3 + 5 + 9);
}

TEST(TlvTest, BlockRoundTrip) {
  Encoder e;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  e.writeBlock(0x08, payload);
  Decoder d(std::span<const std::uint8_t>(e.buffer()));
  auto element = d.readElement();
  ASSERT_TRUE(element.ok());
  EXPECT_EQ(element->type, 0x08u);
  EXPECT_EQ(std::vector<std::uint8_t>(element->value.begin(), element->value.end()),
            payload);
  EXPECT_TRUE(d.atEnd());
}

TEST(TlvTest, NonNegativeIntegerMinimalWidths) {
  for (const std::uint64_t value :
       {0ULL, 255ULL, 256ULL, 65535ULL, 65536ULL, 4294967295ULL, 4294967296ULL}) {
    Encoder e;
    e.writeNonNegativeInteger(0x0A, value);
    Decoder d(std::span<const std::uint8_t>(e.buffer()));
    auto element = d.readElement(0x0A);
    ASSERT_TRUE(element.ok());
    auto decoded = Decoder::readNonNegativeInteger(element->value);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, value);
  }
}

TEST(TlvTest, NestedEncoding) {
  Encoder inner;
  inner.writeBlock(0x08, std::vector<std::uint8_t>{'h', 'i'});
  Encoder outer;
  outer.writeNested(0x07, inner);
  Decoder d(std::span<const std::uint8_t>(outer.buffer()));
  auto name = d.readElement(0x07);
  ASSERT_TRUE(name.ok());
  Decoder innerDecoder(name->value);
  auto component = innerDecoder.readElement(0x08);
  ASSERT_TRUE(component.ok());
  EXPECT_EQ(component->value.size(), 2u);
}

TEST(TlvTest, FlagIsZeroLength) {
  Encoder e;
  e.writeFlag(0x21);
  Decoder d(std::span<const std::uint8_t>(e.buffer()));
  auto flag = d.readElement(0x21);
  ASSERT_TRUE(flag.ok());
  EXPECT_TRUE(flag->value.empty());
}

TEST(TlvTest, TruncatedLengthFails) {
  const std::vector<std::uint8_t> bad{0x08, 0x05, 1, 2};  // claims 5, has 2
  Decoder d{std::span<const std::uint8_t>(bad)};
  EXPECT_FALSE(d.readElement().ok());
}

TEST(TlvTest, TruncatedVarNumberFails) {
  const std::vector<std::uint8_t> bad{253, 0x01};  // 2-byte number cut short
  Decoder d{std::span<const std::uint8_t>(bad)};
  EXPECT_FALSE(d.readElement().ok());
}

TEST(TlvTest, EmptyInputFails) {
  Decoder d(std::span<const std::uint8_t>{});
  EXPECT_TRUE(d.atEnd());
  EXPECT_FALSE(d.readElement().ok());
}

TEST(TlvTest, WrongExpectedTypeFails) {
  Encoder e;
  e.writeBlock(0x08, std::vector<std::uint8_t>{});
  Decoder d(std::span<const std::uint8_t>(e.buffer()));
  EXPECT_FALSE(d.readElement(0x07).ok());
}

TEST(TlvTest, BadIntegerWidthRejected) {
  const std::vector<std::uint8_t> threeBytes{1, 2, 3};
  EXPECT_FALSE(
      Decoder::readNonNegativeInteger(std::span<const std::uint8_t>(threeBytes)).ok());
}

}  // namespace
}  // namespace lidc::ndn::tlv
