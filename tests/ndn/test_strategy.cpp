// Strategy behaviour over a fan-out topology: one consumer node with
// two upstream producers reachable at different costs.
#include "ndn/strategy.hpp"

#include <gtest/gtest.h>

#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "net/link.hpp"

namespace lidc::ndn {
namespace {

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : hub_("hub", sim_), near_("near", sim_), far_("far", sim_) {
    // hub -- near (5 ms), hub -- far (50 ms)
    auto [hubToNear, nearToHub] = net::Link::connect(
        sim_, hub_, near_, net::LinkParams{sim::Duration::millis(5), 0.0, 0.0},
        &nearLink_);
    auto [hubToFar, farToHub] = net::Link::connect(
        sim_, hub_, far_, net::LinkParams{sim::Duration::millis(50), 0.0, 0.0},
        &farLink_);
    hubToNear_ = hubToNear;
    hubToFar_ = hubToFar;

    consumer_ = std::make_shared<AppFace>("app://consumer", sim_, 1);
    hub_.addFace(consumer_);

    nearApp_ = attachProducer(near_, "near", &nearCount_);
    farApp_ = attachProducer(far_, "far", &farCount_);

    hub_.registerPrefix(Name("/svc"), hubToNear_, /*cost=*/5);
    hub_.registerPrefix(Name("/svc"), hubToFar_, /*cost=*/50);
  }

  std::shared_ptr<AppFace> attachProducer(Forwarder& node, const std::string& label,
                                          int* count) {
    auto app = std::make_shared<AppFace>("app://" + label, sim_,
                                         std::hash<std::string>{}(label));
    node.addFace(app);
    node.registerPrefix(Name("/svc"), app->id());
    // Raw-pointer capture: the forwarder owns the face; a shared_ptr
    // capture would cycle through the handler and leak.
    app->setInterestHandler([face = app.get(), label, count](const Interest& interest) {
      ++*count;
      Data data(interest.name());
      data.setContent(label);
      data.sign();
      face->putData(std::move(data));
    });
    return app;
  }

  Interest uniqueInterest(int i) {
    Interest interest(Name("/svc/req" + std::to_string(i)));
    interest.setLifetime(sim::Duration::seconds(2));
    return interest;
  }

  sim::Simulator sim_;
  Forwarder hub_;
  Forwarder near_;
  Forwarder far_;
  std::shared_ptr<net::Link> nearLink_;
  std::shared_ptr<net::Link> farLink_;
  FaceId hubToNear_ = kInvalidFaceId;
  FaceId hubToFar_ = kInvalidFaceId;
  std::shared_ptr<AppFace> consumer_;
  std::shared_ptr<AppFace> nearApp_;
  std::shared_ptr<AppFace> farApp_;
  int nearCount_ = 0;
  int farCount_ = 0;
};

TEST_F(StrategyTest, BestRoutePrefersLowestCost) {
  for (int i = 0; i < 10; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
  }
  sim_.run();
  EXPECT_EQ(nearCount_, 10);
  EXPECT_EQ(farCount_, 0);
}

TEST_F(StrategyTest, BestRouteFailsOverWhenNearLinkDown) {
  nearLink_->setUp(false);
  std::string answeredBy;
  consumer_->expressInterest(uniqueInterest(0),
                             [&](const Interest&, const Data& data) {
                               answeredBy = data.contentAsString();
                             });
  sim_.run();
  EXPECT_EQ(answeredBy, "far");
}

TEST_F(StrategyTest, BestRouteFailsOverOnNack) {
  // The near producer nacks (e.g. cluster at capacity).
  nearApp_->setInterestHandler([this](const Interest& interest) {
    ++nearCount_;
    nearApp_->putNack(interest, NackReason::kCongestion);
  });
  std::string answeredBy;
  consumer_->expressInterest(uniqueInterest(0),
                             [&](const Interest&, const Data& data) {
                               answeredBy = data.contentAsString();
                             });
  sim_.run();
  EXPECT_EQ(nearCount_, 1);
  EXPECT_EQ(answeredBy, "far");
}

TEST_F(StrategyTest, BestRouteNacksDownstreamWhenAllUpstreamsNack) {
  auto rejectAll = [](const std::shared_ptr<AppFace>& app) {
    app->setInterestHandler([face = app.get()](const Interest& interest) {
      face->putNack(interest, NackReason::kCongestion);
    });
  };
  rejectAll(nearApp_);
  rejectAll(farApp_);
  int nacks = 0;
  consumer_->expressInterest(
      uniqueInterest(0), [](const Interest&, const Data&) {},
      [&](const Interest&, const Nack&) { ++nacks; });
  sim_.run();
  EXPECT_EQ(nacks, 1);
}

TEST_F(StrategyTest, MulticastReachesAllUpstreams) {
  hub_.setStrategy(Name("/svc"), std::make_unique<MulticastStrategy>(hub_));
  int received = 0;
  consumer_->expressInterest(uniqueInterest(0),
                             [&](const Interest&, const Data&) { ++received; });
  sim_.run();
  EXPECT_EQ(nearCount_, 1);
  EXPECT_EQ(farCount_, 1);
  // The consumer sees exactly one Data (first wins, PIT consumed).
  EXPECT_EQ(received, 1);
}

TEST_F(StrategyTest, RoundRobinAlternates) {
  hub_.setStrategy(Name("/svc"), std::make_unique<RoundRobinStrategy>(hub_));
  for (int i = 0; i < 10; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
    sim_.run();
  }
  EXPECT_EQ(nearCount_, 5);
  EXPECT_EQ(farCount_, 5);
}

TEST_F(StrategyTest, LoadBalanceSpreadsButFavoursFasterUpstream) {
  hub_.setStrategy(Name("/svc"), std::make_unique<LoadBalanceStrategy>(hub_, 7));
  for (int i = 0; i < 200; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
    sim_.run();
  }
  EXPECT_GT(nearCount_, 0);
  EXPECT_GT(farCount_, 0);
  // 5 ms SRTT vs 50 ms SRTT => roughly 10:1 weighting.
  EXPECT_GT(nearCount_, farCount_ * 3);
}

TEST_F(StrategyTest, AsfProbesAndConvergesOnFastestUpstream) {
  // Costs are misleading here: give "far" the lower configured cost so
  // only measured RTT can steer ASF to the actually-faster upstream.
  hub_.fib().removeFaceFromAll(hubToNear_);
  hub_.fib().removeFaceFromAll(hubToFar_);
  hub_.registerPrefix(Name("/svc"), hubToNear_, /*cost=*/100);
  hub_.registerPrefix(Name("/svc"), hubToFar_, /*cost=*/1);
  hub_.setStrategy(Name("/svc"), std::make_unique<AsfStrategy>(hub_, 5, 4));

  for (int i = 0; i < 40; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
    sim_.run();
  }
  // ASF starts on the low-cost (far) face, probes the other, measures a
  // 10 ms RTT vs 100 ms, and converges on "near".
  EXPECT_GT(nearCount_, farCount_);
  EXPECT_GT(nearCount_, 25);
}

TEST_F(StrategyTest, AsfRecoversWhenPreferredUpstreamDies) {
  hub_.setStrategy(Name("/svc"), std::make_unique<AsfStrategy>(hub_, 5, 4));
  for (int i = 0; i < 20; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
    sim_.run();
  }
  ASSERT_GT(nearCount_, 0);
  nearLink_->setUp(false);
  int answered = 0;
  for (int i = 100; i < 110; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [&](const Interest&, const Data&) { ++answered; });
    sim_.run();
  }
  EXPECT_EQ(answered, 10);  // all served by "far" after the outage
}

TEST_F(StrategyTest, RttMeasurementsConverge) {
  for (int i = 0; i < 20; ++i) {
    consumer_->expressInterest(uniqueInterest(i),
                               [](const Interest&, const Data&) {});
    sim_.run();
  }
  auto srtt = hub_.measurements().srtt(hubToNear_);
  ASSERT_TRUE(srtt.has_value());
  // RTT over the 5 ms link is 10 ms.
  EXPECT_NEAR(srtt->toSeconds(), 0.010, 0.002);
}

TEST_F(StrategyTest, MeasurementsForgottenWithFace) {
  consumer_->expressInterest(uniqueInterest(0), [](const Interest&, const Data&) {});
  sim_.run();
  ASSERT_TRUE(hub_.measurements().srtt(hubToNear_).has_value());
  hub_.removeFace(hubToNear_);
  EXPECT_FALSE(hub_.measurements().srtt(hubToNear_).has_value());
}

}  // namespace
}  // namespace lidc::ndn
