// Forwarder pipeline tests over real two/three-node topologies:
// producer/consumer exchange, CS hits, Interest aggregation, loop
// suppression, timeouts, and nack propagation.
#include "ndn/forwarder.hpp"

#include <gtest/gtest.h>

#include "ndn/app_face.hpp"
#include "net/link.hpp"

namespace lidc::ndn {
namespace {

class ForwarderTest : public ::testing::Test {
 protected:
  ForwarderTest()
      : consumerNode_("consumer", sim_), producerNode_("producer", sim_) {
    net::Link::connect(sim_, consumerNode_, producerNode_,
                       net::LinkParams{sim::Duration::millis(5), 0.0, 0.0});

    consumerApp_ = std::make_shared<AppFace>("app://consumer", sim_, 1);
    consumerNode_.addFace(consumerApp_);

    producerApp_ = std::make_shared<AppFace>("app://producer", sim_, 2);
    producerNode_.addFace(producerApp_);
    producerNode_.registerPrefix(Name("/data"), producerApp_->id());

    // Consumer's route to the producer: its link face is id 1.
    consumerNode_.registerPrefix(Name("/data"), 1);

    producerApp_->setInterestHandler([this](const Interest& interest) {
      ++producerInterests_;
      if (!respond_) return;
      Data data(interest.name());
      data.setContent("payload");
      data.setFreshnessPeriod(sim::Duration::seconds(10));
      data.sign();
      producerApp_->putData(std::move(data));
    });
  }

  Interest makeInterest(const std::string& uri) {
    Interest interest((Name(uri)));
    interest.setLifetime(sim::Duration::seconds(2));
    return interest;
  }

  sim::Simulator sim_;
  Forwarder consumerNode_;
  Forwarder producerNode_;
  std::shared_ptr<AppFace> consumerApp_;
  std::shared_ptr<AppFace> producerApp_;
  int producerInterests_ = 0;
  bool respond_ = true;
};

TEST_F(ForwarderTest, BasicExchangeDeliversData) {
  int received = 0;
  consumerApp_->expressInterest(makeInterest("/data/x"),
                                [&](const Interest&, const Data& data) {
                                  ++received;
                                  EXPECT_EQ(data.contentAsString(), "payload");
                                });
  sim_.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(producerInterests_, 1);
  // RTT = 2 * 5ms.
  EXPECT_DOUBLE_EQ(sim_.now().toSeconds(), 0.010);
}

TEST_F(ForwarderTest, SecondRequestServedFromContentStore) {
  consumerApp_->expressInterest(makeInterest("/data/x"),
                                [](const Interest&, const Data&) {});
  sim_.run();
  int received = 0;
  consumerApp_->expressInterest(makeInterest("/data/x"),
                                [&](const Interest&, const Data&) { ++received; });
  sim_.run();
  EXPECT_EQ(received, 1);
  // The producer never saw the second Interest.
  EXPECT_EQ(producerInterests_, 1);
  EXPECT_GE(consumerNode_.counters().nCsHits, 1u);
}

TEST_F(ForwarderTest, ConcurrentIdenticalInterestsAggregate) {
  // Two different downstream apps on the same node asking the same name:
  // only one Interest goes upstream.
  auto secondApp = std::make_shared<AppFace>("app://consumer2", sim_, 3);
  consumerNode_.addFace(secondApp);
  int received = 0;
  Interest i1 = makeInterest("/data/agg");
  i1.setNonce(111);
  Interest i2 = makeInterest("/data/agg");
  i2.setNonce(222);
  consumerApp_->expressInterest(i1, [&](const Interest&, const Data&) { ++received; });
  secondApp->expressInterest(i2, [&](const Interest&, const Data&) { ++received; });
  sim_.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(producerInterests_, 1);
}

TEST_F(ForwarderTest, DuplicateNonceNacked) {
  // The same nonce arriving on a different face of the producer node is
  // a loop; inject directly.
  auto otherApp = std::make_shared<AppFace>("app://other", sim_, 4);
  producerNode_.addFace(otherApp);

  respond_ = false;
  Interest looped = makeInterest("/data/loop");
  looped.setNonce(777);
  int nacks = 0;
  // First arrival via the link (from consumer), second via otherApp.
  consumerApp_->expressInterest(looped, [](const Interest&, const Data&) {});
  sim_.runUntil(sim::Time::fromNanos(sim::Duration::millis(6).toNanos()));
  otherApp->expressInterest(
      looped, [](const Interest&, const Data&) {},
      [&](const Interest&, const Nack& nack) {
        ++nacks;
        EXPECT_EQ(nack.reason(), NackReason::kDuplicate);
      });
  sim_.run();
  EXPECT_EQ(nacks, 1);
  EXPECT_GE(producerNode_.counters().nDuplicateNonce, 1u);
}

TEST_F(ForwarderTest, NoRouteProducesNack) {
  int nacks = 0;
  consumerApp_->expressInterest(
      makeInterest("/unrouted/name"), [](const Interest&, const Data&) {},
      [&](const Interest&, const Nack& nack) {
        ++nacks;
        EXPECT_EQ(nack.reason(), NackReason::kNoRoute);
      });
  sim_.run();
  EXPECT_EQ(nacks, 1);
}

TEST_F(ForwarderTest, UnansweredInterestTimesOut) {
  respond_ = false;
  int timeouts = 0;
  consumerApp_->expressInterest(
      makeInterest("/data/silent"), [](const Interest&, const Data&) {},
      nullptr, [&](const Interest&) { ++timeouts; });
  sim_.run();
  EXPECT_EQ(timeouts, 1);
  EXPECT_GE(producerNode_.counters().nUnsatisfied, 1u);
  // Both PITs are clean afterwards.
  EXPECT_EQ(consumerNode_.pit().size(), 0u);
  EXPECT_EQ(producerNode_.pit().size(), 0u);
}

TEST_F(ForwarderTest, HopLimitZeroIsDropped) {
  respond_ = false;
  Interest interest = makeInterest("/data/h");
  interest.setHopLimit(0);
  consumerApp_->expressInterest(interest, [](const Interest&, const Data&) {});
  sim_.run();
  EXPECT_EQ(producerInterests_, 0);
}

TEST_F(ForwarderTest, UnsolicitedDataDropped) {
  Data data(Name("/data/unsolicited"));
  data.sign();
  producerApp_->putData(data);
  sim_.run();
  EXPECT_GE(producerNode_.counters().nUnsolicitedData, 1u);
}

TEST_F(ForwarderTest, FaceRemovalCleansFib) {
  consumerNode_.removeFace(1);
  int nacks = 0;
  consumerApp_->expressInterest(
      makeInterest("/data/x"), [](const Interest&, const Data&) {},
      [&](const Interest&, const Nack&) { ++nacks; });
  sim_.run();
  EXPECT_EQ(nacks, 1);
}

TEST_F(ForwarderTest, CountersTrackTraffic) {
  consumerApp_->expressInterest(makeInterest("/data/x"),
                                [](const Interest&, const Data&) {});
  sim_.run();
  EXPECT_EQ(consumerNode_.counters().nInInterests, 1u);
  EXPECT_EQ(consumerNode_.counters().nOutInterests, 1u);
  EXPECT_EQ(consumerNode_.counters().nInData, 1u);
  EXPECT_EQ(producerNode_.counters().nSatisfied, 1u);
}

TEST_F(ForwarderTest, StrategyChoiceByLongestPrefix) {
  consumerNode_.setStrategy(Name("/data"),
                            std::make_unique<MulticastStrategy>(consumerNode_));
  EXPECT_EQ(consumerNode_.findStrategy(Name("/data/deep/name")).name(), "multicast");
  EXPECT_EQ(consumerNode_.findStrategy(Name("/other")).name(), "best-route");
}

}  // namespace
}  // namespace lidc::ndn
