#include "k8s/scheduler.hpp"

#include <gtest/gtest.h>

namespace lidc::k8s {
namespace {

Pod makePod(const std::string& name, std::uint64_t cores, std::uint64_t gib) {
  PodSpec spec;
  spec.requests = Resources{MilliCpu::fromCores(cores), ByteSize::fromGiB(gib)};
  return Pod(name, "default", spec);
}

TEST(SchedulerTest, FiltersNodesWithoutCapacity) {
  Scheduler scheduler;
  Node small("small", Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)});
  Node big("big", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  const Pod pod = makePod("p", 4, 8);
  auto selected = scheduler.selectNode(pod, {&small, &big});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(*selected, "big");
}

TEST(SchedulerTest, FailsWhenNothingFits) {
  Scheduler scheduler;
  Node tiny("tiny", Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)});
  auto selected = scheduler.selectNode(makePod("p", 4, 8), {&tiny});
  EXPECT_FALSE(selected.ok());
  EXPECT_EQ(selected.status().code(), StatusCode::kResourceExhausted);
}

TEST(SchedulerTest, NotReadyNodesExcluded) {
  Scheduler scheduler;
  Node node("n", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  node.setReady(false);
  EXPECT_FALSE(scheduler.selectNode(makePod("p", 1, 1), {&node}).ok());
}

TEST(SchedulerTest, LeastAllocatedSpreads) {
  Scheduler scheduler(ScoringPolicy::kLeastAllocated);
  Node idle("idle", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  Node busy("busy", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  busy.allocate("existing", Resources{MilliCpu::fromCores(6), ByteSize::fromGiB(12)});
  auto selected = scheduler.selectNode(makePod("p", 1, 1), {&busy, &idle});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(*selected, "idle");
}

TEST(SchedulerTest, MostAllocatedBinPacks) {
  Scheduler scheduler(ScoringPolicy::kMostAllocated);
  Node idle("idle", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  Node busy("busy", Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  busy.allocate("existing", Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)});
  auto selected = scheduler.selectNode(makePod("p", 1, 1), {&busy, &idle});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(*selected, "busy");
}

TEST(SchedulerTest, ExactFitAccepted) {
  Scheduler scheduler;
  Node node("n", Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(4)});
  auto selected = scheduler.selectNode(makePod("p", 4, 4), {&node});
  EXPECT_TRUE(selected.ok());
}

TEST(NodeTest, AllocateReleaseAccounting) {
  Node node("n", Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)});
  const Resources r{MilliCpu::fromCores(2), ByteSize::fromGiB(4)};
  node.allocate("p1", r);
  EXPECT_EQ(node.allocated().cpu, MilliCpu::fromCores(2));
  EXPECT_DOUBLE_EQ(node.cpuUtilization(), 0.5);
  EXPECT_TRUE(node.canFit(r));
  node.allocate("p2", r);
  EXPECT_FALSE(node.canFit(Resources{MilliCpu::fromCores(1), ByteSize()}));
  node.release("p1", r);
  EXPECT_EQ(node.allocated().cpu, MilliCpu::fromCores(2));
  // Releasing an unknown pod is a no-op.
  node.release("ghost", r);
  EXPECT_EQ(node.allocated().cpu, MilliCpu::fromCores(2));
}

TEST(ResourcesTest, FitsWithin) {
  const Resources small{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  const Resources large{MilliCpu::fromCores(2), ByteSize::fromGiB(2)};
  EXPECT_TRUE(small.fitsWithin(large));
  EXPECT_FALSE(large.fitsWithin(small));
  // One dimension too big is enough to fail.
  const Resources cpuHeavy{MilliCpu::fromCores(4), ByteSize::fromGiB(1)};
  EXPECT_FALSE(cpuHeavy.fitsWithin(large));
}

TEST(ResourcesTest, SelectorMatching) {
  const Labels labels{{"app", "blast"}, {"tier", "batch"}};
  EXPECT_TRUE(selectorMatches({{"app", "blast"}}, labels));
  EXPECT_TRUE(selectorMatches({}, labels));
  EXPECT_FALSE(selectorMatches({{"app", "other"}}, labels));
  EXPECT_FALSE(selectorMatches({{"zone", "us"}}, labels));
}

}  // namespace
}  // namespace lidc::k8s
