#include "k8s/deployment.hpp"

#include <gtest/gtest.h>

namespace lidc::k8s {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : cluster_("test", sim_) {
    cluster_.addNode("node0",
                     Resources{MilliCpu::fromCores(16), ByteSize::fromGiB(32)});
  }

  PodSpec workerSpec() {
    PodSpec spec;
    spec.image = "worker";
    spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
    return spec;
  }

  sim::Simulator sim_;
  Cluster cluster_;
};

TEST_F(DeploymentTest, CreatesRequestedReplicas) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 3);
  EXPECT_EQ(deployment.replicas(), 3);
  EXPECT_EQ(cluster_.podsInNamespace("default").size(), 3u);
  EXPECT_EQ(deployment.readyReplicas(), 0);  // still starting
  sim_.run();
  EXPECT_EQ(deployment.readyReplicas(), 3);
}

TEST_F(DeploymentTest, ScaleUpAndDown) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 2);
  sim_.run();
  ASSERT_TRUE(deployment.scaleTo(5).ok());
  EXPECT_EQ(cluster_.podsInNamespace("default").size(), 5u);
  sim_.run();
  EXPECT_EQ(deployment.readyReplicas(), 5);

  ASSERT_TRUE(deployment.scaleTo(1).ok());
  EXPECT_EQ(cluster_.podsInNamespace("default").size(), 1u);
  EXPECT_EQ(deployment.readyReplicas(), 1);
}

TEST_F(DeploymentTest, ScaleToZeroAndNegativeClamped) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 2);
  ASSERT_TRUE(deployment.scaleTo(0).ok());
  EXPECT_EQ(cluster_.podsInNamespace("default").size(), 0u);
  ASSERT_TRUE(deployment.scaleTo(-3).ok());
  EXPECT_EQ(deployment.replicas(), 0);
}

TEST_F(DeploymentTest, PodsCarryDeploymentLabel) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 1);
  auto pods = cluster_.podsInNamespace("default");
  ASSERT_EQ(pods.size(), 1u);
  EXPECT_EQ(pods[0]->spec().labels.at("deployment"), "web");
}

TEST_F(DeploymentTest, AutoscalerScalesUpOnHighUtilization) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 2);
  HorizontalAutoscaler hpa(deployment, 1, 8, /*target=*/0.5);
  // Observed 1.0 vs target 0.5 => ratio 2 => 4 replicas.
  EXPECT_EQ(hpa.reconcile(1.0), 4);
  EXPECT_EQ(deployment.replicas(), 4);
}

TEST_F(DeploymentTest, AutoscalerScalesDownOnLowUtilization) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 6);
  HorizontalAutoscaler hpa(deployment, 2, 8, 0.5);
  // Observed 0.1 vs target 0.5 => ratio 0.2 => ceil(6*0.2)=2.
  EXPECT_EQ(hpa.reconcile(0.1), 2);
}

TEST_F(DeploymentTest, AutoscalerToleranceBandHolds) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 4);
  HorizontalAutoscaler hpa(deployment, 1, 8, 0.5);
  // Within +-20% of target: no change.
  EXPECT_EQ(hpa.reconcile(0.55), 4);
  EXPECT_EQ(hpa.reconcile(0.45), 4);
}

TEST_F(DeploymentTest, AutoscalerClampsToBounds) {
  Deployment deployment(cluster_, "default", "web", workerSpec(), 2);
  HorizontalAutoscaler hpa(deployment, 1, 3, 0.5);
  EXPECT_EQ(hpa.reconcile(5.0), 3);  // clamped to max
  Deployment d2(cluster_, "default", "web2", workerSpec(), 3);
  HorizontalAutoscaler hpa2(d2, 2, 8, 0.5);
  EXPECT_EQ(hpa2.reconcile(0.01), 2);  // clamped to min
}

}  // namespace
}  // namespace lidc::k8s
