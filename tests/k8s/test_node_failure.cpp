// Node failure semantics: eviction, job retry on surviving nodes, and
// recovery.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace lidc::k8s {
namespace {

class NodeFailureTest : public ::testing::Test {
 protected:
  NodeFailureTest() : cluster_("test", sim_) {
    cluster_.addNode("n0",
                     Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)});
    cluster_.registerApp("sleeper", [this](AppContext&) {
      ++runs_;
      AppResult result;
      result.runtime = sim::Duration::seconds(60);
      return result;
    });
  }

  JobSpec sleepJob() {
    JobSpec spec;
    spec.app = "sleeper";
    spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
    return spec;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  int runs_ = 0;
};

TEST_F(NodeFailureTest, RunningJobFailsWhenNodeDies) {
  auto job = cluster_.createJob("default", "j", sleepJob());
  ASSERT_TRUE(job.ok());
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  ASSERT_EQ((*job)->status().state, JobState::kRunning);

  cluster_.failNode("n0");
  EXPECT_EQ((*job)->status().state, JobState::kFailed);
  EXPECT_NE((*job)->status().message.find("node n0 failed"), std::string::npos);
  // Resources released despite the violent death.
  EXPECT_EQ(cluster_.totalAllocated().cpu, MilliCpu());
  // The stale completion event must not resurrect the job.
  sim_.run();
  EXPECT_EQ((*job)->status().state, JobState::kFailed);
  EXPECT_EQ(runs_, 1);
}

TEST_F(NodeFailureTest, JobRetriesOnSurvivingNode) {
  cluster_.addNode("n1", Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)});
  JobSpec spec = sleepJob();
  spec.backoffLimit = 1;
  auto job = cluster_.createJob("default", "j", spec);
  ASSERT_TRUE(job.ok());
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  ASSERT_EQ((*job)->status().state, JobState::kRunning);
  const std::string firstNode =
      cluster_.pod("default", (*job)->podName())->nodeName();

  cluster_.failNode(firstNode);
  // The retry pod starts on the surviving node and completes.
  sim_.run();
  EXPECT_EQ((*job)->status().state, JobState::kCompleted);
  EXPECT_EQ((*job)->status().attempts, 2);
  EXPECT_EQ(runs_, 2);
}

TEST_F(NodeFailureTest, PendingPodEvictedAndRequeued) {
  // A plain pod that has not started yet when the node dies.
  PodSpec podSpec;
  podSpec.image = "sleeper";
  podSpec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  auto pod = cluster_.createPod("default", "p", podSpec);
  ASSERT_TRUE(pod.ok());
  ASSERT_EQ((*pod)->nodeName(), "n0");

  cluster_.failNode("n0");
  EXPECT_EQ((*pod)->phase(), PodPhase::kPending);
  EXPECT_TRUE((*pod)->nodeName().empty());
  EXPECT_EQ(cluster_.pendingUnschedulable(), 1u);

  // Node recovery reschedules it.
  cluster_.setNodeReady("n0", true);
  EXPECT_EQ(cluster_.pendingUnschedulable(), 0u);
  EXPECT_EQ((*pod)->nodeName(), "n0");
}

TEST_F(NodeFailureTest, FailUnknownNodeIsNoop) {
  cluster_.failNode("ghost");  // must not crash
  EXPECT_EQ(cluster_.nodeCount(), 1u);
}

}  // namespace
}  // namespace lidc::k8s
