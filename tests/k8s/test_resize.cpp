// Vertical scaling (paper SIII-A): in-place pod resize with node
// accounting, failure when the node can't absorb growth, and queued-pod
// unblocking when a resize shrinks.
#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace lidc::k8s {
namespace {

class ResizeTest : public ::testing::Test {
 protected:
  ResizeTest() : cluster_("test", sim_) {
    cluster_.addNode("n0",
                     Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  }

  Pod* makePod(const std::string& name, std::uint64_t cores,
               std::uint64_t gib) {
    PodSpec spec;
    spec.image = "x";
    spec.requests = Resources{MilliCpu::fromCores(cores), ByteSize::fromGiB(gib)};
    auto pod = cluster_.createPod("default", name, spec);
    EXPECT_TRUE(pod.ok());
    return pod.ok() ? *pod : nullptr;
  }

  sim::Simulator sim_;
  Cluster cluster_;
};

TEST_F(ResizeTest, GrowWithinNodeCapacity) {
  Pod* pod = makePod("p", 2, 4);
  ASSERT_TRUE(cluster_
                  .resizePod("default", "p",
                             Resources{MilliCpu::fromCores(6), ByteSize::fromGiB(12)})
                  .ok());
  EXPECT_EQ(pod->spec().requests.cpu, MilliCpu::fromCores(6));
  EXPECT_EQ(cluster_.totalAllocated().cpu, MilliCpu::fromCores(6));
}

TEST_F(ResizeTest, GrowBeyondNodeFailsAndRestoresAccounting) {
  makePod("p", 2, 4);
  makePod("q", 4, 4);
  const auto status = cluster_.resizePod(
      "default", "p", Resources{MilliCpu::fromCores(6), ByteSize::fromGiB(4)});
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Accounting unchanged.
  EXPECT_EQ(cluster_.totalAllocated().cpu, MilliCpu::fromCores(6));
  EXPECT_EQ(cluster_.pod("default", "p")->spec().requests.cpu,
            MilliCpu::fromCores(2));
}

TEST_F(ResizeTest, ShrinkUnblocksQueuedPod) {
  makePod("hog", 8, 4);
  Pod* waiting = makePod("waiting", 4, 4);
  ASSERT_EQ(cluster_.pendingUnschedulable(), 1u);
  ASSERT_TRUE(cluster_
                  .resizePod("default", "hog",
                             Resources{MilliCpu::fromCores(2), ByteSize::fromGiB(4)})
                  .ok());
  EXPECT_EQ(cluster_.pendingUnschedulable(), 0u);
  EXPECT_EQ(waiting->nodeName(), "n0");
}

TEST_F(ResizeTest, PendingPodResizeJustRespecifies) {
  makePod("hog", 8, 4);
  Pod* waiting = makePod("waiting", 8, 8);  // cannot fit while hog runs
  ASSERT_TRUE(waiting->nodeName().empty());
  // Shrink the pending pod: it still can't fit (hog holds everything)...
  ASSERT_TRUE(cluster_
                  .resizePod("default", "waiting",
                             Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)})
                  .ok());
  // ...until the hog leaves.
  ASSERT_TRUE(cluster_.deletePod("default", "hog").ok());
  EXPECT_EQ(waiting->nodeName(), "n0");
  EXPECT_EQ(waiting->spec().requests.cpu, MilliCpu::fromCores(1));
}

TEST_F(ResizeTest, UnknownPodFails) {
  EXPECT_EQ(cluster_.resizePod("default", "ghost", Resources{}).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace lidc::k8s
