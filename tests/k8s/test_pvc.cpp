#include "k8s/pvc.hpp"

#include <gtest/gtest.h>

namespace lidc::k8s {
namespace {

TEST(PvcTest, WriteReadRoundTrip) {
  PersistentVolumeClaim pvc("p", ByteSize::fromMiB(1));
  ASSERT_TRUE(pvc.writeText("dir/file.txt", "hello").ok());
  auto bytes = pvc.read("dir/file.txt");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "hello");
  EXPECT_TRUE(pvc.exists("dir/file.txt"));
  EXPECT_EQ(pvc.sizeOf("dir/file.txt"), 5u);
}

TEST(PvcTest, MissingFile) {
  PersistentVolumeClaim pvc("p", ByteSize::fromMiB(1));
  EXPECT_FALSE(pvc.read("nope").has_value());
  EXPECT_FALSE(pvc.exists("nope"));
  EXPECT_FALSE(pvc.sizeOf("nope").has_value());
  EXPECT_EQ(pvc.remove("nope").code(), StatusCode::kNotFound);
}

TEST(PvcTest, CapacityEnforced) {
  PersistentVolumeClaim pvc("p", ByteSize(10));
  EXPECT_TRUE(pvc.writeText("a", "12345").ok());
  EXPECT_TRUE(pvc.writeText("b", "12345").ok());
  EXPECT_EQ(pvc.writeText("c", "x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pvc.used().bytes(), 10u);
}

TEST(PvcTest, OverwriteAccountsDelta) {
  PersistentVolumeClaim pvc("p", ByteSize(10));
  ASSERT_TRUE(pvc.writeText("a", "123456789").ok());  // 9 bytes
  // Replacing with a smaller file must succeed even near capacity.
  ASSERT_TRUE(pvc.writeText("a", "12").ok());
  EXPECT_EQ(pvc.used().bytes(), 2u);
  // And growing it within capacity works.
  ASSERT_TRUE(pvc.writeText("a", "1234567890").ok());
  EXPECT_EQ(pvc.used().bytes(), 10u);
}

TEST(PvcTest, RemoveFreesSpace) {
  PersistentVolumeClaim pvc("p", ByteSize(5));
  ASSERT_TRUE(pvc.writeText("a", "12345").ok());
  ASSERT_TRUE(pvc.remove("a").ok());
  EXPECT_EQ(pvc.used().bytes(), 0u);
  EXPECT_TRUE(pvc.writeText("b", "12345").ok());
}

TEST(PvcTest, ListByPrefix) {
  PersistentVolumeClaim pvc("p", ByteSize::fromMiB(1));
  ASSERT_TRUE(pvc.writeText("data/a", "1").ok());
  ASSERT_TRUE(pvc.writeText("data/b", "2").ok());
  ASSERT_TRUE(pvc.writeText("results/c", "3").ok());
  EXPECT_EQ(pvc.list("data/").size(), 2u);
  EXPECT_EQ(pvc.list("results/").size(), 1u);
  EXPECT_EQ(pvc.list("").size(), 3u);
  EXPECT_TRUE(pvc.list("nothing/").empty());
}

}  // namespace
}  // namespace lidc::k8s
