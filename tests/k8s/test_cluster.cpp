#include "k8s/cluster.hpp"

#include <gtest/gtest.h>

namespace lidc::k8s {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_("test", sim_) {
    cluster_.addNode("node0",
                     Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  }

  PodSpec smallPod() {
    PodSpec spec;
    spec.image = "noop";
    spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
    return spec;
  }

  /// Registers a trivial app that succeeds after `seconds`.
  void registerNoop(double seconds = 1.0) {
    cluster_.registerApp("noop", [seconds](AppContext&) {
      AppResult result;
      result.runtime = sim::Duration::seconds(seconds);
      result.message = "done";
      return result;
    });
  }

  sim::Simulator sim_;
  Cluster cluster_;
};

TEST_F(ClusterTest, PodSchedulesAndRuns) {
  auto pod = cluster_.createPod("default", "p1", smallPod());
  ASSERT_TRUE(pod.ok());
  EXPECT_EQ((*pod)->phase(), PodPhase::kPending);
  EXPECT_EQ((*pod)->nodeName(), "node0");
  EXPECT_FALSE((*pod)->podIp().empty());
  sim_.run();
  EXPECT_EQ((*pod)->phase(), PodPhase::kRunning);
}

TEST_F(ClusterTest, DuplicatePodRejected) {
  ASSERT_TRUE(cluster_.createPod("default", "p1", smallPod()).ok());
  auto dup = cluster_.createPod("default", "p1", smallPod());
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ClusterTest, OversizedPodStaysPendingThenSchedulesWhenFreed) {
  PodSpec big = smallPod();
  big.requests = Resources{MilliCpu::fromCores(6), ByteSize::fromGiB(6)};
  ASSERT_TRUE(cluster_.createPod("default", "big1", big).ok());
  ASSERT_TRUE(cluster_.createPod("default", "big2", big).ok());
  EXPECT_EQ(cluster_.pendingUnschedulable(), 1u);
  EXPECT_TRUE(cluster_.pod("default", "big2")->nodeName().empty());

  // Free capacity: delete the first pod; the second binds.
  ASSERT_TRUE(cluster_.deletePod("default", "big1").ok());
  EXPECT_EQ(cluster_.pendingUnschedulable(), 0u);
  EXPECT_EQ(cluster_.pod("default", "big2")->nodeName(), "node0");
}

TEST_F(ClusterTest, ResourceAccountingAcrossLifecycle) {
  registerNoop(2.0);
  JobSpec spec;
  spec.app = "noop";
  spec.requests = Resources{MilliCpu::fromCores(2), ByteSize::fromGiB(2)};
  ASSERT_TRUE(cluster_.createJob("default", "job1", spec).ok());
  EXPECT_EQ(cluster_.totalAllocated().cpu, MilliCpu::fromCores(2));
  sim_.run();
  // Job finished; resources released.
  EXPECT_EQ(cluster_.totalAllocated().cpu, MilliCpu());
  EXPECT_EQ(cluster_.totalFree().cpu, MilliCpu::fromCores(8));
}

TEST_F(ClusterTest, JobLifecycleToCompleted) {
  registerNoop(5.0);
  JobSpec spec;
  spec.app = "noop";
  spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  auto job = cluster_.createJob("default", "job1", spec);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->status().state, JobState::kPending);
  sim_.run();
  EXPECT_EQ((*job)->status().state, JobState::kCompleted);
  EXPECT_EQ((*job)->status().message, "done");
  // startup delay (0.8s) + runtime (5s)
  EXPECT_NEAR(sim_.now().toSeconds(), 5.8, 0.01);
  EXPECT_EQ(cluster_.runningJobCount(), 0u);
}

TEST_F(ClusterTest, JobWithUnknownAppRejected) {
  JobSpec spec;
  spec.app = "ghost";
  auto job = cluster_.createJob("default", "j", spec);
  EXPECT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, FailingJobRespectsBackoffLimit) {
  int attempts = 0;
  cluster_.registerApp("flaky", [&attempts](AppContext&) {
    AppResult result;
    result.runtime = sim::Duration::seconds(1);
    ++attempts;
    if (attempts < 3) result.status = Status::Internal("boom");
    return result;
  });
  JobSpec spec;
  spec.app = "flaky";
  spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  spec.backoffLimit = 2;
  auto job = cluster_.createJob("default", "retry-job", spec);
  ASSERT_TRUE(job.ok());
  sim_.run();
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ((*job)->status().state, JobState::kCompleted);
  EXPECT_EQ((*job)->status().attempts, 3);
}

TEST_F(ClusterTest, FailingJobExhaustsBackoffAndFails) {
  cluster_.registerApp("doomed", [](AppContext&) {
    AppResult result;
    result.runtime = sim::Duration::seconds(1);
    result.status = Status::Internal("always fails");
    return result;
  });
  JobSpec spec;
  spec.app = "doomed";
  spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  spec.backoffLimit = 1;
  auto job = cluster_.createJob("default", "doomed-job", spec);
  ASSERT_TRUE(job.ok());
  sim_.run();
  EXPECT_EQ((*job)->status().state, JobState::kFailed);
  EXPECT_NE((*job)->status().message.find("always fails"), std::string::npos);
}

TEST_F(ClusterTest, JobWatcherFires) {
  registerNoop();
  std::vector<std::string> finished;
  cluster_.onJobFinished([&](const Job& job) { finished.push_back(job.name()); });
  JobSpec spec;
  spec.app = "noop";
  spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  ASSERT_TRUE(cluster_.createJob("default", "watched", spec).ok());
  sim_.run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0], "watched");
}

TEST_F(ClusterTest, ServiceGetsDnsAndNodePort) {
  ServiceSpec spec;
  spec.type = ServiceType::kNodePort;
  spec.selector = {{"app", "nfd"}};
  auto svc = cluster_.createService("ndnk8s", "gateway-nfd", spec);
  ASSERT_TRUE(svc.ok());
  EXPECT_EQ((*svc)->dnsName(), "gateway-nfd.ndnk8s.svc.cluster.local");
  EXPECT_GE((*svc)->nodePort(), 30000);
  EXPECT_LE((*svc)->nodePort(), 32767);
  EXPECT_FALSE((*svc)->clusterIp().empty());

  EXPECT_EQ(cluster_.resolveDns("gateway-nfd.ndnk8s.svc.cluster.local"), *svc);
  EXPECT_EQ(cluster_.resolveDns("nope.ndnk8s.svc.cluster.local"), nullptr);
}

TEST_F(ClusterTest, ServiceEndpointsSelectRunningPods) {
  ServiceSpec svcSpec;
  svcSpec.selector = {{"app", "worker"}};
  auto svc = cluster_.createService("default", "worker-svc", svcSpec);
  ASSERT_TRUE(svc.ok());

  PodSpec podSpec = smallPod();
  podSpec.labels = {{"app", "worker"}};
  ASSERT_TRUE(cluster_.createPod("default", "w0", podSpec).ok());
  PodSpec otherSpec = smallPod();
  otherSpec.labels = {{"app", "other"}};
  ASSERT_TRUE(cluster_.createPod("default", "o0", otherSpec).ok());

  // Before startup, no Running pods -> no endpoints.
  EXPECT_TRUE(cluster_.serviceEndpoints(**svc).empty());
  sim_.run();
  auto endpoints = cluster_.serviceEndpoints(**svc);
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0]->name(), "w0");
}

TEST_F(ClusterTest, DeleteServiceRemovesDns) {
  ServiceSpec spec;
  auto svc = cluster_.createService("default", "s", spec);
  ASSERT_TRUE(svc.ok());
  ASSERT_TRUE(cluster_.deleteService("default", "s").ok());
  EXPECT_EQ(cluster_.resolveDns("s.default.svc.cluster.local"), nullptr);
  EXPECT_FALSE(cluster_.deleteService("default", "s").ok());
}

TEST_F(ClusterTest, PvcCreateAndLookup) {
  auto pvc = cluster_.createPvc("data", ByteSize::fromGiB(1));
  ASSERT_TRUE(pvc.ok());
  EXPECT_EQ(cluster_.pvc("data"), *pvc);
  EXPECT_EQ(cluster_.pvc("none"), nullptr);
  EXPECT_FALSE(cluster_.createPvc("data", ByteSize::fromGiB(1)).ok());
}

TEST_F(ClusterTest, NodeNotReadyBlocksScheduling) {
  cluster_.setNodeReady("node0", false);
  auto pod = cluster_.createPod("default", "p", smallPod());
  ASSERT_TRUE(pod.ok());
  EXPECT_EQ(cluster_.pendingUnschedulable(), 1u);
  cluster_.setNodeReady("node0", true);
  EXPECT_EQ(cluster_.pendingUnschedulable(), 0u);
}

TEST_F(ClusterTest, EventsRecorded) {
  registerNoop();
  JobSpec spec;
  spec.app = "noop";
  spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
  ASSERT_TRUE(cluster_.createJob("default", "j", spec).ok());
  sim_.run();
  bool sawScheduled = false;
  bool sawCompleted = false;
  for (const auto& event : cluster_.events()) {
    if (event.kind == "PodScheduled") sawScheduled = true;
    if (event.kind == "JobCompleted") sawCompleted = true;
  }
  EXPECT_TRUE(sawScheduled);
  EXPECT_TRUE(sawCompleted);
}

}  // namespace
}  // namespace lidc::k8s
