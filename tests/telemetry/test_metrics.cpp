// MetricsRegistry unit tests: instrument semantics (counter, gauge,
// log2 histogram quantiles), labeled families, collector callbacks,
// exporter round-trips, and hot-path thread safety (the concurrent
// tests are what the ThreadSanitizer CI job exercises).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace lidc::telemetry {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("lidc_test_events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(&registry.counter("lidc_test_events"), &c);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("lidc_test", {{"x", "1"}, {"y", "2"}});
  Counter& b = registry.counter("lidc_test", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("lidc_test", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("lidc_test_depth");
  g.set(10.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  // Bucket 0 = [0,1), bucket i = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucketFor(0.0), 0);
  EXPECT_EQ(Histogram::bucketFor(0.99), 0);
  EXPECT_EQ(Histogram::bucketFor(1.0), 1);
  EXPECT_EQ(Histogram::bucketFor(2.0), 2);
  EXPECT_EQ(Histogram::bucketFor(1023.0), 10);
  EXPECT_EQ(Histogram::bucketFor(1024.0), 11);
  EXPECT_EQ(Histogram::bucketFor(-5.0), 0);  // clamped

  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 90 fast observations, 10 slow ones.
  for (int i = 0; i < 90; ++i) h.observe(10.0);
  for (int i = 0; i < 10; ++i) h.observe(5000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 90 * 10.0 + 10 * 5000.0);
  // p50 lands in 10.0's bucket [8,16), p99 in 5000.0's [4096,8192).
  EXPECT_GE(h.quantile(0.5), 8.0);
  EXPECT_LT(h.quantile(0.5), 16.0);
  EXPECT_GE(h.quantile(0.99), 4096.0);
  EXPECT_LT(h.quantile(0.99), 8192.0);
  // Quantiles are monotone.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(MetricsTest, KindMismatchAsserts) {
  MetricsRegistry registry;
  registry.counter("lidc_test_thing");
#ifndef NDEBUG
  EXPECT_DEATH(registry.gauge("lidc_test_thing"), "");
#endif
}

TEST(MetricsTest, SnapshotFiltersByPrefixAndOrders) {
  MetricsRegistry registry;
  registry.counter("lidc_b").inc(2);
  registry.counter("lidc_a", {{"node", "n1"}}).inc(1);
  registry.gauge("other_metric").set(9);

  const auto all = registry.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "lidc_a");
  EXPECT_EQ(all[1].name, "lidc_b");
  EXPECT_EQ(all[2].name, "other_metric");

  const auto lidc = registry.snapshot("lidc_");
  ASSERT_EQ(lidc.size(), 2u);
  EXPECT_EQ(lidc[0].name, "lidc_a");
  ASSERT_EQ(lidc[0].labels.size(), 1u);
  EXPECT_EQ(lidc[0].labels[0].second, "n1");
  EXPECT_DOUBLE_EQ(lidc[1].value, 2.0);
}

TEST(MetricsTest, CollectorRunsBeforeSnapshotAndMayCreateInstruments) {
  MetricsRegistry registry;
  std::uint64_t legacy = 7;
  registry.registerCollector([&registry, &legacy] {
    // Creating the instrument inside the collector must not deadlock.
    registry.counter("lidc_legacy_total").set(legacy);
  });
  auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].value, 7.0);
  legacy = 11;
  snaps = registry.snapshot();
  EXPECT_DOUBLE_EQ(snaps[0].value, 11.0);
}

TEST(MetricsTest, PrometheusRoundTrip) {
  MetricsRegistry registry;
  registry.counter("lidc_events", {{"node", "gw"}}).inc(5);
  registry.gauge("lidc_depth").set(3.5);
  Histogram& h = registry.histogram("lidc_latency_us");
  h.observe(100.0);
  h.observe(200.0);

  const std::string text = registry.toPrometheus();
  EXPECT_NE(text.find("# TYPE lidc_events counter"), std::string::npos);
  EXPECT_NE(text.find("lidc_events{node=\"gw\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lidc_latency_us summary"), std::string::npos);

  const auto values = parsePrometheusText(text);
  EXPECT_DOUBLE_EQ(values.at("lidc_events{node=\"gw\"}"), 5.0);
  EXPECT_DOUBLE_EQ(values.at("lidc_depth"), 3.5);
  EXPECT_DOUBLE_EQ(values.at("lidc_latency_us_count"), 2.0);
  EXPECT_DOUBLE_EQ(values.at("lidc_latency_us_sum"), 300.0);

  // flatten() is exactly the scraped-collector view of toPrometheus().
  EXPECT_EQ(registry.flatten(), values);
}

TEST(MetricsTest, JsonExportContainsHistogramSummary) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lidc_latency_us", {{"client", "c1"}});
  for (int i = 0; i < 10; ++i) h.observe(64.0);
  const std::string json = registry.toJson();
  EXPECT_NE(json.find("\"name\":\"lidc_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"client\":\"c1\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsTest, HistogramExemplarTracksHighestBucketTracedSample) {
  Histogram h;
  h.observe(500.0);  // untraced samples never become exemplars
  EXPECT_EQ(h.exemplarTrace(), 0u);

  h.observe(100.0, 0xabcd);
  EXPECT_EQ(h.exemplarTrace(), 0xabcdu);
  EXPECT_DOUBLE_EQ(h.exemplarValue(), 100.0);

  // A traced sample in a lower bucket does not displace the exemplar...
  h.observe(10.0, 0x1111);
  EXPECT_EQ(h.exemplarTrace(), 0xabcdu);
  // ...but one in the same-or-higher bucket does: the exemplar follows
  // the tail (the max-bucket sample is by definition >= p99).
  h.observe(4000.0, 0x2222);
  EXPECT_EQ(h.exemplarTrace(), 0x2222u);
  EXPECT_DOUBLE_EQ(h.exemplarValue(), 4000.0);
}

TEST(MetricsTest, JsonExportCarriesExemplarOnlyWhenCaptured) {
  MetricsRegistry registry;
  registry.histogram("lidc_plain_us").observe(64.0);
  EXPECT_EQ(registry.toJson().find("exemplar_trace"), std::string::npos);

  registry.histogram("lidc_traced_us").observe(64.0, 0x00ff12ab34cd56efULL);
  const std::string json = registry.toJson();
  EXPECT_NE(json.find("\"exemplar_trace\":\"00ff12ab34cd56ef\""),
            std::string::npos);
  EXPECT_NE(json.find("\"exemplar_value\":64"), std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& c = registry.counter("lidc_concurrent");
  Histogram& h = registry.histogram("lidc_concurrent_lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 1024));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, ConcurrentRegistrationAndSnapshot) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 500; ++i) {
        registry
            .counter("lidc_family_" + std::to_string(i % 16),
                     {{"thread", std::to_string(t)}})
            .inc();
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) (void)registry.snapshot();
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.size(), 16u * kThreads);
}

}  // namespace
}  // namespace lidc::telemetry
