// Flow-accounting unit tests: flow-key extraction (including a seeded
// fuzz over hostile name bytes), Count-Min error bounds, Space-Saving
// top-k determinism, the wait-free per-link counters and their
// trailing-window utilization, and the FlowAccountant's attribution /
// staged-transfer ledgers plus its Prometheus export.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/flow.hpp"

namespace lidc::telemetry {
namespace {

std::vector<std::string_view> views(const std::vector<std::string>& parts) {
  return std::vector<std::string_view>(parts.begin(), parts.end());
}

TEST(FlowKeyTest, ToStringRoundTrips) {
  FlowKey key;
  key.group = "data";
  key.tenant = "acme";
  key.tag = "wf/align-7";
  EXPECT_EQ(key.toString(), "data|acme|wf/align-7");
  EXPECT_EQ(FlowKey::fromString(key.toString()), key);

  // Missing fields come back as "-".
  EXPECT_EQ(FlowKey::fromString("data"), (FlowKey{"data", "-", "-"}));
  EXPECT_EQ(FlowKey::fromString("data|acme"), (FlowKey{"data", "acme", "-"}));
}

TEST(FlowKeyTest, SanitizeKeepsSafeCharsAndCapsLength) {
  EXPECT_EQ(sanitizeFlowComponent(""), "-");
  EXPECT_EQ(sanitizeFlowComponent("wf/align-7.v2"), "wf/align-7.v2");
  EXPECT_EQ(sanitizeFlowComponent("a|b\"c\nd"), "a_b_c_d");
  const std::string longName(kMaxFlowComponent * 3, 'x');
  EXPECT_EQ(sanitizeFlowComponent(longName).size(), kMaxFlowComponent);
}

TEST(FlowKeyTest, ExtractsGroupTenantAndTag) {
  // Label wins for tenant; tag only ever comes from the label.
  FlowLabel label{"acme", "wf/genome"};
  FlowKey key = extractFlowKey(
      views({"ndn", "k8s", "data", "sra", "SRR123"}), label);
  EXPECT_EQ(key, (FlowKey{"data", "acme", "wf/genome"}));

  // Unlabeled submit names fall back to the in-name tenant component.
  key = extractFlowKey(views({"ndn", "k8s", "submit", "noisy", "app=BLAST"}),
                       {});
  EXPECT_EQ(key, (FlowKey{"submit", "noisy", "-"}));

  // Publish names carry "tenant=<t>" as a regular component.
  key = extractFlowKey(views({"ndn", "k8s", "publish", "tenant=acme", "out"}),
                       {});
  EXPECT_EQ(key, (FlowKey{"publish", "acme", "-"}));

  // Anything outside /ndn/k8s lands in "other".
  key = extractFlowKey(views({"totally", "unrelated"}), {});
  EXPECT_EQ(key, (FlowKey{"other", "-", "-"}));
  key = extractFlowKey({}, {});
  EXPECT_EQ(key, (FlowKey{"other", "-", "-"}));
}

/// Seeded fuzz: hostile byte soup in, sane deterministic keys out. The
/// extraction is a total function — no throw, safe charset, bounded
/// length — and identical per seed (two passes, byte-identical keys).
TEST(FlowKeyTest, FuzzedHostileNamesYieldSaneDeterministicKeys) {
  auto runPass = [](std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::string> keys;
    for (int iter = 0; iter < 2000; ++iter) {
      const std::size_t count = rng() % 8;
      std::vector<std::string> parts;
      for (std::size_t i = 0; i < count; ++i) {
        std::string part;
        const std::size_t len = rng() % 160;
        for (std::size_t j = 0; j < len; ++j) {
          part.push_back(static_cast<char>(rng() % 256));
        }
        parts.push_back(std::move(part));
      }
      // Sometimes steer into the /ndn/k8s fast path so both branches
      // see hostile bytes.
      if (count >= 3 && rng() % 2 == 0) {
        parts[0] = "ndn";
        parts[1] = "k8s";
      }
      FlowLabel label;
      if (rng() % 3 == 0) label.tenant = "bad|tenant\x01";
      if (rng() % 3 == 0) label.tag = std::string(300, '\xff');
      keys.push_back(extractFlowKey(views(parts), label).toString());
    }
    return keys;
  };

  const auto first = runPass(0xfeedULL);
  const auto second = runPass(0xfeedULL);
  EXPECT_EQ(first, second);  // deterministic per seed

  for (const std::string& serialized : first) {
    const FlowKey key = FlowKey::fromString(serialized);
    for (const std::string* field : {&key.group, &key.tenant, &key.tag}) {
      EXPECT_LE(field->size(), kMaxFlowComponent);
      EXPECT_FALSE(field->empty());
      for (const char c : *field) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                          c == '=' || c == '&' || c == ':' || c == '/' ||
                          c == '-';
        ASSERT_TRUE(safe) << "unsafe byte " << static_cast<int>(c) << " in "
                          << serialized;
      }
    }
    // Round-trip safety: sanitized fields contain no separator, so the
    // serialized key always parses back to the same three fields.
    EXPECT_EQ(key.toString(), serialized);
  }
}

TEST(CountMinSketchTest, NeverUnderestimatesAndBoundsExcess) {
  CountMinSketch cms(256, 4);
  std::mt19937_64 rng(7);
  std::map<std::string, std::uint64_t> exact;
  for (int i = 0; i < 5000; ++i) {
    // Zipf-ish: low ids vastly more frequent.
    const std::uint64_t id = rng() % (1 + rng() % 400);
    const std::string key = "key-" + std::to_string(id);
    cms.add(key, 1);
    ++exact[key];
  }
  const double bound =
      2.0 * static_cast<double>(cms.total()) / static_cast<double>(cms.width());
  std::size_t overBound = 0;
  for (const auto& [key, count] : exact) {
    const std::uint64_t estimate = cms.estimate(key);
    ASSERT_GE(estimate, count) << key;  // one-sided error, always
    if (static_cast<double>(estimate - count) > bound) ++overBound;
  }
  // error <= 2N/w holds per-key w.p. 1 - 2^-depth; allow a thin tail.
  EXPECT_LE(overBound, exact.size() / 16);
}

TEST(SpaceSavingTest, FindsHeavyHittersWithBoundedError) {
  SpaceSaving topk(4);
  // Two heavy hitters among a stream of distinct light keys.
  for (int i = 0; i < 300; ++i) {
    topk.add("heavy-a", 10);
    topk.add("heavy-b", 6);
    topk.add("light-" + std::to_string(i), 1);
  }
  const auto top = topk.top();
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].key, "heavy-a");
  EXPECT_EQ(top[1].key, "heavy-b");
  // Space-Saving guarantee: true count lies in [count - error, count].
  EXPECT_GE(top[0].count, 3000u);
  EXPECT_LE(top[0].count - top[0].error, 3000u);
  EXPECT_LE(top.size(), topk.capacity());
}

TEST(SpaceSavingTest, CmsGateKeepsOneOffKeysFromChurningHitters) {
  SpaceSaving topk(2);
  topk.add("heavy-a", 50);
  topk.add("heavy-b", 40);
  // A flood of distinct one-off keys: each has CMS estimate ~1, far
  // below the current minimum (40), so none may evict a heavy hitter.
  for (int i = 0; i < 1000; ++i) topk.add("noise-" + std::to_string(i), 1);
  const auto top = topk.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "heavy-a");
  EXPECT_EQ(top[1].key, "heavy-b");
  EXPECT_EQ(top[0].error, 0u);  // never evicted, exact count
}

TEST(SpaceSavingTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    SpaceSaving topk(3);
    std::mt19937_64 rng(42);
    for (int i = 0; i < 2000; ++i) {
      topk.add("k" + std::to_string(rng() % 50), 1 + rng() % 8);
    }
    std::string out;
    for (const auto& entry : topk.top()) {
      out += entry.key + "=" + std::to_string(entry.count) + "+-" +
             std::to_string(entry.error) + ";";
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(LinkFlowStatsTest, CountsPacketsAndSplitsBytes) {
  sim::Simulator sim;
  LinkFlowStats stats(sim, sim::Duration::seconds(1).toNanos());
  stats.onInterest(40);
  stats.onInterest(40);
  stats.onData(1500);
  stats.onNack();
  stats.onCsBytes(1000);
  stats.onUpstreamBytes(500);

  EXPECT_EQ(stats.interests(), 2u);
  EXPECT_EQ(stats.dataPackets(), 1u);
  EXPECT_EQ(stats.nacks(), 1u);
  EXPECT_EQ(stats.bytes(), 1580u);
  EXPECT_EQ(stats.csBytes(), 1000u);
  EXPECT_EQ(stats.upstreamBytes(), 500u);
}

TEST(LinkFlowStatsTest, TrailingWindowExcludesCurrentAndStaleBuckets) {
  sim::Simulator sim;
  LinkFlowStats stats(sim, sim::Duration::seconds(1).toNanos());

  // t=0.5s: lands in the (incomplete) current bucket — invisible.
  sim.scheduleAt(sim::Time() + sim::Duration::millis(500),
                 [&stats] { stats.onData(1000); });
  sim.run();
  EXPECT_EQ(stats.trailingWindowBytes(), 0u);
  EXPECT_EQ(stats.trailingWindowNs(), 0u);

  // t=1.5s: the t=0..1s bucket is now complete and visible.
  sim.scheduleAt(sim::Time() + sim::Duration::millis(1500), [] {});
  sim.run();
  EXPECT_EQ(stats.trailingWindowBytes(), 1000u);
  EXPECT_EQ(stats.trailingWindowNs(),
            static_cast<std::uint64_t>(sim::Duration::seconds(1).toNanos()));

  // Far in the future the bucket has aged out of the ring's window.
  sim.scheduleAt(sim::Time() + sim::Duration::seconds(100), [] {});
  sim.run();
  EXPECT_EQ(stats.trailingWindowBytes(), 0u);
  EXPECT_EQ(stats.trailingWindowNs(),
            (LinkFlowStats::kBuckets - 1) * sim::Duration::seconds(1).toNanos());
}

TEST(FlowAccountantTest, AttributesBytesToTalkersTenantsAndCacheSplit) {
  sim::Simulator sim;
  FlowAccountant accountant(sim);
  accountant.registerLink("link://a->b");

  const FlowKey noisy{"data", "noisy", "-"};
  const FlowKey acme{"data", "acme", "wf/genome"};
  accountant.attribute("link://a->b", noisy, 9000, /*fromCache=*/false);
  accountant.attribute("link://a->b", acme, 1000, /*fromCache=*/true);
  accountant.attribute("link://ghost", acme, 5, false);  // unregistered: no-op

  EXPECT_EQ(accountant.link("link://a->b")->upstreamBytes(), 9000u);
  EXPECT_EQ(accountant.link("link://a->b")->csBytes(), 1000u);
  EXPECT_DOUBLE_EQ(accountant.dominantShare("link://a->b"), 0.9);
  EXPECT_EQ(accountant.dominantTenant("link://a->b"), "noisy");

  const auto talkers = accountant.topTalkers("link://a->b");
  ASSERT_EQ(talkers.size(), 2u);
  EXPECT_EQ(talkers[0].key, noisy.toString());
  EXPECT_EQ(talkers[0].count, 9000u);
  EXPECT_EQ(talkers[1].key, acme.toString());
  EXPECT_TRUE(accountant.topTalkers("link://ghost").empty());
}

TEST(FlowAccountantTest, UtilizationUsesTrailingWindowOverCapacity) {
  sim::Simulator sim;
  FlowAccountant accountant(sim);
  accountant.setLinkCapacity("link://a->b", 8000.0);  // 1000 bytes/s

  // 500 bytes in the first one-second bucket = 50% once it completes.
  sim.scheduleAt(sim::Time() + sim::Duration::millis(100), [&accountant] {
    accountant.link("link://a->b")->onData(500);
  });
  sim.scheduleAt(sim::Time() + sim::Duration::millis(1500), [] {});
  sim.run();
  EXPECT_NEAR(accountant.utilization("link://a->b"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(accountant.utilization("link://unknown"), 0.0);
}

TEST(FlowAccountantTest, StagedLedgerTracksTransfersPerKey) {
  sim::Simulator sim;
  FlowAccountant accountant(sim);
  const std::uint64_t before = accountant.revision();
  accountant.recordTransfer({"staging", "acme", "plan-1"}, 4096);
  accountant.recordTransfer({"staging", "acme", "plan-1"}, 1024);
  accountant.recordTransfer({"submit", "noisy", "-"}, 64);

  EXPECT_EQ(accountant.stagedBytes(), 5184u);
  EXPECT_EQ(accountant.stagedBytes("acme"), 5120u);
  EXPECT_EQ(accountant.stagedBytes("noisy"), 64u);
  const auto ledger = accountant.stagedLedger();
  EXPECT_EQ(ledger.at(FlowKey{"staging", "acme", "plan-1"}), 5120u);
  EXPECT_GT(accountant.revision(), before);
}

TEST(FlowAccountantTest, PrometheusExportCarriesAllFamilies) {
  sim::Simulator sim;
  FlowAccountant accountant(sim);
  accountant.setLinkCapacity("link://a->b", 1e9);
  accountant.link("link://a->b")->onInterest(40);
  accountant.link("link://a->b")->onData(1500);
  accountant.attribute("link://a->b", {"data", "noisy", "-"}, 1500, false);
  accountant.recordTransfer({"staging", "acme", "plan-1"}, 2048);

  const std::string text = accountant.toPrometheus();
  EXPECT_NE(text.find("lidc_link_interests_total{link=\"link://a->b\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lidc_link_data_total{link=\"link://a->b\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lidc_link_bytes_total{link=\"link://a->b\"} 1540"),
            std::string::npos);
  EXPECT_NE(text.find("lidc_link_upstream_bytes_total{link=\"link://a->b\"} 1500"),
            std::string::npos);
  EXPECT_NE(text.find("lidc_link_capacity_bits_per_sec{link=\"link://a->b\"} 1e+09"),
            std::string::npos);
  EXPECT_NE(
      text.find("lidc_flow_tenant_bytes_total{link=\"link://a->b\",tenant=\"noisy\"} 1500"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "lidc_flow_topk_bytes{group=\"data\",link=\"link://a->b\",rank=\"1\",tag=\"-\",tenant=\"noisy\"} 1500"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "lidc_flow_staged_bytes_total{group=\"staging\",tag=\"plan-1\",tenant=\"acme\"} 2048"),
      std::string::npos);

  // The export itself is deterministic.
  EXPECT_EQ(text, accountant.toPrometheus());
}

TEST(FlowAccountantTest, MirrorsLinkFamiliesIntoRegistry) {
  sim::Simulator sim;
  FlowAccountant accountant(sim);
  accountant.setLinkCapacity("link://a->b", 1e6);
  accountant.link("link://a->b")->onData(2000);

  MetricsRegistry registry;
  accountant.attachTelemetry(registry);
  const auto flat = registry.flatten();
  EXPECT_EQ(flat.at("lidc_link_data_total{link=\"link://a->b\"}"), 1.0);
  EXPECT_EQ(flat.at("lidc_link_bytes_total{link=\"link://a->b\"}"), 2000.0);
  EXPECT_EQ(flat.at("lidc_link_capacity_bits_per_sec{link=\"link://a->b\"}"),
            1e6);
}

}  // namespace
}  // namespace lidc::telemetry
