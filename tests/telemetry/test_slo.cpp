// SLO tracker: multi-window burn-rate semantics on the sim clock —
// healthy traffic never breaches, sustained error burn does, a short
// blip is rejected by the long window, and upper-bound SLOs follow the
// fraction of samples within bound.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "telemetry/slo.hpp"

namespace lidc::telemetry {
namespace {

sim::Time at(double seconds) {
  return sim::Time::fromNanos(
      static_cast<std::uint64_t>(seconds * 1'000'000'000.0));
}

std::map<std::string, double> ratioSample(double good, double total) {
  return {{"good", good}, {"total", total}};
}

SloSpec ratioSpec(double target, std::vector<SloWindow> windows) {
  SloSpec spec;
  spec.name = "submit-success";
  spec.kind = SloKind::kSuccessRatio;
  spec.target = target;
  spec.goodSeries = "good";
  spec.totalSeries = "total";
  spec.windows = std::move(windows);
  return spec;
}

TEST(SloTrackerTest, HealthyTrafficNeverBreaches) {
  SloTracker tracker(ratioSpec(0.9, {{sim::Duration::seconds(5), 1.0}}));
  SloStatus status;
  for (int i = 0; i <= 10; ++i) {
    const double n = 10.0 * i;
    status = tracker.evaluate(at(i), ratioSample(n, n));
    EXPECT_FALSE(status.breached) << "at t=" << i;
  }
  EXPECT_DOUBLE_EQ(status.currentValue, 1.0);
}

TEST(SloTrackerTest, SustainedErrorsBurnThroughTheBudget) {
  // Target 0.9 => 10% budget. All-failing traffic burns at 10x.
  SloTracker tracker(ratioSpec(0.9, {{sim::Duration::seconds(5), 1.0}}));
  for (int i = 0; i <= 5; ++i) {
    const double n = 10.0 * i;
    tracker.evaluate(at(i), ratioSample(n, n));
  }
  SloStatus status;
  for (int i = 6; i <= 12; ++i) {
    // good stops moving, total keeps counting: every new request fails.
    status = tracker.evaluate(at(i), ratioSample(50.0, 10.0 * i));
  }
  EXPECT_TRUE(status.breached);
  ASSERT_EQ(status.windows.size(), 1u);
  EXPECT_TRUE(status.windows[0].burning);
  EXPECT_GT(status.gatingBurnRate, 1.0);
  EXPECT_LT(status.currentValue, 0.9);
}

TEST(SloTrackerTest, LongWindowRejectsShortBlips) {
  SloTracker tracker(ratioSpec(0.9, {{sim::Duration::seconds(2), 1.0},
                                     {sim::Duration::seconds(20), 1.0}}));
  double good = 0.0;
  bool everBreached = false;
  for (int i = 0; i <= 40; ++i) {
    // One bad second at t=30, after the long window is full of healthy
    // traffic; everything else succeeds.
    if (i != 30) good += 10.0;
    const auto status = tracker.evaluate(at(i), ratioSample(good, 10.0 * i));
    everBreached = everBreached || status.breached;
  }
  EXPECT_FALSE(everBreached);
}

TEST(SloTrackerTest, AllWindowsBurningBreaches) {
  SloTracker tracker(ratioSpec(0.9, {{sim::Duration::seconds(2), 1.0},
                                     {sim::Duration::seconds(20), 1.0}}));
  SloStatus status;
  for (int i = 0; i <= 30; ++i) {
    // Failing from the start: both windows see 100% errors.
    status = tracker.evaluate(at(i), ratioSample(0.0, 10.0 * i));
  }
  EXPECT_TRUE(status.breached);
  ASSERT_EQ(status.windows.size(), 2u);
  EXPECT_TRUE(status.windows[0].burning);
  EXPECT_TRUE(status.windows[1].burning);
}

TEST(SloTrackerTest, UpperBoundBreachesAndRecovers) {
  SloSpec spec;
  spec.name = "latency";
  spec.kind = SloKind::kUpperBound;
  spec.target = 0.8;  // 80% of samples must be within bound
  spec.valueSeries = "p99";
  spec.bound = 100.0;
  spec.windows = {{sim::Duration::seconds(4), 1.0}};
  SloTracker tracker(spec);

  SloStatus status;
  for (int i = 0; i < 6; ++i) {
    status = tracker.evaluate(at(i), {{"p99", 50.0}});
    EXPECT_FALSE(status.breached);
  }
  for (int i = 6; i < 12; ++i) {
    status = tracker.evaluate(at(i), {{"p99", 250.0}});
  }
  EXPECT_TRUE(status.breached);
  EXPECT_DOUBLE_EQ(status.currentValue, 250.0);

  for (int i = 12; i < 20; ++i) {
    status = tracker.evaluate(at(i), {{"p99", 50.0}});
  }
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, MissingSeriesDoesNotBreach) {
  SloTracker tracker(ratioSpec(0.9, {{sim::Duration::seconds(5), 1.0}}));
  const auto status = tracker.evaluate(at(1), {});
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, PrimarySeriesFollowsKind) {
  const SloSpec ratio = ratioSpec(0.9, {});
  EXPECT_EQ(ratio.primarySeries(), "total");
  SloSpec upper;
  upper.kind = SloKind::kUpperBound;
  upper.valueSeries = "p99";
  EXPECT_EQ(upper.primarySeries(), "p99");
}

TEST(SloTrackerTest, DeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    SloTracker tracker(ratioSpec(0.95, {{sim::Duration::seconds(3), 1.0},
                                        {sim::Duration::seconds(9), 2.0}}));
    std::string trace;
    double good = 0.0;
    for (int i = 0; i <= 15; ++i) {
      good += (i % 4 == 0) ? 2.0 : 10.0;
      const auto s = tracker.evaluate(at(i), ratioSample(good, 10.0 * i));
      trace += s.breached ? '1' : '0';
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lidc::telemetry
