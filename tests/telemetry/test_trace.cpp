// Tracer unit tests: span lifecycle on the sim clock, invalid-context
// no-ops, job binding, explain() tree rendering, and the Chrome trace
// export.
#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"
#include "telemetry/trace.hpp"

namespace lidc::telemetry {
namespace {

TEST(TraceTest, SpanLifecycleStampsSimClock) {
  sim::Simulator sim;
  Tracer tracer(sim);

  TraceContext root;
  TraceContext child;
  sim.scheduleAt(sim::Time::fromNanos(1000), [&] {
    root = tracer.startTrace("job", "client:u1");
  });
  sim.scheduleAt(sim::Time::fromNanos(2000), [&] {
    child = tracer.startSpan("submit-attempt", "client:u1", root,
                             {{"attempt", "0"}});
  });
  sim.scheduleAt(sim::Time::fromNanos(5000),
                 [&] { tracer.endSpan(child); });
  sim.scheduleAt(sim::Time::fromNanos(9000), [&] { tracer.endSpan(root); });
  sim.run();

  ASSERT_TRUE(root);
  ASSERT_TRUE(child);
  EXPECT_EQ(root.trace, child.trace);
  EXPECT_NE(root.span, child.span);

  const auto spans = tracer.spansForTrace(root.trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "job");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].start.toNanos(), 1000);
  EXPECT_EQ(spans[0].end.toNanos(), 9000);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].parent, root.span);
  EXPECT_EQ(spans[1].duration().toNanos(), 3000);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "attempt");
}

TEST(TraceTest, InvalidParentMakesEverythingNoop) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const TraceContext invalid;
  EXPECT_FALSE(invalid);
  EXPECT_FALSE(tracer.startSpan("x", "c", invalid));
  EXPECT_FALSE(tracer.instant("x", "c", invalid));
  EXPECT_FALSE(tracer.recordSpan("x", "c", invalid, sim::Time::fromNanos(0),
                                 sim::Time::fromNanos(1)));
  tracer.endSpan(invalid);                  // must not crash
  tracer.setAttr(invalid, "k", "v");        // must not crash
  EXPECT_EQ(tracer.spanCount(), 0u);
}

TEST(TraceTest, InstantAndRecordSpan) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.startTrace("job", "client:u1");
  const TraceContext hop =
      tracer.instant("forwarder-hop", "forwarder:r1", root, {{"decision", "forward"}});
  ASSERT_TRUE(hop);
  const TraceContext exec =
      tracer.recordSpan("k8s-exec", "k8s:east", root, sim::Time::fromNanos(100),
                        sim::Time::fromNanos(400));
  ASSERT_TRUE(exec);

  const auto spans = tracer.spansForTrace(root.trace);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].duration().toNanos(), 0);
  EXPECT_FALSE(spans[1].open);
  EXPECT_EQ(spans[2].start.toNanos(), 100);
  EXPECT_EQ(spans[2].end.toNanos(), 300 + 100);
}

TEST(TraceTest, ExplainRendersTreeForBoundJob) {
  sim::Simulator sim;
  Tracer tracer(sim);

  EXPECT_NE(tracer.explain("nope").find("no trace bound"), std::string::npos);

  TraceContext root, attempt;
  sim.scheduleAt(sim::Time::fromNanos(0), [&] {
    root = tracer.startTrace("job", "client:u1");
    attempt = tracer.startSpan("submit-attempt", "client:u1", root);
  });
  sim.scheduleAt(sim::Time::fromNanos(500), [&] {
    tracer.instant("gateway-admission", "gateway:east", attempt,
                   {{"decision", "launch"}});
    tracer.endSpan(attempt);
  });
  sim.scheduleAt(sim::Time::fromNanos(800), [&] { tracer.endSpan(root); });
  sim.run();
  tracer.bindJob("job-1", root.trace);

  ASSERT_TRUE(tracer.traceForJob("job-1").has_value());
  EXPECT_EQ(*tracer.traceForJob("job-1"), root.trace);

  const std::string tree = tracer.explain("job-1");
  EXPECT_NE(tree.find("job job-1"), std::string::npos);
  EXPECT_NE(tree.find("job"), std::string::npos);
  EXPECT_NE(tree.find("submit-attempt"), std::string::npos);
  EXPECT_NE(tree.find("gateway-admission"), std::string::npos);
  EXPECT_NE(tree.find("decision=launch"), std::string::npos);
  // The child is indented under the root.
  EXPECT_LT(tree.find("job"), tree.find("submit-attempt"));
  EXPECT_LT(tree.find("submit-attempt"), tree.find("gateway-admission"));
}

TEST(TraceTest, TracesAreIndependent) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const TraceContext a = tracer.startTrace("job", "client:a");
  const TraceContext b = tracer.startTrace("job", "client:b");
  EXPECT_NE(a.trace, b.trace);
  tracer.startSpan("child", "client:a", a);
  EXPECT_EQ(tracer.spansForTrace(a.trace).size(), 2u);
  EXPECT_EQ(tracer.spansForTrace(b.trace).size(), 1u);
}

TEST(TraceTest, ChromeTraceJsonEmitsCompleteEvents) {
  sim::Simulator sim;
  Tracer tracer(sim);
  TraceContext root;
  sim.scheduleAt(sim::Time::fromNanos(2000), [&] {
    root = tracer.startTrace("job", "client:u1", {{"app", "sleep"}});
  });
  sim.scheduleAt(sim::Time::fromNanos(4000), [&] { tracer.endSpan(root); });
  sim.run();

  const std::string json = tracer.chromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);   // microseconds
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"sleep\""), std::string::npos);
}

TEST(TraceTest, ClearResetsEverything) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const TraceContext root = tracer.startTrace("job", "c");
  tracer.bindJob("j", root.trace);
  tracer.clear();
  EXPECT_EQ(tracer.spanCount(), 0u);
  EXPECT_FALSE(tracer.traceForJob("j").has_value());
}

}  // namespace
}  // namespace lidc::telemetry
