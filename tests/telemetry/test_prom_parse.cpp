// parsePrometheusText() hardening: collectors scrape exposition text
// off the wire, so the parser must never throw and must skip malformed
// lines deterministically — truncated lines, non-finite values,
// unbalanced label blocks, duplicates, and seeded random mutations of
// valid text all parse to the same result every time.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <string>

#include "telemetry/metrics.hpp"

namespace lidc::telemetry {
namespace {

TEST(PromParseTest, ParsesWellFormedText) {
  const std::string text =
      "# HELP lidc_jobs_total jobs\n"
      "# TYPE lidc_jobs_total counter\n"
      "lidc_jobs_total 42\n"
      "lidc_free_cpu_m{cluster=\"east\"} 8000\n"
      "lidc_ratio 0.125\n";
  const auto values = parsePrometheusText(text);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values.at("lidc_jobs_total"), 42.0);
  EXPECT_DOUBLE_EQ(values.at("lidc_free_cpu_m{cluster=\"east\"}"), 8000.0);
  EXPECT_DOUBLE_EQ(values.at("lidc_ratio"), 0.125);
}

TEST(PromParseTest, SkipsMalformedLinesKeepsGoodOnes) {
  const std::string text =
      "good_before 1\n"
      "no_value_here\n"
      "   \n"
      "just spaces and words here\n"
      "trailing_space_no_value \n"
      "unbalanced{label=\"x\" 5\n"
      "{onlylabels=\"x\"} 5\n"
      "name{a=\"1\"}garbage 5\n"
      "not_a_number abc\n"
      "partial_number 12abc\n"
      "good_after 2\n";
  const auto values = parsePrometheusText(text);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values.at("good_before"), 1.0);
  EXPECT_DOUBLE_EQ(values.at("good_after"), 2.0);
}

TEST(PromParseTest, DropsNonFiniteValues) {
  const std::string text =
      "a NaN\n"
      "b nan\n"
      "c Inf\n"
      "d -Inf\n"
      "e +Inf\n"
      "f 3.5\n";
  const auto values = parsePrometheusText(text);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values.at("f"), 3.5);
}

TEST(PromParseTest, DuplicateSeriesLastWins) {
  const auto values = parsePrometheusText("x 1\nx 2\nx 3\n");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values.at("x"), 3.0);
}

TEST(PromParseTest, TruncatedFinalLineWithoutNewline) {
  const auto values = parsePrometheusText("a 1\nb 2");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values.at("b"), 2.0);
}

TEST(PromParseTest, EmptyAndCommentOnlyInputs) {
  EXPECT_TRUE(parsePrometheusText("").empty());
  EXPECT_TRUE(parsePrometheusText("\n\n\n").empty());
  EXPECT_TRUE(parsePrometheusText("# just a comment\n# another\n").empty());
}

TEST(PromParseTest, ScientificNotationAndSigns) {
  const auto values = parsePrometheusText("a 1e3\nb -2.5\nc +4\nd 1.5e-2\n");
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values.at("a"), 1000.0);
  EXPECT_DOUBLE_EQ(values.at("b"), -2.5);
  EXPECT_DOUBLE_EQ(values.at("c"), 4.0);
  EXPECT_DOUBLE_EQ(values.at("d"), 0.015);
}

// Property-style fuzz: random byte mutations of a valid exposition must
// never throw, and any given garbage must parse identically twice
// (deterministic skipping, no hidden state).
TEST(PromParseTest, SeededMutationFuzzNeverThrowsAndIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("lidc_fuzz_total", {{"cluster", "east"}}).inc(7);
  registry.gauge("lidc_fuzz_gauge").set(123.5);
  registry.counter("lidc_fuzz_other").inc(1);
  const std::string valid = registry.toPrometheus();
  ASSERT_FALSE(parsePrometheusText(valid).empty());

  std::mt19937 rng(424242);
  std::uniform_int_distribution<std::size_t> pickPos(0, valid.size() - 1);
  std::uniform_int_distribution<int> pickByte(0, 255);
  std::uniform_int_distribution<int> pickMutations(1, 8);

  for (int round = 0; round < 500; ++round) {
    std::string mutated = valid;
    const int mutations = pickMutations(rng);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = pickPos(rng);
      switch (pickByte(rng) % 3) {
        case 0:  // overwrite
          mutated[pos] = static_cast<char>(pickByte(rng));
          break;
        case 1:  // delete
          mutated.erase(pos % mutated.size(), 1);
          break;
        default:  // insert
          mutated.insert(pos % mutated.size(), 1,
                         static_cast<char>(pickByte(rng)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    std::map<std::string, double> first;
    ASSERT_NO_THROW(first = parsePrometheusText(mutated)) << "round " << round;
    EXPECT_EQ(first, parsePrometheusText(mutated)) << "round " << round;
    for (const auto& [series, value] : first) {
      EXPECT_TRUE(std::isfinite(value)) << series;
    }
  }
}

}  // namespace
}  // namespace lidc::telemetry
