// Weathermap tests: series-key parsing, the publisher -> collector ->
// weathermap pipeline over the "flow" content group, hot-link
// flight-recorder events at scrape time, the alert value source, and
// the per-seed byte-determinism of every rendered view.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/weathermap.hpp"

namespace lidc::telemetry {
namespace {

TEST(ParseSeriesKeyTest, SplitsNameAndLabels) {
  auto [name, labels] = parseSeriesKey(
      "lidc_link_bytes_total{link=\"link://a->b\",tenant=\"acme\"}");
  EXPECT_EQ(name, "lidc_link_bytes_total");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels.at("link"), "link://a->b");
  EXPECT_EQ(labels.at("tenant"), "acme");

  EXPECT_EQ(parseSeriesKey("plain_name").first, "plain_name");
  EXPECT_TRUE(parseSeriesKey("plain_name").second.empty());

  // Malformed label text yields the parseable prefix, never a throw.
  auto truncated = parseSeriesKey("m{a=\"1\",b=");
  EXPECT_EQ(truncated.first, "m");
  EXPECT_EQ(truncated.second.size(), 1u);
  EXPECT_EQ(truncated.second.at("a"), "1");
}

/// One cluster node ("east") running a FlowAccountant whose flow group
/// is published under /ndn/k8s/telemetry/east/flow/, and an ops host
/// running the Weathermap.
struct WeathermapWorld {
  WeathermapWorld() : topology(sim), accountant(sim) {
    ndn::Forwarder& east = topology.addNode("east");
    topology.addNode("ops");
    topology.connect("east", "ops",
                     net::LinkParams{sim::Duration::millis(5), 0.0, 0.0});

    publisher = std::make_unique<TelemetryPublisher>(east, registry, "east");
    publisher->addContentGroup(
        "flow", [this] { return accountant.toPrometheus(); },
        [this] { return accountant.revision(); });
    ndn::Name prefix = kTelemetryPrefix;
    prefix.append("east");
    topology.installRoutesTo(prefix, "east");

    WeathermapOptions options;
    options.collector.interestLifetime = sim::Duration::millis(500);
    options.collector.freshnessWindow = sim::Duration::seconds(5);
    options.collector.scrapeInterval = sim::Duration::seconds(2);
    weathermap = std::make_unique<Weathermap>(*topology.node("ops"), options);
    weathermap->watchCluster("east");
  }

  /// Deterministic traffic mix: a noisy tenant dominating one link.
  void seedTraffic() {
    accountant.setLinkCapacity("link://east->ops", 8000.0);  // 1000 B/s
    LinkFlowStats* stats = accountant.link("link://east->ops");
    stats->onInterest(40);
    stats->onData(1500);
    accountant.attribute("link://east->ops", {"data", "noisy", "-"}, 1500,
                         /*fromCache=*/false);
    accountant.attribute("link://east->ops", {"data", "acme", "wf/genome"},
                         100, /*fromCache=*/true);
    accountant.recordTransfer({"staging", "acme", "plan-1"}, 2048);
  }

  sim::Simulator sim;
  net::Topology topology;
  MetricsRegistry registry;
  FlowAccountant accountant;
  std::unique_ptr<TelemetryPublisher> publisher;
  std::unique_ptr<Weathermap> weathermap;
};

TEST(WeathermapTest, ScrapeRebuildsLinkViews) {
  WeathermapWorld world;
  world.seedTraffic();
  world.weathermap->scrapeOnce();
  world.sim.run();

  const auto fleet = world.weathermap->links();
  ASSERT_EQ(fleet.count("east"), 1u);
  const auto& links = fleet.at("east");
  ASSERT_EQ(links.count("link://east->ops"), 1u);
  const LinkView& lv = links.at("link://east->ops");
  EXPECT_EQ(lv.cluster, "east");
  EXPECT_EQ(lv.interests, 1u);
  EXPECT_EQ(lv.dataPackets, 1u);
  EXPECT_EQ(lv.bytes, 1540u);
  EXPECT_EQ(lv.csBytes, 100u);
  EXPECT_EQ(lv.upstreamBytes, 1500u);
  EXPECT_DOUBLE_EQ(lv.capacityBits, 8000.0);
  EXPECT_NEAR(lv.dominantShare, 1500.0 / 1600.0, 1e-9);
  EXPECT_EQ(lv.tenantBytes.at("noisy"), 1500u);
  EXPECT_EQ(lv.tenantBytes.at("acme"), 100u);

  const auto talkers = world.weathermap->topTalkers("link://east->ops");
  ASSERT_EQ(talkers.size(), 2u);
  EXPECT_EQ(talkers[0].rank, 1);
  EXPECT_EQ(talkers[0].tenant, "noisy");
  EXPECT_EQ(talkers[0].bytes, 1500u);
  EXPECT_EQ(talkers[1].tenant, "acme");
  EXPECT_EQ(talkers[1].tag, "wf/genome");
  EXPECT_TRUE(world.weathermap->topTalkers("link://ghost").empty());
}

TEST(WeathermapTest, JsonAndExplainAreByteIdenticalPerSeed) {
  auto render = [] {
    WeathermapWorld world;
    world.seedTraffic();
    world.weathermap->scrapeOnce();
    world.sim.run();
    return world.weathermap->weathermapJson() + "\n---\n" +
           world.weathermap->explainLink("link://east->ops");
  };
  const std::string first = render();
  EXPECT_EQ(first, render());

  // Spot-check the rendered content.
  EXPECT_NE(first.find("\"cluster\":\"east\""), std::string::npos);
  EXPECT_NE(first.find("\"link\":\"link://east->ops\""), std::string::npos);
  EXPECT_NE(first.find("\"staged\":{\"acme|staging|plan-1\":2048}"),
            std::string::npos);
  EXPECT_NE(first.find("1. group=data tenant=noisy tag=- bytes=1500"),
            std::string::npos);
  EXPECT_NE(first.find("dominant_share 0.938"), std::string::npos);
}

TEST(WeathermapTest, ExplainUnknownLinkSaysSo) {
  WeathermapWorld world;
  EXPECT_EQ(world.weathermap->explainLink("link://nowhere"),
            "link link://nowhere\n  (unknown link)\n");
}

TEST(WeathermapTest, HotAndDominatedLinksDropFlightRecorderEvents) {
  WeathermapWorld world;
  FlightRecorder recorder(world.sim, 64);
  world.weathermap->setFlightRecorder(&recorder);

  world.accountant.setLinkCapacity("link://east->ops", 8000.0);
  // Burn 8x the capacity into the first one-second bucket, then let it
  // complete so the scraped utilization reads ~8.0.
  world.sim.scheduleAfter(sim::Duration::millis(100), [&world] {
    world.accountant.link("link://east->ops")->onData(8000);
    world.accountant.attribute("link://east->ops", {"data", "noisy", "-"},
                               8000, false);
  });
  world.sim.scheduleAfter(sim::Duration::millis(1500),
                          [&world] { world.weathermap->scrapeOnce(); });
  world.sim.run();

  const std::string rendered = FlightRecorder::render(recorder.lastN(16));
  EXPECT_NE(rendered.find("east hot-link link://east->ops"), std::string::npos);
  EXPECT_NE(rendered.find("east dominated-link link://east->ops tenant=noisy"),
            std::string::npos);
}

TEST(WeathermapTest, ValueSourceExposesFleetAggregates) {
  WeathermapWorld world;
  world.seedTraffic();
  world.weathermap->scrapeOnce();
  world.sim.run();

  const auto values = world.weathermap->valueSource()();
  EXPECT_DOUBLE_EQ(values.at("east/stale"), 0.0);
  EXPECT_NEAR(values.at("fleet/max_dominant_share"), 1500.0 / 1600.0, 1e-9);
  EXPECT_DOUBLE_EQ(values.at("fleet/hot_links"), 0.0);
  EXPECT_DOUBLE_EQ(
      values.at("east/lidc_link_bytes_total{link=\"link://east->ops\"}"),
      1540.0);
}

}  // namespace
}  // namespace lidc::telemetry
