// EWMA anomaly detectors: warmup gating, spike detection against a
// stable baseline, level-shift adaptation (flag then re-converge), and
// non-finite sample rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "telemetry/anomaly.hpp"

namespace lidc::telemetry {
namespace {

TEST(EwmaDetectorTest, NoFlagsDuringWarmup) {
  AnomalyOptions options;
  options.warmupSamples = 8;
  EwmaDetector detector(options);
  for (int i = 0; i < 7; ++i) {
    // Wild swings, but still warming up.
    const auto point = detector.observe(i % 2 == 0 ? 0.0 : 1000.0);
    EXPECT_FALSE(point.anomalous) << "sample " << i;
  }
  EXPECT_EQ(detector.samples(), 7u);
}

TEST(EwmaDetectorTest, SpikeAfterStableBaselineFlags) {
  EwmaDetector detector;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(detector.observe(10.0).anomalous);
  }
  const auto spike = detector.observe(10.5);
  // Flat series: stddev is floored at minStdDev, so even a small jump
  // is many sigmas out.
  EXPECT_TRUE(spike.anomalous);
  EXPECT_GT(spike.z, detector.options().zThreshold);
  EXPECT_NEAR(spike.mean, 10.0, 1e-9);
}

TEST(EwmaDetectorTest, LevelShiftFlagsThenReconverges) {
  AnomalyOptions options;
  options.alpha = 0.3;
  EwmaDetector detector(options);
  for (int i = 0; i < 20; ++i) detector.observe(10.0);

  EXPECT_TRUE(detector.observe(50.0).anomalous);
  // The mean keeps adapting after the flag, so a persistent shift
  // becomes the new normal within a handful of samples.
  bool recovered = false;
  for (int i = 0; i < 20 && !recovered; ++i) {
    recovered = !detector.observe(50.0).anomalous;
  }
  EXPECT_TRUE(recovered);
  for (int i = 0; i < 10; ++i) detector.observe(50.0);
  EXPECT_NEAR(detector.mean(), 50.0, 5.0);
}

TEST(EwmaDetectorTest, FlagLowOnlyIgnoresHighSpikes) {
  AnomalyOptions options;
  options.flagHigh = false;
  options.flagLow = true;
  EwmaDetector detector(options);
  for (int i = 0; i < 20; ++i) detector.observe(10.0);
  EXPECT_FALSE(detector.observe(100.0).anomalous);
  EXPECT_TRUE(detector.observe(-100.0).anomalous);
}

TEST(EwmaDetectorTest, NonFiniteSamplesAreIgnored) {
  EwmaDetector detector;
  for (int i = 0; i < 10; ++i) detector.observe(10.0);
  const std::uint64_t samplesBefore = detector.samples();
  const double meanBefore = detector.mean();

  EXPECT_FALSE(detector.observe(std::numeric_limits<double>::quiet_NaN()).anomalous);
  EXPECT_FALSE(detector.observe(std::numeric_limits<double>::infinity()).anomalous);
  EXPECT_EQ(detector.samples(), samplesBefore);
  EXPECT_DOUBLE_EQ(detector.mean(), meanBefore);
}

TEST(EwmaDetectorTest, ResetForgetsHistory) {
  EwmaDetector detector;
  for (int i = 0; i < 20; ++i) detector.observe(10.0);
  detector.reset();
  EXPECT_EQ(detector.samples(), 0u);
  // Post-reset it is warming up again: no flags.
  EXPECT_FALSE(detector.observe(1000.0).anomalous);
}

TEST(AnomalyBankTest, KeysDetectorsBySeries) {
  AnomalyBank bank;
  bank.observe("a", 1.0);
  bank.observe("a", 2.0);
  bank.observe("b", 5.0);
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank.detector("a").samples(), 2u);
  EXPECT_EQ(bank.detector("b").samples(), 1u);
}

}  // namespace
}  // namespace lidc::telemetry
