// Named monitoring plane tests: the publisher serves signed metric
// snapshots under /ndn/k8s/telemetry/<cluster>/..., the collector
// scrapes them with ordinary Interests, repeat snapshot fetches are
// served from Content Stores on the path, and a blacked-out cluster
// goes *stale* instead of wedging the collector.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/topology.hpp"
#include "sim/chaos.hpp"
#include "telemetry/monitor.hpp"

namespace lidc::telemetry {
namespace {

/// One publisher node ("east") and one collector host, directly linked.
struct MonitorWorld {
  MonitorWorld() : topology(sim) {
    ndn::Forwarder& pubNode = topology.addNode("east");
    topology.addNode("col-host");
    topology.connect("east", "col-host",
                     net::LinkParams{sim::Duration::millis(5), 0.0, 0.0});

    registry.counter("lidc_forwarder_in_interests", {{"node", "east"}}).set(12);
    registry.gauge("lidc_cluster_free_cpu_m", {{"cluster", "east"}}).set(8000);

    publisher = std::make_unique<TelemetryPublisher>(pubNode, registry, "east");

    ndn::Name prefix = kTelemetryPrefix;
    prefix.append("east");
    topology.installRoutesTo(prefix, "east");

    collector = std::make_unique<TelemetryCollector>(
        *topology.node("col-host"), collectorOptions());
    collector->watchCluster("east");
  }

  static TelemetryCollectorOptions collectorOptions() {
    TelemetryCollectorOptions options;
    options.interestLifetime = sim::Duration::millis(500);
    options.freshnessWindow = sim::Duration::seconds(5);
    options.scrapeInterval = sim::Duration::seconds(2);
    return options;
  }

  sim::Simulator sim;
  net::Topology topology;
  MetricsRegistry registry;
  std::unique_ptr<TelemetryPublisher> publisher;
  std::unique_ptr<TelemetryCollector> collector;
};

TEST(MonitorTest, CollectorScrapesPublishedSnapshot) {
  MonitorWorld world;
  bool done = false;
  world.collector->scrapeOnce([&done] { done = true; });
  world.sim.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 1u);
  EXPECT_EQ(world.collector->counters().snapshotsFetched, 1u);
  EXPECT_FALSE(world.collector->isStale("east"));

  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 1u);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east",
                              "lidc_forwarder_in_interests{node=\"east\"}"),
      12.0);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east", "lidc_cluster_free_cpu_m{cluster=\"east\"}"),
      8000.0);
  EXPECT_EQ(world.publisher->snapshotsGenerated(), 1u);
}

TEST(MonitorTest, UnchangedSeqReusesManifestWithoutRefetch) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  // Second scrape well inside snapshotInterval: same seq, so the
  // collector skips the snapshot fetch entirely.
  world.collector->scrapeOnce();
  world.sim.run();

  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 2u);
  EXPECT_EQ(world.collector->counters().manifestReuses, 1u);
  EXPECT_EQ(world.collector->counters().snapshotsFetched, 1u);
}

TEST(MonitorTest, RepeatSnapshotFetchIsServedFromContentStore) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  const std::uint64_t servedBefore = world.publisher->interestsServed();
  const std::uint64_t csHitsBefore =
      world.topology.node("col-host")->counters().nCsHits;

  // Forget the scraped values; the next scrape must re-fetch the
  // (immutable, long-freshness) snapshot Data — and the collector
  // host's own Content Store answers it without touching the publisher.
  // Delayed past the manifest's 500 ms freshness so the MustBeFresh
  // `_latest` Interest provably reaches the publisher while the
  // snapshot Interest still hits the cache.
  world.collector->invalidate("east");
  EXPECT_TRUE(world.collector->isStale("east"));
  world.sim.scheduleAfter(sim::Duration::millis(600),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();

  EXPECT_EQ(world.collector->counters().snapshotsFetched, 2u);
  EXPECT_FALSE(world.collector->isStale("east"));
  // The publisher answered only the MustBeFresh `_latest` manifest...
  EXPECT_EQ(world.publisher->interestsServed(), servedBefore + 1);
  // ...because the snapshot Interest was a Content Store hit.
  EXPECT_GT(world.topology.node("col-host")->counters().nCsHits, csHitsBefore);
}

TEST(MonitorTest, NewSeqAfterIntervalCarriesUpdatedValues) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();

  world.registry.counter("lidc_forwarder_in_interests", {{"node", "east"}})
      .set(99);
  // Past the publisher's snapshotInterval the next manifest Interest
  // triggers a fresh export with a bumped sequence number.
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();

  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 2u);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east",
                              "lidc_forwarder_in_interests{node=\"east\"}"),
      99.0);
}

TEST(MonitorTest, BlackedOutClusterGoesStaleInsteadOfWedging) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  ASSERT_FALSE(world.collector->isStale("east"));

  // Chaos: the link to east dies at t=1s and never recovers inside the
  // observation window. Periodic scraping keeps running against the
  // dead cluster.
  sim::ChaosEngine chaos(world.sim);
  chaos.linkDown("east-isolated", *world.topology.linkBetween("east", "col-host"),
                 world.sim.now() + sim::Duration::seconds(1),
                 sim::Duration::minutes(5));

  world.collector->start();
  world.sim.scheduleAfter(sim::Duration::seconds(20), [&world] {
    // Well past the freshness window: every scrape since the blackout
    // has failed and the cluster must read as stale.
    EXPECT_TRUE(world.collector->isStale("east"));
    EXPECT_GE(world.collector->counters().scrapesFailed, 2u);
    world.collector->stop();
  });
  world.sim.run();

  EXPECT_FALSE(world.collector->running());
  // The stale view still holds the last good values (seq 1) — staleness
  // is a flag, not data loss.
  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 1u);
  EXPECT_TRUE(view->everScraped);
}

TEST(MonitorTest, UnknownClusterNacksAndScrapeFails) {
  MonitorWorld world;
  world.collector->watchCluster("ghost");  // no route, no publisher
  bool done = false;
  world.collector->scrapeOnce([&done] { done = true; });
  world.sim.run();

  ASSERT_TRUE(done);  // the failed cluster does not hang the batch
  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 1u);
  EXPECT_EQ(world.collector->counters().scrapesFailed, 1u);
  EXPECT_TRUE(world.collector->isStale("ghost"));
  EXPECT_FALSE(world.collector->isStale("east"));
}

TEST(MonitorTest, PublisherRejectsMalformedTelemetryNames) {
  MonitorWorld world;
  auto& forwarder = *world.topology.node("col-host");
  auto face = std::make_shared<ndn::AppFace>("app://probe", world.sim);
  forwarder.addFace(face);

  ndn::Name tooShort = kTelemetryPrefix;
  tooShort.append("east");  // missing <group>/<seq|_latest>
  ndn::Interest interest(tooShort);
  interest.setLifetime(sim::Duration::millis(500));
  bool nacked = false;
  face->expressInterest(
      interest, [](const ndn::Interest&, const ndn::Data&) { FAIL(); },
      [&nacked](const ndn::Interest&, const ndn::Nack&) { nacked = true; },
      [](const ndn::Interest&) {});
  world.sim.run();
  EXPECT_TRUE(nacked);
  EXPECT_GE(world.publisher->interestsRejected(), 1u);
}

}  // namespace
}  // namespace lidc::telemetry
