// Named monitoring plane tests: the publisher serves signed metric
// snapshots under /ndn/k8s/telemetry/<cluster>/..., the collector
// scrapes them with ordinary Interests, repeat snapshot fetches are
// served from Content Stores on the path, and a blacked-out cluster
// goes *stale* instead of wedging the collector.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "sim/chaos.hpp"
#include "telemetry/monitor.hpp"

namespace lidc::telemetry {
namespace {

/// One publisher node ("east") and one collector host, directly linked.
struct MonitorWorld {
  MonitorWorld() : topology(sim) {
    ndn::Forwarder& pubNode = topology.addNode("east");
    topology.addNode("col-host");
    topology.connect("east", "col-host",
                     net::LinkParams{sim::Duration::millis(5), 0.0, 0.0});

    registry.counter("lidc_forwarder_in_interests", {{"node", "east"}}).set(12);
    registry.gauge("lidc_cluster_free_cpu_m", {{"cluster", "east"}}).set(8000);

    publisher = std::make_unique<TelemetryPublisher>(pubNode, registry, "east");

    ndn::Name prefix = kTelemetryPrefix;
    prefix.append("east");
    topology.installRoutesTo(prefix, "east");

    collector = std::make_unique<TelemetryCollector>(
        *topology.node("col-host"), collectorOptions());
    collector->watchCluster("east");
  }

  static TelemetryCollectorOptions collectorOptions() {
    TelemetryCollectorOptions options;
    options.interestLifetime = sim::Duration::millis(500);
    options.freshnessWindow = sim::Duration::seconds(5);
    options.scrapeInterval = sim::Duration::seconds(2);
    return options;
  }

  sim::Simulator sim;
  net::Topology topology;
  MetricsRegistry registry;
  std::unique_ptr<TelemetryPublisher> publisher;
  std::unique_ptr<TelemetryCollector> collector;
};

TEST(MonitorTest, CollectorScrapesPublishedSnapshot) {
  MonitorWorld world;
  bool done = false;
  world.collector->scrapeOnce([&done] { done = true; });
  world.sim.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 1u);
  EXPECT_EQ(world.collector->counters().snapshotsFetched, 1u);
  EXPECT_FALSE(world.collector->isStale("east"));

  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 1u);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east",
                              "lidc_forwarder_in_interests{node=\"east\"}"),
      12.0);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east", "lidc_cluster_free_cpu_m{cluster=\"east\"}"),
      8000.0);
  EXPECT_EQ(world.publisher->snapshotsGenerated(), 1u);
}

TEST(MonitorTest, UnchangedSeqReusesManifestWithoutRefetch) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  // Second scrape well inside snapshotInterval: same seq, so the
  // collector skips the snapshot fetch entirely.
  world.collector->scrapeOnce();
  world.sim.run();

  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 2u);
  EXPECT_EQ(world.collector->counters().manifestReuses, 1u);
  EXPECT_EQ(world.collector->counters().snapshotsFetched, 1u);
}

TEST(MonitorTest, RepeatSnapshotFetchIsServedFromContentStore) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  const std::uint64_t servedBefore = world.publisher->interestsServed();
  const std::uint64_t csHitsBefore =
      world.topology.node("col-host")->counters().nCsHits;

  // Forget the scraped values; the next scrape must re-fetch the
  // (immutable, long-freshness) snapshot Data — and the collector
  // host's own Content Store answers it without touching the publisher.
  // Delayed past the manifest's 500 ms freshness so the MustBeFresh
  // `_latest` Interest provably reaches the publisher while the
  // snapshot Interest still hits the cache.
  world.collector->invalidate("east");
  EXPECT_TRUE(world.collector->isStale("east"));
  world.sim.scheduleAfter(sim::Duration::millis(600),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();

  EXPECT_EQ(world.collector->counters().snapshotsFetched, 2u);
  EXPECT_FALSE(world.collector->isStale("east"));
  // The publisher answered only the MustBeFresh `_latest` manifest...
  EXPECT_EQ(world.publisher->interestsServed(), servedBefore + 1);
  // ...because the snapshot Interest was a Content Store hit.
  EXPECT_GT(world.topology.node("col-host")->counters().nCsHits, csHitsBefore);
}

TEST(MonitorTest, NewSeqAfterIntervalCarriesUpdatedValues) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();

  world.registry.counter("lidc_forwarder_in_interests", {{"node", "east"}})
      .set(99);
  // Past the publisher's snapshotInterval the next manifest Interest
  // triggers a fresh export with a bumped sequence number.
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();

  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 2u);
  EXPECT_DOUBLE_EQ(
      world.collector->metric("east",
                              "lidc_forwarder_in_interests{node=\"east\"}"),
      99.0);
}

TEST(MonitorTest, BlackedOutClusterGoesStaleInsteadOfWedging) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();
  ASSERT_FALSE(world.collector->isStale("east"));

  // Chaos: the link to east dies at t=1s and never recovers inside the
  // observation window. Periodic scraping keeps running against the
  // dead cluster.
  sim::ChaosEngine chaos(world.sim);
  chaos.linkDown("east-isolated", *world.topology.linkBetween("east", "col-host"),
                 world.sim.now() + sim::Duration::seconds(1),
                 sim::Duration::minutes(5));

  world.collector->start();
  world.sim.scheduleAfter(sim::Duration::seconds(20), [&world] {
    // Well past the freshness window: every scrape since the blackout
    // has failed and the cluster must read as stale.
    EXPECT_TRUE(world.collector->isStale("east"));
    EXPECT_GE(world.collector->counters().scrapesFailed, 2u);
    world.collector->stop();
  });
  world.sim.run();

  EXPECT_FALSE(world.collector->running());
  // The stale view still holds the last good values (seq 1) — staleness
  // is a flag, not data loss.
  const auto* view = world.collector->view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 1u);
  EXPECT_TRUE(view->everScraped);
}

TEST(MonitorTest, UnknownClusterNacksAndScrapeFails) {
  MonitorWorld world;
  world.collector->watchCluster("ghost");  // no route, no publisher
  bool done = false;
  world.collector->scrapeOnce([&done] { done = true; });
  world.sim.run();

  ASSERT_TRUE(done);  // the failed cluster does not hang the batch
  EXPECT_EQ(world.collector->counters().scrapesSucceeded, 1u);
  EXPECT_EQ(world.collector->counters().scrapesFailed, 1u);
  EXPECT_TRUE(world.collector->isStale("ghost"));
  EXPECT_FALSE(world.collector->isStale("east"));
}

TEST(MonitorTest, PublisherRejectsMalformedTelemetryNames) {
  MonitorWorld world;
  auto& forwarder = *world.topology.node("col-host");
  auto face = std::make_shared<ndn::AppFace>("app://probe", world.sim);
  forwarder.addFace(face);

  ndn::Name tooShort = kTelemetryPrefix;
  tooShort.append("east");  // missing <group>/<seq|_latest>
  ndn::Interest interest(tooShort);
  interest.setLifetime(sim::Duration::millis(500));
  bool nacked = false;
  face->expressInterest(
      interest, [](const ndn::Interest&, const ndn::Data&) { FAIL(); },
      [&nacked](const ndn::Interest&, const ndn::Nack&) { nacked = true; },
      [](const ndn::Interest&) {});
  world.sim.run();
  EXPECT_TRUE(nacked);
  EXPECT_GE(world.publisher->interestsRejected(), 1u);
}

TEST(MonitorTest, CollectorTelemetryGaugesTrackStaleAndFailures) {
  MonitorWorld world;
  MetricsRegistry colRegistry;
  world.collector->attachTelemetry(colRegistry);

  world.collector->scrapeOnce();
  world.sim.run();
  auto flat = colRegistry.flatten();
  EXPECT_EQ(flat.at("lidc_collector_stale_clusters"), 0.0);
  EXPECT_EQ(flat.at("lidc_collector_scrape_failures_total"), 0.0);
  EXPECT_EQ(flat.at("lidc_collector_scrapes_started_total"), 1.0);
  EXPECT_EQ(flat.at("lidc_collector_cluster_health{cluster=\"east\"}"), 1.0);

  // A watched-but-unreachable cluster shows up in both the failure
  // counter and the stale gauge — the monitor test for satellite #1.
  world.collector->watchCluster("ghost");
  world.collector->scrapeOnce();
  world.sim.run();
  flat = colRegistry.flatten();
  EXPECT_EQ(flat.at("lidc_collector_stale_clusters"), 1.0);
  EXPECT_GE(flat.at("lidc_collector_scrape_failures_total"), 1.0);
  EXPECT_EQ(flat.at("lidc_collector_cluster_health{cluster=\"ghost\"}"), 0.0);
}

TEST(MonitorTest, HealthScoreFollowsGatewayFractionAndStaleness) {
  MonitorWorld world;
  // Never scraped: staleScore.
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 0.0);

  world.collector->scrapeOnce();
  world.sim.run();
  // Scraped, no healthy-fraction series published: fully healthy.
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 1.0);

  // The gateway starts reporting 50% ready nodes; after the publisher's
  // snapshotInterval a new seq carries it into the score.
  world.registry.gauge("lidc_gateway_healthy_node_fraction", {{"cluster", "east"}})
      .set(0.5);
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 0.5);

  // Forgetting the view drops the cluster back to the stale score.
  world.collector->invalidate("east");
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 0.0);
}

TEST(MonitorTest, RejectionPressureDiscountsHealth) {
  MonitorWorld world;
  world.registry.counter("lidc_gateway_compute_received", {{"cluster", "east"}})
      .set(10);
  world.registry.counter("lidc_gateway_health_rejected", {{"cluster", "east"}})
      .set(0);
  world.collector->scrapeOnce();
  world.sim.run();
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 1.0);

  // Between snapshots the gateway rejected 5 of 10 new compute
  // Interests: pressure 0.5 discounts the score.
  world.registry.counter("lidc_gateway_compute_received", {{"cluster", "east"}})
      .set(20);
  world.registry.counter("lidc_gateway_health_rejected", {{"cluster", "east"}})
      .set(5);
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&world] { world.collector->scrapeOnce(); });
  world.sim.run();
  EXPECT_NEAR(world.collector->healthScore("east"), 0.5, 1e-9);
}

TEST(MonitorTest, BlackoutDropsDegradeHealthWithHoldDown) {
  MonitorWorld world;
  world.registry.counter("lidc_gateway_blackout_dropped", {{"cluster", "east"}})
      .set(0);
  world.collector->scrapeOnce();
  world.sim.run();
  EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 1.0);

  // The gateway went dark for compute while its telemetry publisher
  // kept answering: the drop delta alone must flag the cluster.
  world.registry.counter("lidc_gateway_blackout_dropped", {{"cluster", "east"}})
      .set(5);
  world.sim.scheduleAfter(sim::Duration::seconds(2), [&world] {
    world.collector->scrapeOnce([&world] {
      EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 0.0);
    });
  });
  // No new drops (steering moved traffic away), but the hold-down keeps
  // the degraded score so jobs are not lured back mid-fault.
  world.sim.scheduleAfter(sim::Duration::seconds(4), [&world] {
    world.collector->scrapeOnce([&world] {
      EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 0.0);
    });
  });
  // Past the hold-down window the cluster reads healthy again.
  world.sim.scheduleAfter(sim::Duration::seconds(13), [&world] {
    world.collector->scrapeOnce([&world] {
      EXPECT_DOUBLE_EQ(world.collector->healthScore("east"), 1.0);
    });
  });
  world.sim.run();
}

TEST(MonitorTest, HealthListenerFiresAfterEveryScrapeSettles) {
  MonitorWorld world;
  std::vector<std::pair<std::string, double>> notified;
  world.collector->setHealthListener(
      [&notified](const std::string& cluster, double score) {
        notified.emplace_back(cluster, score);
      });
  world.collector->watchCluster("ghost");
  world.collector->scrapeOnce();
  world.sim.run();

  ASSERT_EQ(notified.size(), 2u);
  // Success and failure both notify: east healthy, ghost at staleScore.
  std::map<std::string, double> byCluster(notified.begin(), notified.end());
  EXPECT_DOUBLE_EQ(byCluster.at("east"), 1.0);
  EXPECT_DOUBLE_EQ(byCluster.at("ghost"), 0.0);
}

TEST(MonitorTest, ContentGroupServesCustomTextWithRevisionGatedSeq) {
  MonitorWorld world;
  std::string content = "t=1.000000s alert=1 rule=r state=fired\n";
  std::uint64_t revision = 1;
  world.publisher->addContentGroup(
      "alerts", [&content] { return content; }, [&revision] { return revision; });

  TelemetryCollectorOptions options = MonitorWorld::collectorOptions();
  options.group = "alerts";
  TelemetryCollector alertScraper(*world.topology.node("col-host"), options);
  alertScraper.watchCluster("east");

  alertScraper.scrapeOnce();
  world.sim.run();
  const auto* view = alertScraper.view("east");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->seq, 1u);
  EXPECT_EQ(view->rawText, content);

  // Unchanged revision past the snapshot interval: same seq (manifest
  // reuse keeps the alert plane cheap while nothing transitions).
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&alertScraper] { alertScraper.scrapeOnce(); });
  world.sim.run();
  EXPECT_EQ(alertScraper.view("east")->seq, 1u);
  EXPECT_EQ(alertScraper.counters().manifestReuses, 1u);

  // A transition bumps the revision: next scrape sees a new seq + text.
  content += "t=9.000000s alert=1 rule=r state=resolved\n";
  revision = 2;
  world.sim.scheduleAfter(sim::Duration::seconds(2),
                          [&alertScraper] { alertScraper.scrapeOnce(); });
  world.sim.run();
  EXPECT_EQ(alertScraper.view("east")->seq, 2u);
  EXPECT_EQ(alertScraper.view("east")->rawText, content);
}

TEST(MonitorTest, CollectorValueSourceExposesPrefixedSeries) {
  MonitorWorld world;
  world.collector->scrapeOnce();
  world.sim.run();

  const auto source = collectorValueSource(*world.collector);
  const auto values = source();
  EXPECT_DOUBLE_EQ(values.at("east/stale"), 0.0);
  EXPECT_DOUBLE_EQ(values.at("east/health"), 1.0);
  EXPECT_DOUBLE_EQ(values.at("east/lidc_cluster_free_cpu_m{cluster=\"east\"}"),
                   8000.0);

  world.collector->invalidate("east");
  const auto stale = source();
  EXPECT_DOUBLE_EQ(stale.at("east/stale"), 1.0);
  EXPECT_DOUBLE_EQ(stale.at("east/health"), 0.0);
}

}  // namespace
}  // namespace lidc::telemetry
