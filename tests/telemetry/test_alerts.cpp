// Alert engine: threshold/SLO/anomaly rules firing and resolving over
// a mutable value source, flight-recorder windows snapshotted into
// alerts, explainAlert() post-mortems, the periodic tick loop, metric
// mirroring, and byte-identical transition logs across identical runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "telemetry/alerts.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::telemetry {
namespace {

class AlertEngineTest : public ::testing::Test {
 protected:
  std::map<std::string, double> values;
  sim::Simulator sim;

  void bind(AlertEngine& engine) {
    engine.setValueSource([this] { return values; });
  }
};

TEST_F(AlertEngineTest, ThresholdRuleFiresAfterForCountAndResolves) {
  AlertEngine engine(sim);
  bind(engine);
  engine.addThresholdRule("nacks-high", "nacks", AlertComparison::kAbove, 10.0,
                          /*forCount=*/2);

  values["nacks"] = 50.0;
  EXPECT_EQ(engine.evaluate(), 0);  // 1st consecutive breach: not yet
  EXPECT_EQ(engine.firingCount(), 0u);
  EXPECT_EQ(engine.evaluate(), 1);  // 2nd: fires
  EXPECT_EQ(engine.firingCount(), 1u);
  EXPECT_EQ(engine.firedTotal(), 1u);

  values["nacks"] = 5.0;
  EXPECT_EQ(engine.evaluate(), 1);  // resolves immediately
  EXPECT_EQ(engine.firingCount(), 0u);
  EXPECT_EQ(engine.resolvedTotal(), 1u);

  ASSERT_EQ(engine.alerts().size(), 1u);
  const Alert& alert = engine.alerts()[0];
  EXPECT_EQ(alert.rule, "nacks-high");
  EXPECT_EQ(alert.series, "nacks");
  EXPECT_FALSE(alert.firing);
  // The alert record tracks the latest observed value (the one it
  // resolved at); the fired value lives in the transition log.
  EXPECT_DOUBLE_EQ(alert.value, 5.0);
  EXPECT_NE(engine.serializedLog().find("value=50"), std::string::npos);
}

TEST_F(AlertEngineTest, BelowComparisonAndMissingSeries) {
  AlertEngine engine(sim);
  bind(engine);
  engine.addThresholdRule("health-low", "health", AlertComparison::kBelow, 0.5);

  // Missing series: threshold rules do not fire on absent data.
  EXPECT_EQ(engine.evaluate(), 0);
  values["health"] = 0.2;
  EXPECT_EQ(engine.evaluate(), 1);
  EXPECT_EQ(engine.firingCount(), 1u);
  values["health"] = 0.9;
  EXPECT_EQ(engine.evaluate(), 1);
  EXPECT_EQ(engine.firingCount(), 0u);
}

TEST_F(AlertEngineTest, FiredAlertSnapshotsFlightRecorderWindow) {
  FlightRecorder recorder(sim, 16);
  AlertEngineOptions options;
  options.eventWindow = 4;
  AlertEngine engine(sim, options);
  bind(engine);
  engine.setFlightRecorder(&recorder);
  engine.addThresholdRule("r", "x", AlertComparison::kAbove, 1.0);

  for (int i = 0; i < 6; ++i) {
    recorder.record("chaos", log::Level::kWarn, "event-" + std::to_string(i));
  }
  values["x"] = 2.0;
  ASSERT_EQ(engine.evaluate(), 1);

  const Alert& alert = engine.alerts()[0];
#if !defined(LIDC_TELEMETRY_DISABLED)
  ASSERT_EQ(alert.events.size(), 4u);
  EXPECT_EQ(alert.events.front().message, "event-2");
  EXPECT_EQ(alert.events.back().message, "event-5");
#endif

  const std::string post = engine.explainAlert(alert.id);
  EXPECT_NE(post.find("rule=r"), std::string::npos);
  EXPECT_NE(post.find("series: x"), std::string::npos);
#if !defined(LIDC_TELEMETRY_DISABLED)
  EXPECT_NE(post.find("event-5"), std::string::npos);
#endif
  EXPECT_TRUE(engine.explainAlert(9999).empty());
}

TEST_F(AlertEngineTest, SloRuleFiresOnSustainedBurn) {
  AlertEngineOptions options;
  options.evaluateInterval = sim::Duration::seconds(1);
  AlertEngine engine(sim, options);
  SloSpec spec;
  spec.name = "submit-slo";
  spec.target = 0.9;
  spec.goodSeries = "good";
  spec.totalSeries = "total";
  spec.windows = {{sim::Duration::seconds(5), 1.0}};
  engine.addSloRule(spec);
  // 10 requests/s; everything succeeds until t=10s, then hard failure.
  engine.setValueSource([this] {
    const double t = sim.now().toSeconds();
    return std::map<std::string, double>{
        {"good", 10.0 * std::min(t, 10.0)}, {"total", 10.0 * t}};
  });
  engine.start();

  bool firedDuringOutage = false;
  sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(25), [&] {
    firedDuringOutage = engine.firingCount() > 0;
  });
  sim.runUntil(sim::Time::fromNanos(0) + sim::Duration::seconds(30));
  engine.stop();
  sim.run();

  EXPECT_TRUE(firedDuringOutage);
  EXPECT_GE(engine.firedTotal(), 1u);
  EXPECT_GT(engine.evaluations(), 20u);
}

TEST_F(AlertEngineTest, AnomalyRuleFlagsLevelShift) {
  AlertEngine engine(sim);
  bind(engine);
  AnomalyOptions anomaly;
  anomaly.warmupSamples = 5;
  engine.addAnomalyRule("rtt-anomaly", "rtt", anomaly);

  values["rtt"] = 10.0;
  for (int i = 0; i < 12; ++i) EXPECT_EQ(engine.evaluate(), 0);
  values["rtt"] = 500.0;
  EXPECT_EQ(engine.evaluate(), 1);
  EXPECT_EQ(engine.firingCount(), 1u);
  // Sustained shift becomes the new normal and the alert resolves.
  bool resolved = false;
  for (int i = 0; i < 30 && !resolved; ++i) {
    engine.evaluate();
    resolved = engine.firingCount() == 0;
  }
  EXPECT_TRUE(resolved);
}

TEST_F(AlertEngineTest, AttachTelemetryMirrorsCounters) {
  MetricsRegistry registry;
  AlertEngine engine(sim);
  bind(engine);
  engine.attachTelemetry(registry);
  engine.addThresholdRule("r", "x", AlertComparison::kAbove, 1.0);

  values["x"] = 2.0;
  engine.evaluate();
  values["x"] = 0.0;
  engine.evaluate();

  const auto flat = registry.flatten();
  EXPECT_EQ(flat.at("lidc_alerts_fired_total"), 1.0);
  EXPECT_EQ(flat.at("lidc_alerts_resolved_total"), 1.0);
  EXPECT_EQ(flat.at("lidc_alerts_firing"), 0.0);
  EXPECT_EQ(flat.at("lidc_alerts_evaluations_total"), 2.0);
}

TEST_F(AlertEngineTest, RevisionBumpsOnlyOnTransitions) {
  AlertEngine engine(sim);
  bind(engine);
  engine.addThresholdRule("r", "x", AlertComparison::kAbove, 1.0);
  const std::uint64_t initial = engine.revision();
  values["x"] = 0.0;
  engine.evaluate();
  engine.evaluate();
  EXPECT_EQ(engine.revision(), initial);  // no transitions, no new seq
  values["x"] = 2.0;
  engine.evaluate();
  EXPECT_GT(engine.revision(), initial);
}

TEST_F(AlertEngineTest, SerializedLogIsDeterministic) {
  const auto run = [] {
    sim::Simulator sim;
    AlertEngine engine(sim);
    engine.setValueSource([&sim] {
      const double t = sim.now().toSeconds();
      return std::map<std::string, double>{
          {"x", (t >= 5.0 && t < 12.0) ? 3.0 : 0.0}};
    });
    engine.addThresholdRule("r", "x", AlertComparison::kAbove, 1.0);
    engine.start();
    sim.runUntil(sim::Time::fromNanos(0) + sim::Duration::seconds(20));
    engine.stop();
    sim.run();
    return engine.serializedLog();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("state=fired"), std::string::npos);
  EXPECT_NE(first.find("state=resolved"), std::string::npos);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace lidc::telemetry
