// Flight recorder: sim-clock stamped ring of structured events —
// ordering, wraparound, deterministic truncation, log capture via the
// global sink, and the exact render format alert post-mortems embed.
#include <gtest/gtest.h>

#include <string>

#include "common/logging.hpp"
#include "telemetry/flight_recorder.hpp"

namespace lidc::telemetry {
namespace {

TEST(FlightRecorderTest, RecordsEventsInChronologicalOrder) {
  sim::Simulator sim;
  FlightRecorder recorder(sim, 16);
  for (int i = 1; i <= 3; ++i) {
    sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(i),
                   [&recorder, i] {
                     recorder.record("comp", log::Level::kWarn,
                                     "event-" + std::to_string(i));
                   });
  }
  sim.run();

  EXPECT_EQ(recorder.recorded(), 3u);
  const auto events = recorder.lastN(2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "event-2");
  EXPECT_EQ(events[1].message, "event-3");
  EXPECT_EQ(events[1].component, "comp");
  EXPECT_EQ(events[1].severity, log::Level::kWarn);
  EXPECT_EQ(events[1].at.toNanos(), sim::Duration::seconds(3).toNanos());
}

TEST(FlightRecorderTest, WrapAroundKeepsNewestCapacityEvents) {
  sim::Simulator sim;
  FlightRecorder recorder(sim, 4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("c", log::Level::kInfo, "e" + std::to_string(i));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const auto events = recorder.lastN(100);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().message, "e6");
  EXPECT_EQ(events.back().message, "e9");
}

TEST(FlightRecorderTest, TruncatesLongFieldsDeterministically) {
  sim::Simulator sim;
  FlightRecorder recorder(sim, 4);
  const std::string longComponent(100, 'c');
  const std::string longMessage(500, 'm');
  recorder.record(longComponent, log::Level::kError, longMessage);
  const auto events = recorder.lastN(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].component.size(), FlightRecorder::kMaxComponent);
  EXPECT_EQ(events[0].message.size(), FlightRecorder::kMaxMessage);
  EXPECT_EQ(events[0].component, std::string(FlightRecorder::kMaxComponent, 'c'));
}

TEST(FlightRecorderTest, RenderFormatsSimTimeLevelComponentMessage) {
  sim::Simulator sim;
  FlightRecorder recorder(sim, 4);
  sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::millis(1500),
                 [&recorder] {
                   recorder.record("chaos", log::Level::kWarn, "inject east-dark");
                 });
  sim.run();
  EXPECT_EQ(FlightRecorder::render(recorder.lastN(1)),
            "t=1.500000s WARN chaos: inject east-dark\n");
}

TEST(FlightRecorderTest, CaptureLogsRoutesWarnAndAboveIntoRing) {
  sim::Simulator sim;
  const log::Level before = log::level();
  log::setLevel(log::Level::kInfo);
  {
    FlightRecorder recorder(sim, 16);
    recorder.captureLogs(log::Level::kWarn);
    LIDC_LOG(kInfo, "quiet") << "below the capture floor";
    LIDC_LOG(kWarn, "loud") << "captured line";
    const auto events = recorder.lastN(10);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].component, "loud");
    EXPECT_EQ(events[0].message, "captured line");

    recorder.releaseLogs();
    LIDC_LOG(kWarn, "loud") << "after release";
    EXPECT_EQ(recorder.lastN(10).size(), 1u);
  }
  // Recorder destroyed: the sink must be gone (no dangling capture).
  LIDC_LOG(kWarn, "loud") << "after destruction";
  log::setLevel(before);
}

TEST(FlightRecorderTest, EventMacroIsNullSafe) {
  FlightRecorder* recorder = nullptr;
  int evaluations = 0;
  // The message expression must not be evaluated for a null recorder.
  LIDC_FR_EVENT(recorder, kWarn, "x",
                (++evaluations, std::string("never built")));
  EXPECT_EQ(evaluations, 0);

  sim::Simulator sim;
  FlightRecorder real(sim, 4);
  LIDC_FR_EVENT(&real, kError, "y", std::string("built once"));
#if defined(LIDC_TELEMETRY_DISABLED)
  EXPECT_EQ(real.recorded(), 0u);
#else
  EXPECT_EQ(real.recorded(), 1u);
#endif
}

}  // namespace
}  // namespace lidc::telemetry
