// Counter-parity: after migrating forwarder/face counters onto the
// MetricsRegistry, both views must agree *exactly* — live-mirrored
// forwarder counters and collector-synced face aggregates equal the
// legacy structs after a full chaos run (crash + blackout + lossy
// links), where every pipeline branch (retries, nacks, timeouts,
// duplicate nonces) gets exercised.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "telemetry/metrics.hpp"

namespace lidc {
namespace {

/// Sums the legacy per-face counters of one forwarder.
ndn::FaceCounters sumFaces(ndn::Forwarder& forwarder) {
  ndn::FaceCounters total;
  std::size_t seen = 0;
  for (ndn::FaceId id = 1; seen < forwarder.faceCount() && id < 10000; ++id) {
    ndn::Face* face = forwarder.face(id);
    if (face == nullptr) continue;
    ++seen;
    const ndn::FaceCounters& c = face->counters();
    total.nInInterests += c.nInInterests;
    total.nOutInterests += c.nOutInterests;
    total.nInData += c.nInData;
    total.nOutData += c.nOutData;
    total.nInNacks += c.nInNacks;
    total.nOutNacks += c.nOutNacks;
    total.nInBytes += c.nInBytes;
    total.nOutBytes += c.nOutBytes;
  }
  return total;
}

std::uint64_t counterValue(telemetry::MetricsRegistry& registry,
                           const std::string& name, const std::string& node) {
  return registry.counter(name, {{"node", node}}).value();
}

TEST(CounterParityTest, RegistryMatchesLegacyCountersAcrossChaosRun) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  for (const char* name : {"east", "west"}) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay.addCluster(config);
    cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(10);
      return result;
    });
    cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
  }
  overlay.connect("client-host", "east",
                  net::LinkParams{sim::Duration::millis(5), 0.0, /*loss=*/0.08});
  overlay.connect("client-host", "west",
                  net::LinkParams{sim::Duration::millis(25), 0.0, /*loss=*/0.08});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 6;
  options.maxFailovers = 3;
  options.deadline = sim::Duration::minutes(10);
  core::LidcClient client(*overlay.topology().node("client-host"), "parity-user",
                          options, /*seed=*/31);

  telemetry::MetricsRegistry registry;
  overlay.attachTelemetry(registry);
  client.attachTelemetry(registry);

  sim::ChaosEngine chaos(sim, /*seed=*/77);
  chaos.clusterCrash("east-crash", overlay.cluster("east")->cluster(),
                     sim::Time::fromNanos(0) + sim::Duration::seconds(8));
  chaos.blackout("east-gw-dark", sim::Time::fromNanos(0) + sim::Duration::seconds(8),
                 sim::Duration::seconds(12), [&overlay](bool on) {
                   overlay.cluster("east")->gateway().setBlackout(on);
                 });

  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(2 * i),
                   [&client, &completed] {
                     core::ComputeRequest request;
                     request.app = "sleep";
                     request.cpu = MilliCpu::fromCores(1);
                     request.memory = ByteSize::fromGiB(1);
                     client.runToCompletion(
                         request, [&completed](Result<core::JobOutcome> r) {
                           if (r.ok()) ++completed;
                         });
                   });
  }
  sim.run();
  ASSERT_GE(completed, 1);

  // Run the collectors so face aggregates are synced, then compare.
  (void)registry.snapshot();

  for (const auto& nodeName : overlay.topology().nodeNames()) {
    ndn::Forwarder& node = *overlay.topology().node(nodeName);
    const ndn::ForwarderCounters& legacy = node.counters();
    ASSERT_GT(legacy.nInInterests, 0u) << nodeName << " saw no traffic";

    EXPECT_EQ(counterValue(registry, "lidc_forwarder_in_interests", nodeName),
              legacy.nInInterests) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_out_interests", nodeName),
              legacy.nOutInterests) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_in_data", nodeName),
              legacy.nInData) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_out_data", nodeName),
              legacy.nOutData) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_cs_hits", nodeName),
              legacy.nCsHits) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_cs_misses", nodeName),
              legacy.nCsMisses) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_satisfied", nodeName),
              legacy.nSatisfied) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_unsatisfied", nodeName),
              legacy.nUnsatisfied) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_duplicate_nonce", nodeName),
              legacy.nDuplicateNonce) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_no_route", nodeName),
              legacy.nNoRoute) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_forwarder_unsolicited_data", nodeName),
              legacy.nUnsolicitedData) << nodeName;

    const ndn::FaceCounters faces = sumFaces(node);
    EXPECT_EQ(counterValue(registry, "lidc_face_in_interests", nodeName),
              faces.nInInterests) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_out_interests", nodeName),
              faces.nOutInterests) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_in_data", nodeName),
              faces.nInData) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_out_data", nodeName),
              faces.nOutData) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_in_nacks", nodeName),
              faces.nInNacks) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_out_nacks", nodeName),
              faces.nOutNacks) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_in_bytes", nodeName),
              faces.nInBytes) << nodeName;
    EXPECT_EQ(counterValue(registry, "lidc_face_out_bytes", nodeName),
              faces.nOutBytes) << nodeName;
  }

  // Client + gateway migrations agree with their legacy counters too.
  EXPECT_EQ(registry.counter("lidc_client_submits", {{"client", "parity-user"}})
                .value(),
            client.submitsSent());
  const core::GatewayCounters& west =
      overlay.cluster("west")->gateway().counters();
  EXPECT_EQ(
      registry.counter("lidc_gateway_jobs_launched", {{"cluster", "west"}}).value(),
      west.jobsLaunched);
  EXPECT_EQ(registry
                .counter("lidc_gateway_blackout_dropped", {{"cluster", "east"}})
                .value(),
            overlay.cluster("east")->gateway().counters().blackoutDropped);
}

}  // namespace
}  // namespace lidc
