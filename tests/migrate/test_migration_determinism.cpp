// Migration determinism guard: a full drain-triggered live migration —
// checkpoint cadence, trigger, epoch resolution, pre-stage, resubmit,
// alias — replayed with the same seed produces byte-identical
// coordinator decision logs and checkpoint epoch traces; a different
// seed (different drain instant) produces a different trace. This is
// what makes post-incident replay debuggable: the logs ARE the
// behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint_format.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/semantic_name.hpp"
#include "migrate/checkpoint.hpp"
#include "migrate/coordinator.hpp"
#include "replica/scheduler.hpp"

namespace lidc::migrate {
namespace {

struct RunTrace {
  std::string decisions;  // coordinator decision log
  std::string epochs;     // both clusters' checkpoint epoch logs
  MigrationCounters counters;
  bool completedOnWest = false;
};

/// One full scenario: a 120 s resumable trainer starts on east; at a
/// seed-derived instant the operator drains east; the coordinator
/// migrates the job onto west from the latest checkpoint and the run
/// drains to quiescence.
RunTrace runScenario(std::uint64_t seed) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  overlay.addNode("ops-host");

  auto addCluster = [&](const std::string& name) -> core::ComputeCluster* {
    core::ComputeClusterConfig config;
    config.name = name;
    auto& cc = overlay.addCluster(config);
    cc.enableCheckpointServing();
    // Resume-aware trainer: a ckpt=<job>/<epoch> arg skips the work the
    // checkpoint already covers (10 s of progress per epoch).
    cc.cluster().registerApp("trainer", [](k8s::AppContext& ctx) {
      k8s::AppResult result;
      double done = 0.0;
      if (auto it = ctx.spec.args.find("ckpt"); it != ctx.spec.args.end()) {
        if (auto ref = core::parseCkptRef(it->second); ref.ok()) {
          done = std::min(120.0, 10.0 * static_cast<double>(ref->epoch));
        }
      }
      result.runtime = sim::Duration::seconds(120.0 - done);
      result.checkpointPlan = [](double progress) {
        const auto size = static_cast<std::size_t>(256.0 + progress * 1024.0);
        return std::vector<std::uint8_t>(size, 0x7e);
      };
      return result;
    });
    cc.gateway().jobs().mapAppToImage("train", "trainer");
    return &cc;
  };
  auto* east = addCluster("east");
  auto* west = addCluster("west");
  overlay.connect("client-host", "east",
                  net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "west",
                  net::LinkParams{sim::Duration::millis(30)});
  overlay.connect("ops-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("ops-host", "west", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("east", "west", net::LinkParams{sim::Duration::millis(10)});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  CheckpointOptions ckptOptions;
  ckptOptions.interval = sim::Duration::seconds(10);
  CheckpointManager eastCkpt(east->cluster(), east->store(), ckptOptions);
  CheckpointManager westCkpt(west->cluster(), west->store(), ckptOptions);

  replica::TransferScheduler eastSched(east->forwarder(), east->store(),
                                       "east");
  replica::TransferScheduler westSched(west->forwarder(), west->store(),
                                       "west");

  core::LidcClient user(*overlay.topology().node("client-host"), "user");
  core::LidcClient ops(*overlay.topology().node("ops-host"), "ops");
  core::AdaptivePlacement placement(overlay);
  MigrationCoordinator coordinator(ops, &placement);
  coordinator.addScheduler("east", &eastSched);
  coordinator.addScheduler("west", &westSched);
  coordinator.routeInstaller = [&overlay](const std::string& oldCluster,
                                          const std::string& oldJobId,
                                          const std::string& target) {
    overlay.topology().installRoutesTo(
        core::makeStatusName(oldCluster, oldJobId), target);
  };

  core::ComputeRequest request;
  request.app = "train";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  std::optional<Result<core::SubmitResult>> ack;
  user.submit(request,
              [&ack](Result<core::SubmitResult> r) { ack = std::move(r); });
  sim.runUntil(sim.now() + sim::Duration::seconds(1));
  EXPECT_TRUE(ack.has_value() && ack->ok());
  if (!ack.has_value() || !ack->ok()) return {};
  EXPECT_EQ((*ack)->cluster, "east");  // the closer cluster wins placement
  coordinator.track(**ack, request);

  // The drain instant is the seeded perturbation: everything downstream
  // (epoch at migration, resume runtime, log timestamps) flows from it.
  Rng rng(seed);
  const auto drainAt =
      sim::Duration::seconds(25.0 + static_cast<double>(rng.uniform(30)));
  sim.runUntil(sim::Time() + drainAt);
  coordinator.drainCluster("east");
  sim.run();

  RunTrace trace;
  trace.decisions = coordinator.decisionLog();
  trace.epochs = eastCkpt.epochLog() + westCkpt.epochLog();
  trace.counters = coordinator.counters();
  const auto original = (*ack)->jobId;
  std::optional<Result<core::JobStatusSnapshot>> final;
  ops.queryStatus(coordinator.currentStatusName(original),
                  [&final](Result<core::JobStatusSnapshot> r) {
                    final = std::move(r);
                  });
  sim.run();
  trace.completedOnWest = final.has_value() && final->ok() &&
                          (*final)->state == k8s::JobState::kCompleted &&
                          (*final)->cluster == "west";
  return trace;
}

TEST(MigrationDeterminismTest, SameSeedReplaysByteIdentical) {
  const RunTrace a = runScenario(7);
  const RunTrace b = runScenario(7);

  // The scenario actually migrated — once, warm, and to completion.
  EXPECT_EQ(a.counters.planned, 1u);
  EXPECT_EQ(a.counters.completed, 1u);
  EXPECT_EQ(a.counters.coldFallbacks, 0u);
  EXPECT_EQ(a.counters.failed, 0u);
  EXPECT_TRUE(a.completedOnWest);
  EXPECT_NE(a.decisions.find("plan job="), std::string::npos);
  EXPECT_NE(a.decisions.find("resume job="), std::string::npos);
  EXPECT_NE(a.decisions.find("migrate job="), std::string::npos);
  EXPECT_NE(a.epochs.find("ckpt job="), std::string::npos);

  // Byte-identical replay: the decision log and the epoch trace are
  // both pure functions of the seed.
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.counters.planned, b.counters.planned);
  EXPECT_EQ(a.counters.completed, b.counters.completed);
}

TEST(MigrationDeterminismTest, DifferentSeedsDiverge) {
  const RunTrace a = runScenario(7);
  const RunTrace c = runScenario(8);

  // Both seeds complete the migration; the traces differ because the
  // drain lands at a different simulated instant (and hence a
  // different checkpoint epoch / resume point).
  EXPECT_EQ(c.counters.completed, 1u);
  EXPECT_TRUE(c.completedOnWest);
  EXPECT_NE(a.decisions, c.decisions);
}

}  // namespace
}  // namespace lidc::migrate
