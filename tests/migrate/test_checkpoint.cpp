// CheckpointManager unit tests: periodic epoch writes sampled from the
// app's incremental-progress hook, manifest freshness, retention,
// cost-aware endgame skipping, and the replica-plane hookup (catalog
// entries + placement heat) that lets the ordinary RepairLoop keep a
// survivor copy of live checkpoints.
#include "migrate/checkpoint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint_format.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "replica/catalog.hpp"
#include "replica/policy.hpp"

namespace lidc::migrate {
namespace {

/// One cluster + client; the "trainer" app runs 55 s and exposes a
/// checkpoint plan whose payload grows with progress.
struct CheckpointRig {
  CheckpointRig() {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "east";
    cc = &overlay->addCluster(config);
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->announceCluster("east");
    cc->cluster().registerApp("trainer", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(55);
      result.checkpointPlan = [](double progress) {
        const auto size = static_cast<std::size_t>(100.0 + progress * 900.0);
        return std::vector<std::uint8_t>(size, 0x5a);
      };
      return result;
    });
    cc->gateway().jobs().mapAppToImage("train", "trainer");
    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "user");
  }

  /// Submits one trainer job and runs the world to quiescence.
  std::string runJob() {
    core::ComputeRequest request;
    request.app = "train";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    std::optional<Result<core::SubmitResult>> ack;
    client->submit(request,
                   [&ack](Result<core::SubmitResult> r) { ack = std::move(r); });
    sim.run();
    EXPECT_TRUE(ack.has_value() && ack->ok());
    return ack->ok() ? (*ack)->jobId : std::string{};
  }

  sim::Simulator sim;
  std::unique_ptr<core::ClusterOverlay> overlay;
  core::ComputeCluster* cc = nullptr;
  std::unique_ptr<core::LidcClient> client;
};

TEST(CheckpointManagerTest, WritesPeriodicEpochsWithManifestAndRetention) {
  CheckpointRig rig;
  CheckpointOptions options;
  options.interval = sim::Duration::seconds(10);
  options.retainEpochs = 2;
  CheckpointManager manager(rig.cc->cluster(), rig.cc->store(), options);

  const std::string jobId = rig.runJob();
  ASSERT_FALSE(jobId.empty());

  // 55 s runtime, 10 s cadence: epochs at t=10..50; no write at or past
  // completion.
  EXPECT_EQ(manager.counters().plansTracked, 1u);
  EXPECT_EQ(manager.counters().written, 5u);
  EXPECT_EQ(manager.counters().skippedEndgame, 0u);
  EXPECT_GT(manager.totalOverhead().toSeconds(), 0.0);

  // Retention keeps only the last two epochs in the lake.
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    EXPECT_FALSE(rig.cc->store().contains(core::makeCkptName(jobId, epoch)))
        << epoch;
  }
  for (std::uint64_t epoch = 4; epoch <= 5; ++epoch) {
    EXPECT_TRUE(rig.cc->store().contains(core::makeCkptName(jobId, epoch)))
        << epoch;
  }

  // The manifest names the latest epoch and pins its digest.
  const auto manifestBytes =
      rig.cc->store().get(core::makeCkptManifestName(jobId));
  ASSERT_TRUE(manifestBytes.has_value());
  const auto manifest = core::decodeCkptManifest(
      std::string(manifestBytes->begin(), manifestBytes->end()));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->jobId, jobId);
  EXPECT_EQ(manifest->epoch, 5u);
  const auto payload = rig.cc->store().get(core::makeCkptName(jobId, 5));
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(manifest->bytes, payload->size());
  EXPECT_EQ(manifest->digest, core::ckptDigest(*payload));
  EXPECT_GT(manifest->progressPermille, 0u);
  EXPECT_LE(manifest->progressPermille, 1000u);

  // Deterministic epoch trace narrates each write.
  EXPECT_NE(manager.epochLog().find("ckpt job=" + jobId + " epoch=1"),
            std::string::npos);
  EXPECT_NE(manager.epochLog().find("epoch=5"), std::string::npos);
}

TEST(CheckpointManagerTest, CostAwareCadenceSkipsTheEndgame) {
  CheckpointRig rig;
  CheckpointOptions options;
  options.interval = sim::Duration::seconds(10);
  // A write modeled at 7 s: at t=50 only 5 s of the job remain, so the
  // endgame recompute is cheaper than the I/O and the write is skipped.
  options.writeFixedCost = sim::Duration::seconds(7);
  CheckpointManager manager(rig.cc->cluster(), rig.cc->store(), options);

  const std::string jobId = rig.runJob();
  ASSERT_FALSE(jobId.empty());
  EXPECT_EQ(manager.counters().written, 4u);
  EXPECT_EQ(manager.counters().skippedEndgame, 1u);
  EXPECT_FALSE(rig.cc->store().contains(core::makeCkptName(jobId, 5)));
  EXPECT_NE(manager.epochLog().find("skip-endgame"), std::string::npos);
}

TEST(CheckpointManagerTest, RegistersEpochsInCatalogAndHeatsPolicy) {
  CheckpointRig rig;
  replica::ReplicaCatalog catalog(rig.cc->forwarder(), "east");
  replica::PlacementPolicy policy;
  CheckpointOptions options;
  options.interval = sim::Duration::seconds(10);
  options.retainEpochs = 2;
  CheckpointManager manager(rig.cc->cluster(), rig.cc->store(), options,
                            &catalog, &policy);

  const std::string jobId = rig.runJob();
  ASSERT_FALSE(jobId.empty());

  // Live epochs (and the manifest) are catalog-visible, so directory
  // scrapes see them; retired epochs were erased with their objects.
  EXPECT_NE(catalog.entry(core::makeCkptName(jobId, 5)), nullptr);
  EXPECT_NE(catalog.entry(core::makeCkptManifestName(jobId)), nullptr);
  EXPECT_EQ(catalog.entry(core::makeCkptName(jobId, 1)), nullptr);

  // One write's heat already crosses the hot threshold: the repair loop
  // will want hotReplicas copies of the live checkpoint.
  EXPECT_EQ(policy.targetReplicas(core::makeCkptName(jobId, 5)), 2u);
}

TEST(CheckpointManagerTest, JobsWithoutAPlanAreIgnored) {
  CheckpointRig rig;
  rig.cc->cluster().registerApp("plain", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(30);
    return result;
  });
  rig.cc->gateway().jobs().mapAppToImage("noop", "plain");
  CheckpointManager manager(rig.cc->cluster(), rig.cc->store());

  core::ComputeRequest request;
  request.app = "noop";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  std::optional<Result<core::SubmitResult>> ack;
  rig.client->submit(request,
                     [&ack](Result<core::SubmitResult> r) { ack = std::move(r); });
  rig.sim.run();
  ASSERT_TRUE(ack.has_value() && ack->ok());
  EXPECT_EQ(manager.counters().plansTracked, 0u);
  EXPECT_EQ(manager.counters().written, 0u);
  EXPECT_TRUE(manager.epochLog().empty());
}

}  // namespace
}  // namespace lidc::migrate
