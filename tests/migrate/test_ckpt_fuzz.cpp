// Seeded fuzz of the checkpoint-format parsers — the surfaces a hostile
// client reaches through ckpt= request params and on-the-wire manifest
// bytes. Invariant under fuzz: every call returns exactly one terminal
// signal — a valid parse or a clean error Status — and a parse reported
// ok satisfies the format's own round-trip contract. Runs ASan/UBSan
// clean under the sanitizer job; 2000 byte-soup iterations plus a
// structured malformed-manifest storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint_format.hpp"

namespace lidc::core {
namespace {

constexpr int kFuzzIterations = 2000;
constexpr std::uint64_t kFuzzSeed = 0xc4d7f00dULL;

/// Random bytes, biased toward the format's structural characters so
/// the soup actually exercises deep parser paths, not just the first
/// reject.
std::string randomSoup(Rng& rng, std::size_t maxLen) {
  static constexpr char kStructural[] = "/=;_0123456789abczAZ-. \n\0&";
  std::string out;
  const std::size_t len = rng.uniform(maxLen + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.uniform(2) == 0) {
      out.push_back(kStructural[rng.uniform(sizeof(kStructural) - 1)]);
    } else {
      out.push_back(static_cast<char>(rng.uniform(256)));
    }
  }
  return out;
}

TEST(CkptFuzzTest, ByteSoupNeverCrashesRefParser) {
  Rng rng(kFuzzSeed);
  int accepted = 0;
  for (int i = 0; i < kFuzzIterations; ++i) {
    // Alternate raw byte soup with mutations of a valid ref, so the
    // accept path is fuzzed as hard as the reject path.
    std::string soup;
    if (i % 2 == 0) {
      soup = randomSoup(rng, 96);
    } else {
      soup = "east-7/12";
      const std::size_t flips = rng.uniform(3);
      for (std::size_t f = 0; f < flips; ++f) {
        soup[rng.uniform(soup.size())] = static_cast<char>(rng.uniform(256));
      }
    }
    const auto ref = parseCkptRef(soup);
    if (!ref.ok()) continue;  // clean rejection is the common terminal
    ++accepted;
    // An accepted ref must satisfy the format's own contract: the name
    // it builds parses back to the identical ref.
    EXPECT_FALSE(ref->jobId.empty());
    EXPECT_GT(ref->epoch, 0u);
    const auto roundTrip = parseCkptName(makeCkptName(ref->jobId, ref->epoch));
    ASSERT_TRUE(roundTrip.ok()) << soup;
    EXPECT_EQ(roundTrip->jobId, ref->jobId);
    EXPECT_EQ(roundTrip->epoch, ref->epoch);
  }
  // The grammar is tight but satisfiable: some soup must get through,
  // otherwise the accept path was never fuzzed at all.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, kFuzzIterations);
}

TEST(CkptFuzzTest, ByteSoupNeverCrashesManifestDecoder) {
  Rng rng(kFuzzSeed ^ 0xffULL);
  for (int i = 0; i < kFuzzIterations; ++i) {
    const std::string soup = randomSoup(rng, 160);
    const auto manifest = decodeCkptManifest(soup);
    if (!manifest.ok()) continue;
    // Accepted manifests obey the documented field constraints.
    EXPECT_LE(manifest->progressPermille, 1000u);
    EXPECT_FALSE(manifest->jobId.empty());
    // And re-encoding decodes to the same job/epoch/digest.
    const auto again = decodeCkptManifest(encodeCkptManifest(*manifest));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->jobId, manifest->jobId);
    EXPECT_EQ(again->epoch, manifest->epoch);
    EXPECT_EQ(again->digest, manifest->digest);
  }
}

TEST(CkptFuzzTest, MalformedManifestStormRejectsEveryMutation) {
  CkptManifest seed;
  seed.jobId = "east-42";
  seed.app = "magic-blast";
  seed.epoch = 7;
  seed.bytes = 4096;
  seed.digest = 0xdeadbeefcafeULL;
  seed.progressPermille = 500;
  const std::string valid = encodeCkptManifest(seed);
  ASSERT_TRUE(decodeCkptManifest(valid).ok());

  Rng rng(kFuzzSeed ^ 0xabcdULL);
  int rejected = 0;
  int survived = 0;
  for (int i = 0; i < kFuzzIterations; ++i) {
    std::string mutated = valid;
    switch (rng.uniform(4)) {
      case 0:  // flip one byte
        mutated[rng.uniform(mutated.size())] =
            static_cast<char>(rng.uniform(256));
        break;
      case 1:  // truncate
        mutated.resize(rng.uniform(mutated.size()));
        break;
      case 2:  // duplicate a random slice onto the tail (repeated keys)
      {
        const std::size_t from = rng.uniform(mutated.size());
        mutated += ";";
        mutated += mutated.substr(from);
        break;
      }
      default:  // splice random soup into the middle
      {
        const std::size_t at = rng.uniform(mutated.size());
        mutated.insert(at, randomSoup(rng, 16));
        break;
      }
    }
    const auto decoded = decodeCkptManifest(mutated);
    if (!decoded.ok()) {
      ++rejected;
      continue;
    }
    // Mutations that still decode must still satisfy every invariant —
    // a decoder that "mostly" validates is how stale-epoch restores
    // slip through.
    ++survived;
    EXPECT_LE(decoded->progressPermille, 1000u);
    EXPECT_FALSE(decoded->jobId.empty());
    EXPECT_TRUE(decodeCkptManifest(encodeCkptManifest(*decoded)).ok());
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(rejected + survived, kFuzzIterations);
}

TEST(CkptFuzzTest, HostileNamesAreRejectedNotMisparsed) {
  // Directed probes at the known edges of the grammar.
  const std::string kHostile[] = {
      "",
      "/",
      "job/",
      "/3",
      "job/0",
      "job/-1",
      "job/1x",
      "job/18446744073709551616",  // 2^64: overflow must reject
      "job/1/2",
      "job//1",
      "a b/1",
      std::string(512, 'a') + "/1",
      std::string("j\0b/1", 5),
      "job/_manifest",
  };
  for (const std::string& probe : kHostile) {
    EXPECT_FALSE(parseCkptRef(probe).ok()) << "accepted: " << probe;
  }
  // The canonical form still parses.
  const auto ok = parseCkptRef("east-7/12");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->jobId, "east-7");
  EXPECT_EQ(ok->epoch, 12u);
}

}  // namespace
}  // namespace lidc::core
