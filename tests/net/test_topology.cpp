#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "ndn/app_face.hpp"

namespace lidc::net {
namespace {

/// Attaches a producer app for `prefix` at a node.
std::shared_ptr<ndn::AppFace> attachProducer(Topology& topo, const std::string& node,
                                             const ndn::Name& prefix,
                                             const std::string& label) {
  auto* fw = topo.node(node);
  auto app = std::make_shared<ndn::AppFace>("app://" + label, topo.simulator(),
                                            std::hash<std::string>{}(label));
  fw->addFace(app);
  fw->registerPrefix(prefix, app->id());
  // Capture a raw pointer: the forwarder keeps the face alive, and a
  // shared_ptr capture would cycle through the handler and leak.
  app->setInterestHandler([face = app.get(), label](const ndn::Interest& interest) {
    ndn::Data data(interest.name());
    data.setContent(label);
    data.sign();
    face->putData(std::move(data));
  });
  return app;
}

TEST(TopologyTest, AddNodeAndLookup) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.addNode("x");
  EXPECT_NE(topo.node("x"), nullptr);
  EXPECT_EQ(topo.node("y"), nullptr);
  EXPECT_EQ(topo.nodeCount(), 1u);
}

TEST(TopologyTest, ConnectRecordsEdges) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.addNode("a");
  topo.addNode("b");
  topo.connect("a", "b", LinkParams{});
  EXPECT_EQ(topo.edges().size(), 1u);
  EXPECT_NE(topo.linkBetween("a", "b"), nullptr);
  EXPECT_NE(topo.linkBetween("b", "a"), nullptr);
  EXPECT_EQ(topo.linkBetween("a", "c"), nullptr);
}

TEST(TopologyTest, RoutesFollowShortestLatencyPath) {
  // Diamond: src - m1 - dst (10ms+10ms) vs src - m2 - dst (5ms+5ms).
  sim::Simulator sim;
  Topology topo(sim);
  for (const char* n : {"src", "m1", "m2", "dst"}) topo.addNode(n);
  topo.connect("src", "m1", LinkParams{sim::Duration::millis(10)});
  topo.connect("m1", "dst", LinkParams{sim::Duration::millis(10)});
  topo.connect("src", "m2", LinkParams{sim::Duration::millis(5)});
  topo.connect("m2", "dst", LinkParams{sim::Duration::millis(5)});

  auto producer = attachProducer(topo, "dst", ndn::Name("/svc"), "dst");
  topo.installRoutesTo(ndn::Name("/svc"), "dst");

  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  topo.node("src")->addFace(consumer);

  bool got = false;
  consumer->expressInterest(ndn::Interest(ndn::Name("/svc/x")),
                            [&](const ndn::Interest&, const ndn::Data&) {
                              got = true;
                            });
  sim.run();
  EXPECT_TRUE(got);
  // Shortest path (5+5) round trip = 20 ms, not 40 ms.
  EXPECT_DOUBLE_EQ(sim.now().toSeconds(), 0.020);
  // m1 never saw traffic.
  EXPECT_EQ(topo.node("m1")->counters().nInInterests, 0u);
}

TEST(TopologyTest, MultiProducerAnycastGoesNearest) {
  // client - 5ms - pNear ; client - 50ms - pFar, same prefix from both.
  sim::Simulator sim;
  Topology topo(sim);
  for (const char* n : {"client", "pNear", "pFar"}) topo.addNode(n);
  topo.connect("client", "pNear", LinkParams{sim::Duration::millis(5)});
  topo.connect("client", "pFar", LinkParams{sim::Duration::millis(50)});
  attachProducer(topo, "pNear", ndn::Name("/svc"), "near");
  attachProducer(topo, "pFar", ndn::Name("/svc"), "far");
  topo.installRoutesTo(ndn::Name("/svc"), "pNear");
  topo.installRoutesTo(ndn::Name("/svc"), "pFar");

  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  topo.node("client")->addFace(consumer);
  std::string winner;
  consumer->expressInterest(ndn::Interest(ndn::Name("/svc/x")),
                            [&](const ndn::Interest&, const ndn::Data& data) {
                              winner = data.contentAsString();
                            });
  sim.run();
  EXPECT_EQ(winner, "near");
}

TEST(TopologyTest, UninstallRemovesRoutes) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.addNode("a");
  topo.addNode("b");
  topo.connect("a", "b", LinkParams{sim::Duration::millis(1)});
  attachProducer(topo, "b", ndn::Name("/svc"), "b");
  topo.installRoutesTo(ndn::Name("/svc"), "b");
  EXPECT_NE(topo.node("a")->fib().longestPrefixMatch(ndn::Name("/svc/x")), nullptr);
  topo.uninstallRoutesTo(ndn::Name("/svc"), "b");
  EXPECT_EQ(topo.node("a")->fib().longestPrefixMatch(ndn::Name("/svc/x")), nullptr);
}

TEST(TopologyTest, DownLinksExcludedFromRouting) {
  // Two paths; kill the short one before installing routes.
  sim::Simulator sim;
  Topology topo(sim);
  for (const char* n : {"src", "m1", "m2", "dst"}) topo.addNode(n);
  topo.connect("src", "m1", LinkParams{sim::Duration::millis(10)});
  topo.connect("m1", "dst", LinkParams{sim::Duration::millis(10)});
  topo.connect("src", "m2", LinkParams{sim::Duration::millis(5)});
  topo.connect("m2", "dst", LinkParams{sim::Duration::millis(5)});
  topo.linkBetween("src", "m2")->setUp(false);

  attachProducer(topo, "dst", ndn::Name("/svc"), "dst");
  topo.installRoutesTo(ndn::Name("/svc"), "dst");

  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  topo.node("src")->addFace(consumer);
  bool got = false;
  consumer->expressInterest(ndn::Interest(ndn::Name("/svc/x")),
                            [&](const ndn::Interest&, const ndn::Data&) {
                              got = true;
                            });
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_DOUBLE_EQ(sim.now().toSeconds(), 0.040);  // via m1
}

TEST(TopologyTest, UninstallKeepsSharedNextHops) {
  // Two producers behind the same uplink: withdrawing one must keep the
  // shared next hop alive for the other.
  sim::Simulator sim;
  Topology topo(sim);
  for (const char* n : {"client", "hub", "p1", "p2"}) topo.addNode(n);
  topo.connect("client", "hub", LinkParams{sim::Duration::millis(5)});
  topo.connect("hub", "p1", LinkParams{sim::Duration::millis(5)});
  topo.connect("hub", "p2", LinkParams{sim::Duration::millis(5)});
  attachProducer(topo, "p1", ndn::Name("/svc"), "one");
  attachProducer(topo, "p2", ndn::Name("/svc"), "two");
  topo.installRoutesTo(ndn::Name("/svc"), "p1");
  topo.installRoutesTo(ndn::Name("/svc"), "p2");

  topo.uninstallRoutesTo(ndn::Name("/svc"), "p1");

  // The client still reaches p2 through the shared client->hub face.
  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  topo.node("client")->addFace(consumer);
  std::string winner;
  consumer->expressInterest(ndn::Interest(ndn::Name("/svc/x")),
                            [&](const ndn::Interest&, const ndn::Data& data) {
                              winner = data.contentAsString();
                            });
  sim.run();
  EXPECT_EQ(winner, "two");
}

TEST(TopologyTest, DisconnectedNodeGetsNoRoute) {
  sim::Simulator sim;
  Topology topo(sim);
  topo.addNode("island");
  topo.addNode("mainland");
  attachProducer(topo, "mainland", ndn::Name("/svc"), "m");
  topo.installRoutesTo(ndn::Name("/svc"), "mainland");
  EXPECT_EQ(topo.node("island")->fib().longestPrefixMatch(ndn::Name("/svc/x")),
            nullptr);
}

}  // namespace
}  // namespace lidc::net
