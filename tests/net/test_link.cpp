#include "net/link.hpp"

#include <gtest/gtest.h>

#include "ndn/app_face.hpp"

namespace lidc::net {
namespace {

class LinkTest : public ::testing::Test {
 protected:
  LinkTest() : a_("a", sim_), b_("b", sim_) {}

  /// Wires a consumer app on a_ and a producer app on b_ serving /p.
  void wire(LinkParams params) {
    auto [aToB, bToA] = Link::connect(sim_, a_, b_, params, &link_);
    consumer_ = std::make_shared<ndn::AppFace>("app://c", sim_, 1);
    a_.addFace(consumer_);
    a_.registerPrefix(ndn::Name("/p"), aToB);

    producer_ = std::make_shared<ndn::AppFace>("app://p", sim_, 2);
    b_.addFace(producer_);
    b_.registerPrefix(ndn::Name("/p"), producer_->id());
    producer_->setInterestHandler([this](const ndn::Interest& interest) {
      ndn::Data data(interest.name());
      data.setContent(std::string(payloadSize_, 'x'));
      data.sign();
      producer_->putData(std::move(data));
    });
  }

  sim::Simulator sim_;
  ndn::Forwarder a_;
  ndn::Forwarder b_;
  std::shared_ptr<Link> link_;
  std::shared_ptr<ndn::AppFace> consumer_;
  std::shared_ptr<ndn::AppFace> producer_;
  std::size_t payloadSize_ = 10;
};

TEST_F(LinkTest, LatencyOnlyRoundTrip) {
  wire(LinkParams{sim::Duration::millis(25), 0.0, 0.0});
  bool got = false;
  consumer_->expressInterest(ndn::Interest(ndn::Name("/p/x")),
                             [&](const ndn::Interest&, const ndn::Data&) {
                               got = true;
                             });
  sim_.run();
  EXPECT_TRUE(got);
  EXPECT_DOUBLE_EQ(sim_.now().toSeconds(), 0.050);
}

TEST_F(LinkTest, BandwidthAddsSerializationDelay) {
  // 1 Mbit/s; a ~64 KiB data packet takes ~0.5 s to serialize.
  payloadSize_ = 64 * 1024;
  wire(LinkParams{sim::Duration::millis(1), 1e6, 0.0});
  bool got = false;
  consumer_->expressInterest(ndn::Interest(ndn::Name("/p/x")),
                             [&](const ndn::Interest&, const ndn::Data&) {
                               got = true;
                             });
  sim_.run();
  EXPECT_TRUE(got);
  EXPECT_GT(sim_.now().toSeconds(), 0.5);
  EXPECT_LT(sim_.now().toSeconds(), 0.7);
}

TEST_F(LinkTest, SerializationIsFifoPerDirection) {
  payloadSize_ = 8 * 1024;  // ~65 ms serialization each at 1 Mbit/s
  wire(LinkParams{sim::Duration::millis(1), 1e6, 0.0});
  int got = 0;
  sim::Time lastArrival;
  for (int i = 0; i < 4; ++i) {
    consumer_->expressInterest(
        ndn::Interest(ndn::Name("/p/obj" + std::to_string(i))),
        [&](const ndn::Interest&, const ndn::Data&) {
          ++got;
          lastArrival = sim_.now();
        });
  }
  sim_.run();
  EXPECT_EQ(got, 4);
  // Four back-to-back ~65 ms transmissions must take > 0.25 s in total.
  EXPECT_GT(lastArrival.toSeconds(), 0.25);
}

TEST_F(LinkTest, LossDropsDeterministically) {
  wire(LinkParams{sim::Duration::millis(1), 0.0, 1.0});  // 100% loss
  int timeouts = 0;
  ndn::Interest interest{ndn::Name("/p/x")};
  interest.setLifetime(sim::Duration::millis(200));
  consumer_->expressInterest(
      interest, [](const ndn::Interest&, const ndn::Data&) { FAIL(); }, nullptr,
      [&](const ndn::Interest&) { ++timeouts; });
  sim_.run();
  EXPECT_EQ(timeouts, 1);
  EXPECT_GE(link_->packetsDropped(), 1u);
}

TEST_F(LinkTest, PartialLossEventuallyDelivers) {
  wire(LinkParams{sim::Duration::millis(1), 0.0, 0.5});
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    consumer_->expressInterest(
        ndn::Interest(ndn::Name("/p/o" + std::to_string(i))),
        [&](const ndn::Interest&, const ndn::Data&) { ++delivered; });
  }
  sim_.run();
  EXPECT_GT(delivered, 5);
  EXPECT_LT(delivered, 50);
  EXPECT_GT(link_->packetsDropped(), 0u);
}

TEST_F(LinkTest, DownLinkNacksImmediatelyUpRestores) {
  wire(LinkParams{sim::Duration::millis(1), 0.0, 0.0});
  link_->setUp(false);
  // The strategy sees the dead face and nacks NoRoute right away —
  // faster failure signalling than a timeout.
  int nacks = 0;
  ndn::Interest interest{ndn::Name("/p/x")};
  interest.setLifetime(sim::Duration::millis(100));
  consumer_->expressInterest(
      interest, [](const ndn::Interest&, const ndn::Data&) { FAIL(); },
      [&](const ndn::Interest&, const ndn::Nack& nack) {
        ++nacks;
        EXPECT_EQ(nack.reason(), ndn::NackReason::kNoRoute);
      });
  sim_.run();
  EXPECT_EQ(nacks, 1);

  link_->setUp(true);
  bool got = false;
  consumer_->expressInterest(ndn::Interest(ndn::Name("/p/y")),
                             [&](const ndn::Interest&, const ndn::Data&) {
                               got = true;
                             });
  sim_.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace lidc::net
