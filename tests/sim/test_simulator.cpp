#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lidc::sim {
namespace {

TEST(DurationTest, UnitConversions) {
  EXPECT_EQ(Duration::millis(1).toNanos(), 1'000'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(2.5).toSeconds(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::minutes(2).toSeconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::hours(1).toSeconds(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::micros(1500).toMillis(), 1.5);
}

TEST(DurationTest, ArithmeticAndOrdering) {
  EXPECT_EQ(Duration::millis(3) + Duration::millis(4), Duration::millis(7));
  EXPECT_EQ(Duration::seconds(1) - Duration::millis(250), Duration::millis(750));
  EXPECT_LT(Duration::millis(1), Duration::seconds(1));
  EXPECT_EQ(Duration::millis(10) * 2.0, Duration::millis(20));
}

TEST(TimeTest, TimePlusDuration) {
  const Time t = Time::fromNanos(1000) + Duration::nanos(500);
  EXPECT_EQ(t.toNanos(), 1500);
  EXPECT_EQ(t - Time::fromNanos(1000), Duration::nanos(500));
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAfter(Duration::millis(30), [&] { order.push_back(3); });
  sim.scheduleAfter(Duration::millis(10), [&] { order.push_back(1); });
  sim.scheduleAfter(Duration::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.scheduleAfter(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  Time observed;
  sim.scheduleAfter(Duration::seconds(2), [&] { observed = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(observed.toSeconds(), 2.0);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(Duration::millis(1), [&] {
    ++fired;
    sim.scheduleAfter(Duration::millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.scheduleAfter(Duration::millis(5), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFiringIsHarmless) {
  Simulator sim;
  auto handle = sim.scheduleAfter(Duration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(Duration::millis(10), [&] { ++fired; });
  sim.scheduleAfter(Duration::millis(30), [&] { ++fired; });
  const auto count =
      sim.runUntil(Time::fromNanos(Duration::millis(20).toNanos()));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(fired, 1);
  // Clock advanced exactly to the deadline.
  EXPECT_EQ(sim.now().toNanos(), Duration::millis(20).toNanos());
  // The rest still runs later.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunStepsLimitsEventCount) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.scheduleAfter(Duration::millis(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.runSteps(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pendingEvents(), 6u);
}

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  Simulator sim;
  sim.scheduleAfter(Duration::millis(10), [] {});
  sim.run();
  bool fired = false;
  sim.scheduleAt(Time::fromNanos(0), [&] {
    fired = true;
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_GE(sim.now().toNanos(), Duration::millis(10).toNanos());
}

TEST(SimulatorTest, RunUntilWithCancelledHeadRespectsDeadline) {
  // Regression: a cancelled event before the deadline must not let a
  // live event *after* the deadline execute.
  Simulator sim;
  auto cancelled = sim.scheduleAfter(Duration::millis(10), [] {});
  bool lateFired = false;
  sim.scheduleAfter(Duration::seconds(100), [&] { lateFired = true; });
  cancelled.cancel();
  sim.runUntil(Time::fromNanos(Duration::seconds(1).toNanos()));
  EXPECT_FALSE(lateFired);
  EXPECT_EQ(sim.now().toNanos(), Duration::seconds(1).toNanos());
}

TEST(SimulatorTest, EmptyAfterRun) {
  Simulator sim;
  sim.scheduleAfter(Duration::millis(1), [] {});
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace lidc::sim
