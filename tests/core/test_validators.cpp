#include "core/validators.hpp"

#include <gtest/gtest.h>

namespace lidc::core {
namespace {

ComputeRequest blastRequest(const std::string& srrId) {
  ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  if (!srrId.empty()) request.params["srr_id"] = srrId;
  return request;
}

TEST(SrrIdTest, AcceptsPaperAccessions) {
  EXPECT_TRUE(isValidSrrId("SRR2931415"));
  EXPECT_TRUE(isValidSrrId("SRR5139395"));
  EXPECT_TRUE(isValidSrrId("SRR123456"));
}

TEST(SrrIdTest, RejectsMalformed) {
  EXPECT_FALSE(isValidSrrId(""));
  EXPECT_FALSE(isValidSrrId("SRR"));
  EXPECT_FALSE(isValidSrrId("SRX2931415"));   // wrong prefix
  EXPECT_FALSE(isValidSrrId("srr2931415"));   // case-sensitive
  EXPECT_FALSE(isValidSrrId("SRR29314AB"));   // non-digits
  EXPECT_FALSE(isValidSrrId("SRR12345"));     // too short
  EXPECT_FALSE(isValidSrrId("SRR1234567890")); // too long
}

TEST(ValidatorTest, BlastValidatorHappyPath) {
  const auto validator = makeBlastValidator();
  EXPECT_TRUE(validator(blastRequest("SRR2931415")).ok());
}

TEST(ValidatorTest, BlastValidatorRequiresSrrId) {
  const auto validator = makeBlastValidator();
  EXPECT_EQ(validator(blastRequest("")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(validator(blastRequest("garbage")).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidatorTest, BlastValidatorEnforcesMinimumResources) {
  const auto validator = makeBlastValidator();
  auto lowCpu = blastRequest("SRR2931415");
  lowCpu.cpu = MilliCpu(500);
  EXPECT_FALSE(validator(lowCpu).ok());
  auto lowMem = blastRequest("SRR2931415");
  lowMem.memory = ByteSize::fromMiB(512);
  EXPECT_FALSE(validator(lowMem).ok());
}

TEST(ValidatorTest, CompressionValidatorHasDifferentRules) {
  // SIV-B: the compression tool does not need SRR ids; it has its own
  // checks.
  const auto validator = makeCompressionValidator();
  ComputeRequest request;
  request.app = "compress";
  EXPECT_FALSE(validator(request).ok());  // needs input
  request.datasets.push_back("some-file");
  EXPECT_TRUE(validator(request).ok());
  ComputeRequest viaParam;
  viaParam.app = "compress";
  viaParam.params["input"] = "x";
  EXPECT_TRUE(validator(viaParam).ok());
}

TEST(ValidatorRegistryTest, DispatchesByApp) {
  ValidatorRegistry registry;
  registry.add("BLAST", makeBlastValidator());
  registry.add("compress", makeCompressionValidator());
  EXPECT_TRUE(registry.has("BLAST"));
  EXPECT_FALSE(registry.has("other"));

  EXPECT_FALSE(registry.validate(blastRequest("")).ok());
  // Unregistered apps pass by default (validation is opt-in per app).
  ComputeRequest unknown;
  unknown.app = "unregistered";
  EXPECT_TRUE(registry.validate(unknown).ok());
}

TEST(ValidatorRegistryTest, RemoveAndReplace) {
  ValidatorRegistry registry;
  registry.add("X", [](const ComputeRequest&) { return Status::Internal("v1"); });
  registry.add("X", [](const ComputeRequest&) { return Status::Internal("v2"); });
  ComputeRequest request;
  request.app = "X";
  EXPECT_EQ(registry.validate(request).message(), "v2");
  registry.remove("X");
  EXPECT_TRUE(registry.validate(request).ok());
}

}  // namespace
}  // namespace lidc::core
