// Data replication: a freshly joined cluster stages datasets over NDN
// from whichever lake holds them, then serves compute on them locally.
#include "core/replication.hpp"

#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc::core {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    catalog_ = std::make_unique<genomics::DatasetCatalog>(0.05);

    seeded_ = &addCluster("seeded", 40);
    seeded_->loadGenomicsDatasets(*catalog_);

    fresh_ = &addCluster("fresh", 5);
    // note: fresh_ deliberately has NO datasets loaded; it does get the
    // magic-blast image so it *could* run BLAST if it had the data.
    genomics::installMagicBlast(fresh_->cluster(), fresh_->store(), *catalog_);
    // The fresh node joined after "seeded" was announced; refresh so it
    // learns routes to its peers' lakes.
    overlay_->refreshAnnouncements();

    client_ = std::make_unique<LidcClient>(
        *overlay_->topology().node("client-host"), "user");
  }

  ComputeCluster& addCluster(const std::string& name, int linkMs) {
    ComputeClusterConfig config;
    config.name = name;
    auto& cluster = overlay_->addCluster(config);
    overlay_->connect("client-host", name,
                      net::LinkParams{sim::Duration::millis(linkMs)});
    overlay_->announceCluster(name);
    return cluster;
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
  std::unique_ptr<genomics::DatasetCatalog> catalog_;
  ComputeCluster* seeded_ = nullptr;
  ComputeCluster* fresh_ = nullptr;
  std::unique_ptr<LidcClient> client_;
};

TEST_F(ReplicationTest, ReplicatesObjectOverNdn) {
  DataReplicator replicator(*fresh_);
  const ndn::Name object("/ndn/k8s/data/human-ref");
  ASSERT_FALSE(fresh_->store().contains(object));

  std::optional<Status> done;
  replicator.replicate(object, [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok()) << *done;
  EXPECT_TRUE(fresh_->store().contains(object));
  // Byte-identical copies.
  EXPECT_EQ(*fresh_->store().get(object), *seeded_->store().get(object));
  EXPECT_EQ(replicator.objectsReplicated(), 1u);
  EXPECT_GT(replicator.bytesReplicated(), 0u);
}

TEST_F(ReplicationTest, AlreadyPresentIsNoop) {
  DataReplicator replicator(*fresh_);
  ASSERT_TRUE(fresh_->store().putText(ndn::Name("/ndn/k8s/data/x"), "v").ok());
  std::optional<Status> done;
  replicator.replicate(ndn::Name("/ndn/k8s/data/x"), [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok());
  EXPECT_EQ(replicator.objectsReplicated(), 0u);
}

TEST_F(ReplicationTest, MissingObjectReportsError) {
  DataReplicator replicator(*fresh_);
  std::optional<Status> done;
  replicator.replicate(ndn::Name("/ndn/k8s/data/ghost"),
                       [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->ok());
}

TEST_F(ReplicationTest, BatchReplicationReportsOnce) {
  DataReplicator replicator(*fresh_);
  std::vector<ndn::Name> objects{
      ndn::Name("/ndn/k8s/data/human-ref"),
      ndn::Name("/ndn/k8s/data/SRR2931415"),
      ndn::Name("/ndn/k8s/data/SRR5139395"),
  };
  int callbacks = 0;
  Status final;
  replicator.replicateAll(objects, [&](Status s) {
    ++callbacks;
    final = s;
  });
  sim_.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(final.ok()) << final;
  EXPECT_EQ(replicator.objectsReplicated(), 3u);
}

TEST_F(ReplicationTest, MixedBatchFirstErrorWinsAndRestStillReplicate) {
  DataReplicator replicator(*fresh_);
  // One doomed object in the middle: the batch must still stage the
  // other two, and the single callback must carry the first error.
  std::vector<ndn::Name> objects{
      ndn::Name("/ndn/k8s/data/human-ref"),
      ndn::Name("/ndn/k8s/data/ghost"),
      ndn::Name("/ndn/k8s/data/SRR2931415"),
  };
  int callbacks = 0;
  Status final = Status::Ok();
  replicator.replicateAll(objects, [&](Status s) {
    ++callbacks;
    final = s;
  });
  sim_.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(final.ok());
  // The failure did not abort the rest of the batch.
  EXPECT_EQ(replicator.objectsReplicated(), 2u);
  EXPECT_TRUE(fresh_->store().contains(ndn::Name("/ndn/k8s/data/human-ref")));
  EXPECT_TRUE(fresh_->store().contains(ndn::Name("/ndn/k8s/data/SRR2931415")));
}

TEST_F(ReplicationTest, WrapperStaysInParityWithTransferScheduler) {
  // DataReplicator is a thin wrapper over the replica plane's
  // TransferScheduler; the legacy accessors and the scheduler's own
  // accounting must agree exactly.
  DataReplicator replicator(*fresh_);
  ASSERT_TRUE(
      fresh_->store().putText(ndn::Name("/ndn/k8s/data/local"), "here").ok());

  std::optional<Status> done;
  replicator.replicateAll({ndn::Name("/ndn/k8s/data/human-ref"),
                           ndn::Name("/ndn/k8s/data/SRR2931415"),
                           ndn::Name("/ndn/k8s/data/local")},
                          [&](Status s) { done = s; });
  sim_.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok()) << *done;

  const replica::TransferScheduler& scheduler = replicator.scheduler();
  EXPECT_EQ(replicator.objectsReplicated(), 2u);
  EXPECT_EQ(replicator.objectsReplicated(), scheduler.staged());
  EXPECT_EQ(replicator.bytesReplicated(), scheduler.bytesMoved());
  EXPECT_GT(replicator.bytesReplicated(), 0u);
  // The already-present object was a wrapper-level no-op, not a staging
  // queue entry: the scheduler never saw it.
  EXPECT_EQ(scheduler.localHits(), 0u);
  EXPECT_EQ(scheduler.failures(), 0u);
  // The staging queue's deterministic trace narrates both transfers.
  EXPECT_NE(scheduler.eventLog().find("done /ndn/k8s/data/human-ref"),
            std::string::npos);
  EXPECT_NE(scheduler.eventLog().find("done /ndn/k8s/data/SRR2931415"),
            std::string::npos);
}

TEST_F(ReplicationTest, TelemetryMirrorsLegacyCounters) {
  DataReplicator replicator(*fresh_);
  telemetry::MetricsRegistry registry;
  replicator.attachTelemetry(registry);

  replicator.replicateAll({ndn::Name("/ndn/k8s/data/human-ref"),
                           ndn::Name("/ndn/k8s/data/SRR2931415")},
                          [](Status s) { ASSERT_TRUE(s.ok()) << s; });
  sim_.run();

  // Parity: the registry view equals the legacy accessors, both after
  // traffic and on a later idle snapshot.
  const auto flat = registry.flatten("lidc_replicator");
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat.at("lidc_replicator_objects_total{cluster=\"fresh\"}"),
            static_cast<double>(replicator.objectsReplicated()));
  EXPECT_EQ(flat.at("lidc_replicator_bytes_total{cluster=\"fresh\"}"),
            static_cast<double>(replicator.bytesReplicated()));
  EXPECT_EQ(replicator.objectsReplicated(), 2u);
}

TEST_F(ReplicationTest, FreshClusterRunsBlastAfterStaging) {
  // Stage the reference + rice sample into the fresh (nearest) cluster.
  DataReplicator replicator(*fresh_);
  replicator.replicateAll({ndn::Name("/ndn/k8s/data/human-ref"),
                           ndn::Name("/ndn/k8s/data/SRR2931415")},
                          [](Status s) { ASSERT_TRUE(s.ok()) << s; });
  sim_.run();

  ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";

  std::optional<JobOutcome> outcome;
  client_->runToCompletion(request, [&](Result<JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  // Nearest cluster (fresh, 5 ms) now serves the job with its staged data.
  EXPECT_EQ(outcome->finalStatus.cluster, "fresh");
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
}

}  // namespace
}  // namespace lidc::core
