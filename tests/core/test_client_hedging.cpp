// Hedged submits and the progress watchdog (gray-failure defenses in
// the client). A hedge is a second submit leg with a fresh request id,
// fired when the primary's ack is slower than the learned p-quantile;
// the first valid answer wins the race and the loser is cancelled —
// never double-counted as both won and cancelled. The watchdog turns
// "admitted but Pending forever" (a gray gateway) into a failure the
// failover/breaker machinery can act on.
#include <gtest/gtest.h>

#include <optional>

#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "net/topology.hpp"

namespace lidc {
namespace {

core::ComputeRequest sleepRequest() {
  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  return request;
}

/// One cluster behind a configurable access link.
struct HedgeWorld {
  HedgeWorld(core::ClientOptions options, net::LinkParams linkParams,
             std::uint64_t seed = 7)
      : overlay(sim) {
    overlay.addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "solo";
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    cc = &overlay.addCluster(config);
    cc->cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(1);
      return result;
    });
    cc->gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", "solo", linkParams);
    overlay.announceCluster("solo");
    link = overlay.topology().linkBetween("client-host", "solo");
    client = std::make_unique<core::LidcClient>(
        *overlay.topology().node("client-host"), "user", options, seed);
  }

  sim::Simulator sim;
  core::ClusterOverlay overlay;
  core::ComputeCluster* cc = nullptr;
  net::Link* link = nullptr;
  std::unique_ptr<core::LidcClient> client;
};

TEST(ClientHedgingTest, SlowAckFiresHedgeAndLoserIsCancelledNotWon) {
  core::ClientOptions options;
  options.enableHedging = true;
  options.hedgeDelayFloor = sim::Duration::millis(500);
  // 400 ms each way: the primary's ack lands at ~800 ms, after the
  // hedge timer — both legs race, the primary (sent first) wins.
  HedgeWorld world(options, net::LinkParams{sim::Duration::millis(400)});

  bool submitted = false;
  world.client->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    submitted = true;
  });
  world.sim.run();

  EXPECT_TRUE(submitted);
  EXPECT_EQ(world.client->hedgesIssued(), 1u);
  EXPECT_EQ(world.client->hedgesWon(), 0u);      // primary won the race
  EXPECT_EQ(world.client->hedgesCancelled(), 1u);  // loser ack arrived late
  // Two legs, no retries: exactly two submit attempts in the log.
  EXPECT_EQ(world.client->submitAttemptLog().size(), 2u);
}

TEST(ClientHedgingTest, HedgeWinsWhenPrimaryInterestIsLost) {
  core::ClientOptions options;
  options.enableHedging = true;
  options.hedgeDelayFloor = sim::Duration::millis(500);
  // Start with a fully lossy link so the primary submit Interest
  // vanishes; heal the link before the hedge fires.
  net::LinkParams lossy{sim::Duration::millis(5)};
  lossy.lossRate = 1.0;
  HedgeWorld world(options, lossy);
  world.sim.scheduleAfter(sim::Duration::millis(100), [&] {
    world.link->setParams(net::LinkParams{sim::Duration::millis(5)});
  });

  std::optional<core::SubmitResult> result;
  world.client->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    result = *r;
  });
  world.sim.run();

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(world.client->hedgesIssued(), 1u);
  EXPECT_EQ(world.client->hedgesWon(), 1u);
  EXPECT_EQ(world.client->hedgesCancelled(), 0u);  // the primary never answered
  // The hedge rescued the attempt well before the primary's lifetime
  // would have burned a retry.
  EXPECT_EQ(world.client->submitAttemptLog().size(), 2u);
  // A hedge can never be both won and cancelled.
  EXPECT_LE(world.client->hedgesWon() + world.client->hedgesCancelled(),
            world.client->hedgesIssued());
}

TEST(ClientHedgingTest, HedgingOffIssuesNoHedges) {
  core::ClientOptions options;  // enableHedging defaults to false
  HedgeWorld world(options, net::LinkParams{sim::Duration::millis(400)});
  bool submitted = false;
  world.client->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    submitted = r.ok();
  });
  world.sim.run();
  EXPECT_TRUE(submitted);
  EXPECT_EQ(world.client->hedgesIssued(), 0u);
  EXPECT_EQ(world.client->submitAttemptLog().size(), 1u);
}

// Gray gateway: jobs are admitted and then sit Pending forever while
// the gateway keeps answering polls. The progress watchdog converts
// that stall into a failure; with a breaker wired into placement the
// retry lands on the healthy cluster and the job completes.
TEST(ClientHedgingTest, WatchdogEscapesGrayGatewayAndFailsOver) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  auto addCluster = [&](const std::string& name, int linkMs) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(1);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", name,
                    net::LinkParams{sim::Duration::millis(linkMs)});
    overlay.announceCluster(name);
    return &cluster;
  };
  auto* gray = addCluster("gray", 5);    // nearest: routing prefers it
  auto* good = addCluster("good", 50);
  (void)good;
  gray->gateway().setGrayFailure(true);

  core::AdaptivePlacement placement(overlay);
  core::ClientOptions options;
  options.pendingProgressTtl = sim::Duration::seconds(5);
  options.statusPollInterval = sim::Duration::millis(500);
  options.maxFailovers = 2;
  options.enableCircuitBreaker = true;
  options.breaker.failureThreshold = 1;  // one watchdog strike trips it
  options.breakerListener = [&](const std::string& cluster,
                                core::BreakerState state) {
    placement.observeBreaker(cluster, state == core::BreakerState::kOpen);
    placement.tick();
  };
  core::LidcClient client(*overlay.topology().node("client-host"), "user",
                          options, /*seed=*/7);

  std::optional<core::JobOutcome> outcome;
  client.runToCompletion(sleepRequest(), [&](Result<core::JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  sim.run();

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
  EXPECT_EQ(outcome->finalStatus.cluster, "good");
  EXPECT_GE(outcome->failovers, 1);
  EXPECT_GE(client.watchdogTimeouts(), 1u);
  EXPECT_GE(client.breakerTrips(), 1u);
  EXPECT_GE(gray->gateway().counters().grayAdmitted, 1u);
  EXPECT_TRUE(placement.breakerOpen("gray"));
}

}  // namespace
}  // namespace lidc
