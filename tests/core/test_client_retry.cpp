// Client-side recovery machinery in isolation: exponential backoff with
// seeded jitter, the nack/timeout retry budget, the per-request deadline,
// and the poll-failure budget. The backoff schedule must be a pure
// function of the client seed — same seed, identical attempt times;
// different seed, a visibly different (jittered) schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

core::ComputeRequest sleepRequest() {
  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  return request;
}

/// A client alone on a routeless node: every submit is nacked kNoRoute
/// (retryable), so the attempt log records the full backoff schedule.
struct NoRouteWorld {
  NoRouteWorld(core::ClientOptions options, std::uint64_t seed) {
    forwarder = &topology.addNode("lonely-host");
    client = std::make_unique<core::LidcClient>(*forwarder, "user", options, seed);
  }

  /// Submits once and drains the simulation; returns the final error.
  Status submitAndDrain() {
    std::optional<Status> result;
    client->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
      ASSERT_FALSE(r.ok());
      result = r.status();
    });
    sim.run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(Status::Internal("no callback"));
  }

  sim::Simulator sim;
  net::Topology topology{sim};
  ndn::Forwarder* forwarder = nullptr;
  std::unique_ptr<core::LidcClient> client;
};

core::ClientOptions retryOptions() {
  core::ClientOptions options;
  options.maxSubmitRetries = 4;
  options.backoffInitial = sim::Duration::millis(100);
  options.backoffMultiplier = 2.0;
  options.backoffMax = sim::Duration::seconds(2);
  options.backoffJitter = 0.2;
  return options;
}

TEST(ClientRetryTest, RetryableNackExhaustsFullBudget) {
  NoRouteWorld world(retryOptions(), /*seed=*/7);
  const Status error = world.submitAndDrain();
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_NE(error.message().find("5 attempts"), std::string::npos) << error;
  // One initial attempt + maxSubmitRetries retries, all logged.
  EXPECT_EQ(world.client->submitAttemptLog().size(), 5u);
}

TEST(ClientRetryTest, BackoffGapsGrowExponentiallyWithinJitterBounds) {
  NoRouteWorld world(retryOptions(), /*seed=*/7);
  world.submitAndDrain();
  const auto& log = world.client->submitAttemptLog();
  ASSERT_EQ(log.size(), 5u);
  for (std::size_t i = 0; i + 1 < log.size(); ++i) {
    const double gap = (log[i + 1] - log[i]).toSeconds();
    const double base = std::min(0.1 * std::pow(2.0, static_cast<double>(i)), 2.0);
    // Gap = jittered backoff + nack round-trip (local, ~0).
    EXPECT_GE(gap, base * 0.8) << "attempt " << i;
    EXPECT_LE(gap, base * 1.2 + 0.01) << "attempt " << i;
  }
}

TEST(ClientRetryTest, SameSeedGivesIdenticalSchedule) {
  NoRouteWorld first(retryOptions(), /*seed=*/42);
  const Status errorA = first.submitAndDrain();
  NoRouteWorld second(retryOptions(), /*seed=*/42);
  const Status errorB = second.submitAndDrain();

  ASSERT_EQ(first.client->submitAttemptLog().size(),
            second.client->submitAttemptLog().size());
  for (std::size_t i = 0; i < first.client->submitAttemptLog().size(); ++i) {
    EXPECT_EQ(first.client->submitAttemptLog()[i].toNanos(),
              second.client->submitAttemptLog()[i].toNanos())
        << "attempt " << i;
  }
  EXPECT_EQ(errorA.code(), errorB.code());
  EXPECT_EQ(errorA.message(), errorB.message());
}

TEST(ClientRetryTest, DifferentSeedsJitterTheSchedule) {
  NoRouteWorld first(retryOptions(), /*seed=*/42);
  first.submitAndDrain();
  NoRouteWorld second(retryOptions(), /*seed=*/43);
  second.submitAndDrain();

  const auto& logA = first.client->submitAttemptLog();
  const auto& logB = second.client->submitAttemptLog();
  ASSERT_EQ(logA.size(), logB.size());
  bool anyDiffer = false;
  for (std::size_t i = 0; i < logA.size(); ++i) {
    if (logA[i].toNanos() != logB[i].toNanos()) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(ClientRetryTest, DeadlineCutsRetriesShort) {
  auto options = retryOptions();
  options.maxSubmitRetries = 50;  // the deadline must bind first
  options.deadline = sim::Duration::seconds(1);
  NoRouteWorld world(options, /*seed=*/7);

  const Status error = world.submitAndDrain();
  EXPECT_EQ(error.code(), StatusCode::kTimeout);
  EXPECT_NE(error.message().find("deadline"), std::string::npos) << error;
  EXPECT_LT(world.client->submitAttemptLog().size(), 10u);
  EXPECT_LE(world.sim.now().toNanos(), sim::Duration::seconds(2).toNanos());
}

/// One healthy single-node cluster; used for the poll-budget tests.
struct ClusterWorld {
  explicit ClusterWorld(core::ClientOptions options, std::uint64_t seed = 7)
      : overlay(sim) {
    overlay.addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "solo";
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    cc = &overlay.addCluster(config);
    cc->cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(30);
      return result;
    });
    cc->gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", "solo", net::LinkParams{sim::Duration::millis(5)});
    overlay.announceCluster("solo");
    client = std::make_unique<core::LidcClient>(
        *overlay.topology().node("client-host"), "user", options, seed);
  }

  sim::Simulator sim;
  core::ClusterOverlay overlay;
  core::ComputeCluster* cc = nullptr;
  std::unique_ptr<core::LidcClient> client;
};

TEST(ClientRetryTest, StatusNacksCountAgainstThePollBudget) {
  core::ClientOptions options;
  options.statusPollInterval = sim::Duration::millis(500);
  options.maxStatusPollFailures = 3;
  options.maxFailovers = 0;  // isolate the poll budget
  ClusterWorld world(options);

  std::optional<Status> error;
  sim::Time erroredAt;
  world.client->runToCompletion(sleepRequest(), [&](Result<core::JobOutcome> r) {
    ASSERT_FALSE(r.ok());
    error = r.status();
    erroredAt = world.sim.now();
  });
  // Let the submit land, then withdraw the cluster's routes: every later
  // status poll is nacked kNoRoute instead of timing out.
  world.sim.runUntil(world.sim.now() + sim::Duration::seconds(2));
  world.overlay.withdrawCluster("solo");
  world.sim.run();

  ASSERT_TRUE(error.has_value());
  // The nacked polls must burn the same budget as timed-out ones and
  // surface as the poll error, well before the 30 s job would finish.
  EXPECT_EQ(error->code(), StatusCode::kUnavailable);
  EXPECT_NE(error->message().find("status query nacked"), std::string::npos)
      << *error;
  EXPECT_LE(erroredAt.toNanos(), sim::Duration::seconds(10).toNanos());
}

TEST(ClientRetryTest, FailedJobWithoutFailoverBudgetReturnsFailedOutcome) {
  core::ClientOptions options;
  options.statusPollInterval = sim::Duration::millis(500);
  options.maxFailovers = 0;
  ClusterWorld world(options);
  world.cc->cluster().registerApp("boom", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(1);
    result.status = Status::Internal("segfault");
    return result;
  });
  world.cc->gateway().jobs().mapAppToImage("crashy", "boom");

  auto request = sleepRequest();
  request.app = "crashy";
  std::optional<core::JobOutcome> outcome;
  world.client->runToCompletion(request, [&](Result<core::JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  world.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kFailed);
  EXPECT_EQ(outcome->failovers, 0);
}

}  // namespace
}  // namespace lidc
