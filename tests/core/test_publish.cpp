// Client dataset publishing through /ndn/k8s/publish command Interests:
// digest-bound names, integrity rejection, size limits, and the
// publish -> compute -> retrieve loop the paper describes.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc::core {
namespace {

class PublishTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    ComputeClusterConfig config;
    config.name = "lake";
    cluster_ = &overlay_->addCluster(config);
    overlay_->connect("client-host", "lake",
                      net::LinkParams{sim::Duration::millis(8)});
    overlay_->announceCluster("lake");
    client_ = std::make_unique<LidcClient>(
        *overlay_->topology().node("client-host"), "publisher");
  }

  Result<ndn::Name> publish(const std::string& path,
                            std::vector<std::uint8_t> bytes) {
    std::optional<Result<ndn::Name>> out;
    client_->publishData(path, std::move(bytes),
                         [&](Result<ndn::Name> r) { out = std::move(r); });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
    return out.value_or(Status::Internal("no answer"));
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
  ComputeCluster* cluster_ = nullptr;
  std::unique_ptr<LidcClient> client_;
};

TEST_F(PublishTest, PublishStoresIntoTheLake) {
  const std::string text = "intermediate result bytes";
  auto stored = publish("intermediate/run-7", {text.begin(), text.end()});
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(stored->toUri(), "/ndn/k8s/data/intermediate/run-7");
  auto bytes = cluster_->store().get(*stored);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), text);
  EXPECT_EQ(cluster_->gateway().counters().publishesAccepted, 1u);
}

TEST_F(PublishTest, PublishedObjectIsRetrievableByAnyone) {
  const std::vector<std::uint8_t> blob(5'000, 0x5A);
  auto stored = publish("shared/blob", blob);
  ASSERT_TRUE(stored.ok());

  LidcClient other(*overlay_->topology().node("client-host"), "reader",
                   ClientOptions{}, 77);
  std::optional<std::vector<std::uint8_t>> fetched;
  other.fetchData(*stored, [&](Result<std::vector<std::uint8_t>> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    fetched = std::move(*r);
  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, blob);
}

TEST_F(PublishTest, EmptyPayloadRejected) {
  auto stored = publish("x", {});
  ASSERT_FALSE(stored.ok());
  EXPECT_NE(stored.status().message().find("payload"), std::string::npos);
  EXPECT_EQ(cluster_->gateway().counters().publishesRejected, 1u);
}

TEST_F(PublishTest, OversizedPayloadRejected) {
  // Shrink the limit on a second cluster and target it directly.
  ComputeClusterConfig config;
  config.name = "tiny";
  config.gateway.maxPublishBytes = 100;
  auto& tiny = overlay_->addCluster(config);
  overlay_->connect("client-host", "tiny",
                    net::LinkParams{sim::Duration::millis(2)});
  overlay_->announceCluster("tiny");

  auto stored = publish("big", std::vector<std::uint8_t>(500, 1));
  // The nearest gateway ("tiny", 2 ms) rejects with an error Data that
  // names the limit, counts the rejection, and stores nothing.
  ASSERT_FALSE(stored.ok());
  EXPECT_NE(stored.status().message().find("exceeds"), std::string::npos);
  EXPECT_NE(stored.status().message().find("100"), std::string::npos);
  EXPECT_EQ(tiny.gateway().counters().publishesRejected, 1u);
  EXPECT_EQ(tiny.gateway().counters().publishesAccepted, 0u);
  EXPECT_FALSE(tiny.store().contains(ndn::Name("/ndn/k8s/data/big")));
  // The far cluster never saw the Interest, so its counters stay clean.
  EXPECT_EQ(cluster_->gateway().counters().publishesRejected, 0u);
}

TEST_F(PublishTest, PayloadAtExactLimitAccepted) {
  ComputeClusterConfig config;
  config.name = "tiny";
  config.gateway.maxPublishBytes = 100;
  auto& tiny = overlay_->addCluster(config);
  overlay_->connect("client-host", "tiny",
                    net::LinkParams{sim::Duration::millis(2)});
  overlay_->announceCluster("tiny");

  // The limit is inclusive: exactly maxPublishBytes must be stored.
  auto stored = publish("fits", std::vector<std::uint8_t>(100, 7));
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(tiny.gateway().counters().publishesAccepted, 1u);
  EXPECT_EQ(tiny.gateway().counters().publishesRejected, 0u);
  auto bytes = tiny.store().get(*stored);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), 100u);
}

TEST_F(PublishTest, TamperedDigestRejected) {
  // Hand-craft a publish Interest whose digest does not match.
  auto face = std::make_shared<ndn::AppFace>(
      "app://raw", sim_, 5);
  overlay_->topology().node("client-host")->addFace(face);
  ndn::Name name = kPublishPrefix;
  name.append("evil").append("sha=12345");
  ndn::Interest interest(name);
  interest.setMustBeFresh(true);
  interest.setApplicationParameters("payload");

  std::optional<std::string> error;
  face->expressInterest(interest,
                        [&](const ndn::Interest&, const ndn::Data& data) {
                          const KvMap fields = decodeKv(data.contentAsString());
                          if (fields.count("error")) error = fields.at("error");
                        });
  sim_.run();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("digest"), std::string::npos);
  EXPECT_FALSE(cluster_->store().contains(ndn::Name("/ndn/k8s/data/evil")));
}

TEST_F(PublishTest, PublishThenComputeOnIt) {
  // The full loop: publish a dataset, run the compression app on it,
  // retrieve the compressed result.
  std::vector<std::uint8_t> dataset(20'000);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset[i] = static_cast<std::uint8_t>(i % 5);
  }
  auto stored = publish("uploads/mydata", dataset);
  ASSERT_TRUE(stored.ok()) << stored.status();

  ComputeRequest request;
  request.app = "compress";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(1);
  request.params["input"] = "uploads/mydata";

  std::optional<JobOutcome> outcome;
  client_->runToCompletion(request, [&](Result<JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
  EXPECT_TRUE(
      cluster_->store().contains(ndn::Name(outcome->finalStatus.resultPath)));
}

}  // namespace
}  // namespace lidc::core
