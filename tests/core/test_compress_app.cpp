// The SIV-B compression application: real RLE round trips, data-lake
// I/O, and the per-application runtime contrast with Magic-BLAST
// (compression scales with CPUs; BLAST does not).
#include "apps/compress_app.hpp"

#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace lidc::apps {
namespace {

TEST(RleTest, RoundTripsArbitraryBytes) {
  Rng rng(3);
  std::vector<std::uint8_t> input(10'000);
  for (auto& byte : input) byte = static_cast<std::uint8_t>(rng.uniform(7));
  const auto compressed = rleCompress(input);
  auto decompressed = rleDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, input);
}

TEST(RleTest, CompressesRuns) {
  const std::vector<std::uint8_t> runs(4'000, 0x41);
  const auto compressed = rleCompress(runs);
  EXPECT_LT(compressed.size(), runs.size() / 50);
  auto decompressed = rleDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, runs);
}

TEST(RleTest, EmptyInput) {
  EXPECT_TRUE(rleCompress({}).empty());
  auto decompressed = rleDecompress({});
  ASSERT_TRUE(decompressed.ok());
  EXPECT_TRUE(decompressed->empty());
}

TEST(RleTest, LongRunsSplitAt255) {
  const std::vector<std::uint8_t> longRun(1'000, 0x7);
  const auto compressed = rleCompress(longRun);
  EXPECT_EQ(compressed.size(), 2u * ((1'000 + 254) / 255));
  auto decompressed = rleDecompress(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(decompressed->size(), 1'000u);
}

TEST(RleTest, DecompressRejectsMalformed) {
  EXPECT_FALSE(rleDecompress({1}).ok());            // odd length
  EXPECT_FALSE(rleDecompress({0, 0x41}).ok());      // zero run
}

class CompressAppTest : public ::testing::Test {
 protected:
  CompressAppTest() : pvc_("pvc", ByteSize::fromMiB(64)), store_(pvc_) {
    std::vector<std::uint8_t> blob(512 * 1024);
    Rng rng(9);
    for (std::size_t i = 0; i < blob.size(); ++i) {
      blob[i] = static_cast<std::uint8_t>(rng.uniform(4));  // compressible-ish
    }
    EXPECT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/archive"), blob).ok());
    runner_ = makeCompressRunner(store_);
  }

  k8s::AppResult run(std::map<std::string, std::string> args,
                     std::uint64_t cores = 1) {
    k8s::JobSpec spec;
    spec.app = "compress";
    spec.requests = k8s::Resources{MilliCpu::fromCores(cores), ByteSize::fromGiB(1)};
    spec.args = std::move(args);
    k8s::AppContext context{spec, &pvc_, rng_};
    return runner_(context);
  }

  k8s::PersistentVolumeClaim pvc_;
  datalake::ObjectStore store_;
  Rng rng_{1};
  k8s::AppRunner runner_;
};

TEST_F(CompressAppTest, CompressesIntoDataLake) {
  const auto result = run({{"input", "archive"}});
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.resultPath, "/ndn/k8s/data/results/archive.rle");
  ASSERT_TRUE(store_.contains(ndn::Name(result.resultPath)));
  // Output round-trips back to the original.
  auto compressed = store_.get(ndn::Name(result.resultPath));
  auto original = store_.get(ndn::Name("/ndn/k8s/data/archive"));
  auto decompressed = rleDecompress(*compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, *original);
}

TEST_F(CompressAppTest, DatasetArgAlsoAccepted) {
  const auto result = run({{"dataset0", "archive"}});
  EXPECT_TRUE(result.status.ok());
}

TEST_F(CompressAppTest, MissingInputRejected) {
  EXPECT_EQ(run({}).status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run({{"input", "ghost"}}).status.code(), StatusCode::kNotFound);
}

TEST_F(CompressAppTest, CustomOutputPath) {
  const auto result = run({{"input", "archive"}, {"out", "results/z"}});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.resultPath, "/ndn/k8s/data/results/z");
}

TEST_F(CompressAppTest, RuntimeScalesWithCpusUnlikeBlast) {
  const double oneCore = run({{"input", "archive"}}, 1).runtime.toSeconds();
  const double fourCores = run({{"input", "archive"}}, 4).runtime.toSeconds();
  // Near-linear scaling: 4 cores => ~3.7x effective.
  EXPECT_GT(oneCore / fourCores, 3.0);
}

}  // namespace
}  // namespace lidc::apps
