// Multi-cluster overlay behaviour: location-independent placement,
// nearest-cluster selection, capacity failover, cluster churn, and
// outage recovery — the paper's core claims (SI, SII).
#include "core/overlay.hpp"

#include <gtest/gtest.h>

#include "core/client.hpp"

namespace lidc::core {
namespace {

class OverlayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
  }

  /// Adds a cluster with a trivial "sleep" app and links it to the
  /// client host with the given latency.
  ComputeCluster& addSleepCluster(const std::string& name, double linkMs,
                                  std::uint64_t cores = 8) {
    ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(cores),
                                    ByteSize::fromGiB(16)};
    auto& cluster = overlay_->addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(30);
      result.resultPath = "/ndn/k8s/data/results/r";
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay_->connect("client-host", name,
                      net::LinkParams{sim::Duration::millis(linkMs)});
    overlay_->announceCluster(name);
    return cluster;
  }

  ComputeRequest sleepRequest(std::uint64_t cores = 1) {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(cores);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  LidcClient& client() {
    if (!client_) {
      client_ = std::make_unique<LidcClient>(
          *overlay_->topology().node("client-host"), "alice");
    }
    return *client_;
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
  std::unique_ptr<LidcClient> client_;
};

TEST_F(OverlayTest, NearestClusterWins) {
  addSleepCluster("near", 5);
  addSleepCluster("far", 80);
  std::string placedOn;
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    placedOn = r->cluster;
  });
  sim_.run();
  EXPECT_EQ(placedOn, "near");
}

TEST_F(OverlayTest, CapacityFailoverToFartherCluster) {
  addSleepCluster("near", 5, /*cores=*/2);
  addSleepCluster("far", 80, /*cores=*/8);
  // First job fills "near" (2 cores); second must fail over to "far".
  std::vector<std::string> placements;
  client().submit(sleepRequest(2), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    placements.push_back(r->cluster);
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  client().submit(sleepRequest(2), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    placements.push_back(r->cluster);
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_EQ(placements[0], "near");
  EXPECT_EQ(placements[1], "far");
}

TEST_F(OverlayTest, AllClustersFullIsReportedUnavailable) {
  addSleepCluster("only", 5, /*cores=*/1);
  std::optional<Status> failure;
  client().submit(sleepRequest(1), [](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok());
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  client().submit(sleepRequest(1), [&](Result<SubmitResult> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kUnavailable);
}

TEST_F(OverlayTest, NewClusterJoinsWithoutClientChanges) {
  addSleepCluster("first", 50);
  std::string placedOn;
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    placedOn = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  EXPECT_EQ(placedOn, "first");

  // A closer cluster joins at runtime — same client, same names.
  addSleepCluster("second", 5);
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    placedOn = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  EXPECT_EQ(placedOn, "second");
}

TEST_F(OverlayTest, WithdrawnClusterStopsReceivingJobs) {
  addSleepCluster("a", 5);
  addSleepCluster("b", 10);
  overlay_->withdrawCluster("a");
  std::string placedOn;
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    placedOn = r->cluster;
  });
  sim_.run();
  EXPECT_EQ(placedOn, "b");
}

TEST_F(OverlayTest, FailedClusterTrafficFailsOverAndRecovers) {
  addSleepCluster("primary", 5);
  addSleepCluster("backup", 40);

  overlay_->failCluster("primary");
  std::string placedOn;
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    placedOn = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(placedOn, "backup");

  overlay_->recoverCluster("primary");
  client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    placedOn = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(placedOn, "primary");
}

TEST_F(OverlayTest, LoadBalanceStrategySpreadsJobs) {
  addSleepCluster("a", 10);
  addSleepCluster("b", 12);
  overlay_->setPlacementStrategy(PlacementStrategy::kLoadBalance);
  std::map<std::string, int> placements;
  for (int i = 0; i < 30; ++i) {
    client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
      if (r.ok()) ++placements[r->cluster];
    });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(40));
  }
  EXPECT_GT(placements["a"], 3);
  EXPECT_GT(placements["b"], 3);
}

TEST_F(OverlayTest, RoundRobinAlternatesClusters) {
  addSleepCluster("a", 10);
  addSleepCluster("b", 10);
  overlay_->setPlacementStrategy(PlacementStrategy::kRoundRobin);
  std::map<std::string, int> placements;
  for (int i = 0; i < 10; ++i) {
    client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
      if (r.ok()) ++placements[r->cluster];
    });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(40));
  }
  EXPECT_EQ(placements["a"], 5);
  EXPECT_EQ(placements["b"], 5);
}

TEST_F(OverlayTest, ParsePlacementStrategyNames) {
  EXPECT_EQ(parsePlacementStrategy("best-route"), PlacementStrategy::kBestRoute);
  EXPECT_EQ(parsePlacementStrategy("load-balance"),
            PlacementStrategy::kLoadBalance);
  EXPECT_EQ(parsePlacementStrategy("multicast"), PlacementStrategy::kMulticast);
  EXPECT_EQ(parsePlacementStrategy("round-robin"), PlacementStrategy::kRoundRobin);
  EXPECT_EQ(parsePlacementStrategy("asf"), PlacementStrategy::kAsf);
  EXPECT_FALSE(parsePlacementStrategy("bogus").has_value());
}

TEST_F(OverlayTest, AsfStrategyPlacesJobs) {
  addSleepCluster("a", 10);
  addSleepCluster("b", 30);
  overlay_->setPlacementStrategy(PlacementStrategy::kAsf);
  int placed = 0;
  for (int i = 0; i < 10; ++i) {
    client().submit(sleepRequest(), [&](Result<SubmitResult> r) {
      if (r.ok()) ++placed;
    });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(40));
  }
  EXPECT_EQ(placed, 10);
}

TEST_F(OverlayTest, ClusterNamesListed) {
  addSleepCluster("x", 5);
  addSleepCluster("y", 5);
  EXPECT_EQ(overlay_->clusterNames(), (std::vector<std::string>{"x", "y"}));
  EXPECT_NE(overlay_->cluster("x"), nullptr);
  EXPECT_EQ(overlay_->cluster("zz"), nullptr);
}

}  // namespace
}  // namespace lidc::core
