// Status-namespace GC: terminal jobs are evicted after the retention
// window — on contact (touch eviction) and by the reaper sweep while it
// is armed — so a long-lived gateway's status table and JobManager stop
// growing without bound. Also covers the migration-plane status alias:
// polls under a dead cluster's old name are answered with the local
// successor's status until the alias itself ages out.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/semantic_name.hpp"

namespace lidc::core {
namespace {

struct GcRig {
  explicit GcRig(sim::Duration retention, bool enableGc = true) {
    overlay = std::make_unique<ClusterOverlay>(sim);
    overlay->addNode("client-host");
    ComputeClusterConfig config;
    config.name = "east";
    config.gateway.enableStatusGc = enableGc;
    config.gateway.statusRetention = retention;
    cc = &overlay->addCluster(config);
    cc->cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(5);
      return result;
    });
    cc->gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->announceCluster("east");
    client = std::make_unique<LidcClient>(
        *overlay->topology().node("client-host"), "user");
  }

  /// Submits a sleeper and runs until the world is idle (job terminal).
  SubmitResult submitAndFinish() {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    std::optional<Result<SubmitResult>> ack;
    client->submit(request,
                   [&ack](Result<SubmitResult> r) { ack = std::move(r); });
    sim.run();
    EXPECT_TRUE(ack.has_value() && ack->ok());
    return ack->ok() ? **ack : SubmitResult{};
  }

  /// One status poll at the current sim time.
  Result<JobStatusSnapshot> poll(const ndn::Name& statusName) {
    std::optional<Result<JobStatusSnapshot>> out;
    client->queryStatus(statusName, [&out](Result<JobStatusSnapshot> r) {
      out = std::move(r);
    });
    sim.run();
    EXPECT_TRUE(out.has_value());
    return out.has_value() ? *out
                           : Result<JobStatusSnapshot>(
                                 Status::Internal("poll never settled"));
  }

  void advance(sim::Duration by) {
    sim.runUntil(sim.now() + by);
  }

  sim::Simulator sim;
  std::unique_ptr<ClusterOverlay> overlay;
  ComputeCluster* cc = nullptr;
  std::unique_ptr<LidcClient> client;
};

TEST(StatusGcTest, TerminalJobsServeWithinRetentionThenEvictOnTouch) {
  GcRig rig(sim::Duration::minutes(2));
  const SubmitResult ack = rig.submitAndFinish();
  const ndn::Name statusName(ack.statusName);

  // Within retention the terminal status is still served.
  auto fresh = rig.poll(statusName);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(fresh->state, k8s::JobState::kCompleted);
  EXPECT_EQ(rig.cc->gateway().counters().statusEvicted, 0u);

  // Past retention, the first contact evicts: the poll answers NotFound
  // and the job table entry is gone.
  rig.advance(sim::Duration::minutes(3));
  auto stale = rig.poll(statusName);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(rig.cc->gateway().counters().statusEvicted, 1u);
  EXPECT_FALSE(rig.cc->gateway().jobs().status(ack.jobId).ok());

  // Idempotent: later polls are plain misses, not double evictions.
  auto again = rig.poll(statusName);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(rig.cc->gateway().counters().statusEvicted, 1u);
}

TEST(StatusGcTest, ReaperSweepEvictsExpiredTerminalsWithoutContact) {
  GcRig rig(sim::Duration::minutes(2));
  const SubmitResult first = rig.submitAndFinish();

  // Age the first job past retention, then launch a second job: its
  // launch re-arms the reaper, whose sweep collects the expired
  // terminal entry with no poller ever touching it.
  rig.advance(sim::Duration::minutes(3));
  const SubmitResult second = rig.submitAndFinish();
  EXPECT_GE(rig.cc->gateway().counters().statusEvicted, 1u);
  EXPECT_FALSE(rig.cc->gateway().jobs().status(first.jobId).ok());
  // The younger terminal entry survived the sweep.
  auto survivor = rig.poll(ndn::Name(second.statusName));
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_EQ(survivor->state, k8s::JobState::kCompleted);
}

TEST(StatusGcTest, DisabledGcRetainsTerminalStatusIndefinitely) {
  GcRig rig(sim::Duration::minutes(2), /*enableGc=*/false);
  const SubmitResult ack = rig.submitAndFinish();
  rig.advance(sim::Duration::hours(2));
  auto old = rig.poll(ndn::Name(ack.statusName));
  ASSERT_TRUE(old.ok()) << old.status();
  EXPECT_EQ(old->state, k8s::JobState::kCompleted);
  EXPECT_EQ(rig.cc->gateway().counters().statusEvicted, 0u);
}

TEST(StatusGcTest, StatusAliasAnswersOldNameAndAgesOut) {
  GcRig rig(sim::Duration::minutes(2));
  const SubmitResult ack = rig.submitAndFinish();

  // A migration landed: the job that was "west-3" on the dead cluster
  // lives on here. The gateway registers the exact old-name route on
  // its own forwarder; the overlay-wide route is the coordinator's
  // routeInstaller's job, so steer the client-side route here too.
  rig.cc->gateway().addStatusAlias("west", "west-3", ack.jobId);
  rig.overlay->topology().installRoutesTo(makeStatusName("west", "west-3"),
                                          "east");

  auto aliased = rig.poll(makeStatusName("west", "west-3"));
  ASSERT_TRUE(aliased.ok()) << aliased.status();
  EXPECT_EQ(aliased->state, k8s::JobState::kCompleted);
  EXPECT_EQ(aliased->cluster, "east");
  EXPECT_EQ(rig.cc->gateway().counters().aliasServed, 1u);

  // Unknown foreign names still nack — the alias table is exact.
  auto unknown = rig.poll(makeStatusName("west", "west-9"));
  EXPECT_FALSE(unknown.ok());

  // Aliases age out with the same retention as terminal status. A new
  // launch arms the reaper, whose sweep drops the expired alias.
  rig.advance(sim::Duration::minutes(3));
  (void)rig.submitAndFinish();
  auto expired = rig.poll(makeStatusName("west", "west-3"));
  EXPECT_FALSE(expired.ok());
}

}  // namespace
}  // namespace lidc::core
