#include "core/semantic_name.hpp"
#include "core/wire_format.hpp"

#include <gtest/gtest.h>

namespace lidc::core {
namespace {

TEST(SemanticNameTest, PaperExampleParses) {
  // The exact example from Fig. 2 / SIII-C.
  auto request =
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"));
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->app, "BLAST");
  EXPECT_EQ(request->cpu, MilliCpu::fromCores(6));
  EXPECT_EQ(request->memory, ByteSize::fromGiB(4));
  EXPECT_TRUE(request->params.empty());
}

TEST(SemanticNameTest, RoundTripIsCanonical) {
  ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";
  const ndn::Name name = request.toName();
  EXPECT_EQ(name.toUri(),
            "/ndn/k8s/compute/app=BLAST&cpu=2&mem=4&srr_id=SRR2931415");
  auto parsed = ComputeRequest::fromName(name);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->toName(), name);
}

TEST(SemanticNameTest, KeyOrderDoesNotMatter) {
  auto a = ComputeRequest::fromName(
      ndn::Name("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"));
  auto b = ComputeRequest::fromName(
      ndn::Name("/ndn/k8s/compute/app=BLAST&cpu=6&mem=4"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Canonical re-encoding is identical: the cache-key property.
  EXPECT_EQ(a->toName(), b->toName());
}

TEST(SemanticNameTest, DatasetsAndExtraParams) {
  auto request = ComputeRequest::fromName(ndn::Name(
      "/ndn/k8s/compute/app=BLAST&cpu=2&mem=4&dataset=human-ref&dataset=rice&verbose=1"));
  ASSERT_TRUE(request.ok());
  ASSERT_EQ(request->datasets.size(), 2u);
  EXPECT_EQ(request->datasets[0], "human-ref");
  EXPECT_EQ(request->params.at("verbose"), "1");
}

TEST(SemanticNameTest, RequestIdSeparatesFromCanonicalName) {
  ComputeRequest request;
  request.app = "BLAST";
  request.requestId = "alice-17";
  const ndn::Name withId = request.toName();
  EXPECT_EQ(withId.size(), kComputePrefix.size() + 2);
  EXPECT_EQ(withId[withId.size() - 1].toString(), "req=alice-17");
  EXPECT_EQ(request.canonicalName(), ndn::Name("/ndn/k8s/compute/app=BLAST"));

  auto parsed = ComputeRequest::fromName(withId);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->requestId, "alice-17");
}

TEST(SemanticNameTest, FractionalAndMillicoreValues) {
  auto request = ComputeRequest::fromName(
      ndn::Name("/ndn/k8s/compute/app=X&cpu=500m&mem=1.5"));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->cpu.millicores(), 500u);
  EXPECT_EQ(request->memory.bytes(),
            static_cast<std::uint64_t>(1.5 * (1ULL << 30)));
}

TEST(SemanticNameTest, MissingAppRejected) {
  EXPECT_FALSE(
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/mem=4&cpu=6")).ok());
}

TEST(SemanticNameTest, MalformedPairsRejected) {
  EXPECT_FALSE(
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/app=BLAST&junk")).ok());
  EXPECT_FALSE(
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/app=&cpu=1")).ok());
  EXPECT_FALSE(
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/app=X&cpu=abc")).ok());
  EXPECT_FALSE(
      ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute/app=X&mem=zz")).ok());
}

TEST(SemanticNameTest, WrongPrefixRejected) {
  EXPECT_FALSE(ComputeRequest::fromName(ndn::Name("/ndn/k8s/data/app=X")).ok());
  EXPECT_FALSE(ComputeRequest::fromName(ndn::Name("/ndn/k8s/compute")).ok());
}

TEST(SemanticNameTest, StatusNames) {
  const ndn::Name name = makeStatusName("cluster-a", "job-cluster-a-7");
  EXPECT_EQ(name.toUri(), "/ndn/k8s/status/cluster-a/job-cluster-a-7");
  auto parsed = parseStatusName(name);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "cluster-a");
  EXPECT_EQ(parsed->second, "job-cluster-a-7");

  EXPECT_FALSE(parseStatusName(ndn::Name("/ndn/k8s/status/only-cluster")).ok());
  EXPECT_FALSE(parseStatusName(ndn::Name("/ndn/k8s/compute/x/y")).ok());
}

TEST(SemanticNameTest, DataNames) {
  EXPECT_EQ(makeDataName("results/job-1").toUri(), "/ndn/k8s/data/results/job-1");
  EXPECT_EQ(makeDataName("/leading/slash/").toUri(), "/ndn/k8s/data/leading/slash");
}

TEST(WireFormatTest, KvRoundTrip) {
  const KvMap fields{{"job_id", "j-1"}, {"state", "Running"}};
  const std::string encoded = encodeKv(fields);
  EXPECT_EQ(decodeKv(encoded), fields);
  EXPECT_EQ(encodeKv({}), "");
  EXPECT_TRUE(decodeKv("").empty());
  // Tolerates stray separators.
  EXPECT_EQ(decodeKv(";;a=1;;b=2;").size(), 2u);
  // Entries without '=' are skipped.
  EXPECT_EQ(decodeKv("a=1;junk;b=2").size(), 2u);
}

}  // namespace
}  // namespace lidc::core
