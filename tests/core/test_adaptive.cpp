// Adaptive placement (paper SVII "intelligence"): routes shift away
// from clusters with poor observed completion latency or high load.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "core/client.hpp"

namespace lidc::core {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
  }

  /// slowFactor multiplies the job runtime on that cluster (an
  /// overloaded / slow site).
  ComputeCluster& addCluster(const std::string& name, int linkMs,
                             double jobSeconds) {
    ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    auto& cluster = overlay_->addCluster(config);
    cluster.cluster().registerApp("sleeper", [jobSeconds](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(jobSeconds);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay_->connect("client-host", name,
                      net::LinkParams{sim::Duration::millis(linkMs)});
    overlay_->announceCluster(name);
    return cluster;
  }

  ComputeRequest sleepRequest() {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
};

TEST_F(AdaptiveTest, CostGrowsWithObservedLatency) {
  addCluster("slow", 5, 600.0);
  addCluster("fast", 50, 30.0);
  AdaptivePlacement adaptive(*overlay_);
  adaptive.recordCompletion("slow", sim::Duration::seconds(600));
  adaptive.recordCompletion("fast", sim::Duration::seconds(30));
  adaptive.tick();
  EXPECT_GT(adaptive.extraCostUs("slow"), adaptive.extraCostUs("fast"));
}

TEST_F(AdaptiveTest, HysteresisSuppressesSmallChanges) {
  addCluster("a", 5, 10.0);
  AdaptiveOptions options;
  options.updateThresholdUs = 1'000'000;  // huge threshold
  AdaptivePlacement adaptive(*overlay_, options);
  adaptive.recordCompletion("a", sim::Duration::seconds(1));
  EXPECT_EQ(adaptive.tick(), 0);
  EXPECT_EQ(adaptive.updatesApplied(), 0u);
}

TEST_F(AdaptiveTest, RoutesShiftAwayFromSlowCluster) {
  // "slow" is nearer (5 ms) but runs jobs 20x slower than "fast" (50 ms).
  // Static best-route would keep sending everything to "slow"; with
  // adaptive feedback, later jobs go to "fast".
  addCluster("slow", 5, 600.0);
  addCluster("fast", 50, 30.0);
  AdaptivePlacement adaptive(*overlay_);
  LidcClient client(*overlay_->topology().node("client-host"), "user");

  std::map<std::string, int> placements;
  for (int i = 0; i < 10; ++i) {
    client.runToCompletion(sleepRequest(), [&](Result<JobOutcome> outcome) {
      if (!outcome.ok()) return;
      ++placements[outcome->finalStatus.cluster];
      adaptive.recordCompletion(outcome->finalStatus.cluster,
                                outcome->totalLatency);
      adaptive.tick();
    });
    sim_.run();
  }
  // First job explores "slow"; once its 600 s completion is observed,
  // everything shifts to "fast".
  EXPECT_GE(placements["fast"], 8);
  EXPECT_LE(placements["slow"], 2);
  EXPECT_GT(adaptive.updatesApplied(), 0u);
}

TEST_F(AdaptiveTest, NetworkFedInfoDrivesLoadBias) {
  // The pure over-names mode: the adaptive layer learns load from
  // /ndn/k8s/info advertisements polled by a client, never touching the
  // cluster objects.
  auto& busy = addCluster("busy", 5, 50.0);
  addCluster("idle", 8, 50.0);
  k8s::PodSpec filler;
  filler.image = "filler";
  filler.requests = k8s::Resources{MilliCpu::fromCores(48), ByteSize::fromGiB(128)};
  (void)busy.cluster().createPod("ndnk8s", "filler", filler);

  LidcClient observer(*overlay_->topology().node("client-host"), "observer");
  AdaptiveOptions options;
  options.updateThresholdUs = 1'000;
  AdaptivePlacement adaptive(*overlay_, options);
  for (const char* name : {"busy", "idle"}) {
    observer.queryClusterInfo(name, [&](Result<ClusterInfo> info) {
      ASSERT_TRUE(info.ok()) << info.status();
      adaptive.observeInfo(*info);
    });
  }
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  adaptive.tick();
  EXPECT_GT(adaptive.extraCostUs("busy"), adaptive.extraCostUs("idle"));
}

TEST_F(AdaptiveTest, LoadBiasAvoidsBusyCluster) {
  auto& busy = addCluster("busy", 5, 50.0);
  addCluster("idle", 8, 50.0);
  // Fill 'busy' to 75% cpu without telling the adaptive layer anything
  // about latency — load alone should bias away once ticked.
  k8s::PodSpec filler;
  filler.image = "filler";
  filler.requests =
      k8s::Resources{MilliCpu::fromCores(48), ByteSize::fromGiB(128)};
  (void)busy.cluster().createPod("ndnk8s", "filler", filler);

  AdaptiveOptions options;
  options.updateThresholdUs = 1'000;
  AdaptivePlacement adaptive(*overlay_, options);
  adaptive.tick();
  EXPECT_GT(adaptive.extraCostUs("busy"), adaptive.extraCostUs("idle"));

  LidcClient client(*overlay_->topology().node("client-host"), "user");
  std::string placed;
  client.submit(sleepRequest(), [&](Result<SubmitResult> r) {
    if (r.ok()) placed = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(placed, "idle");
}

}  // namespace
}  // namespace lidc::core
