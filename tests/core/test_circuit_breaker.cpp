// Per-cluster circuit breaker (gray-failure defense): consecutive
// failures trip it open, the open window is seeded-jittered, half-open
// admits a bounded number of probes, and a probe verdict closes or
// re-opens it. Placement steers away from clusters whose breaker is
// open.
#include "core/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/adaptive.hpp"
#include "core/overlay.hpp"

namespace lidc::core {
namespace {

sim::Time at(double seconds) {
  return sim::Time{} + sim::Duration::seconds(seconds);
}

TEST(CircuitBreakerTest, StaysClosedBelowFailureThreshold) {
  BreakerOptions options;
  options.failureThreshold = 3;
  CircuitBreaker breaker(options);
  breaker.recordFailure(at(1));
  breaker.recordFailure(at(2));
  EXPECT_EQ(breaker.state(at(3)), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allowRequest(at(3)));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  BreakerOptions options;
  options.failureThreshold = 3;
  CircuitBreaker breaker(options);
  breaker.recordFailure(at(1));
  breaker.recordFailure(at(2));
  breaker.recordSuccess(at(3));  // streak broken
  breaker.recordFailure(at(4));
  breaker.recordFailure(at(5));
  EXPECT_EQ(breaker.state(at(6)), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TripsOpenAtThresholdAndRefusesRequests) {
  BreakerOptions options;
  options.failureThreshold = 3;
  options.openDuration = sim::Duration::seconds(10);
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) breaker.recordFailure(at(i));
  EXPECT_EQ(breaker.state(at(3)), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allowRequest(at(3)));
  EXPECT_FALSE(breaker.allowRequest(at(4)));
  EXPECT_EQ(breaker.rejected(), 2u);
}

TEST(CircuitBreakerTest, HalfOpensAfterWindowAndBoundsProbes) {
  BreakerOptions options;
  options.failureThreshold = 1;
  options.openDuration = sim::Duration::seconds(10);
  options.openJitter = 0.0;  // deterministic window for the assertion
  options.halfOpenProbes = 2;
  options.successesToClose = 2;
  CircuitBreaker breaker(options);
  breaker.recordFailure(at(0));
  EXPECT_EQ(breaker.state(at(5)), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(at(10)), BreakerState::kHalfOpen);
  // Exactly halfOpenProbes trial requests are admitted.
  EXPECT_TRUE(breaker.allowRequest(at(11)));
  EXPECT_TRUE(breaker.allowRequest(at(11)));
  EXPECT_FALSE(breaker.allowRequest(at(11)));
  // Both probes succeed -> closed again.
  breaker.recordSuccess(at(12));
  EXPECT_EQ(breaker.state(at(12)), BreakerState::kHalfOpen);
  breaker.recordSuccess(at(12));
  EXPECT_EQ(breaker.state(at(12)), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allowRequest(at(13)));
}

TEST(CircuitBreakerTest, ProbeFailureReopensImmediately) {
  BreakerOptions options;
  options.failureThreshold = 1;
  options.openDuration = sim::Duration::seconds(10);
  options.openJitter = 0.0;
  CircuitBreaker breaker(options);
  breaker.recordFailure(at(0));
  EXPECT_EQ(breaker.state(at(10)), BreakerState::kHalfOpen);
  ASSERT_TRUE(breaker.allowRequest(at(10)));
  breaker.recordFailure(at(11));
  EXPECT_EQ(breaker.state(at(11)), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allowRequest(at(12)));
}

TEST(CircuitBreakerTest, OpenWindowJitterIsSeededAndDeterministic) {
  BreakerOptions options;
  options.failureThreshold = 1;
  options.openDuration = sim::Duration::seconds(10);
  options.openJitter = 0.5;  // window in [10s, 15s)
  auto halfOpenTime = [&](std::uint64_t seed) {
    CircuitBreaker breaker(options, seed);
    breaker.recordFailure(at(0));
    // Scan simulated time for the open -> half-open edge.
    for (int ms = 0; ms <= 20'000; ++ms) {
      const sim::Time now = sim::Time{} + sim::Duration::millis(ms);
      if (breaker.state(now) == BreakerState::kHalfOpen) return ms;
    }
    return -1;
  };
  const int first = halfOpenTime(42);
  EXPECT_EQ(first, halfOpenTime(42));  // same seed, same window
  EXPECT_GE(first, 10'000);
  EXPECT_LE(first, 15'000);
  // A different seed draws a different jitter (for these two seeds).
  EXPECT_NE(first, halfOpenTime(43));
}

TEST(CircuitBreakerTest, ListenerSeesEveryTransitionInOrder) {
  BreakerOptions options;
  options.failureThreshold = 1;
  options.openDuration = sim::Duration::seconds(10);
  options.openJitter = 0.0;
  CircuitBreaker breaker(options);
  std::vector<BreakerState> transitions;
  breaker.setListener([&](BreakerState s) { transitions.push_back(s); });
  breaker.recordFailure(at(0));          // closed -> open
  (void)breaker.state(at(10));           // open -> half-open
  ASSERT_TRUE(breaker.allowRequest(at(10)));
  breaker.recordSuccess(at(11));         // half-open -> closed
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], BreakerState::kOpen);
  EXPECT_EQ(transitions[1], BreakerState::kHalfOpen);
  EXPECT_EQ(transitions[2], BreakerState::kClosed);
}

TEST(CircuitBreakerTest, BreakerStateNamesAreStable) {
  EXPECT_EQ(breakerStateName(BreakerState::kClosed), "closed");
  EXPECT_EQ(breakerStateName(BreakerState::kOpen), "open");
  EXPECT_EQ(breakerStateName(BreakerState::kHalfOpen), "half-open");
}

// An open breaker feeds placement: the cluster's compute route gets
// breakerCostUs added, so the named network steers new submissions to
// healthy clusters without any client-side cluster pinning.
TEST(CircuitBreakerTest, OpenBreakerRaisesPlacementCost) {
  sim::Simulator sim;
  ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  ComputeClusterConfig config;
  config.name = "gray";
  auto& cluster = overlay.addCluster(config);
  (void)cluster;
  overlay.connect("client-host", "gray",
                  net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("gray");

  AdaptivePlacement placement(overlay);
  EXPECT_FALSE(placement.breakerOpen("gray"));
  placement.observeBreaker("gray", true);
  EXPECT_TRUE(placement.breakerOpen("gray"));
  placement.tick();
  EXPECT_GE(placement.extraCostUs("gray"),
            static_cast<std::uint64_t>(AdaptiveOptions{}.breakerCostUs));
  // Breaker closing again removes the penalty.
  placement.observeBreaker("gray", false);
  placement.tick();
  EXPECT_LT(placement.extraCostUs("gray"),
            static_cast<std::uint64_t>(AdaptiveOptions{}.breakerCostUs));
}

}  // namespace
}  // namespace lidc::core
