// Multi-tenant isolation (the paper's multi-organizational setting):
// tenant= routes jobs into per-organization namespaces, ResourceQuotas
// cap each tenant per cluster, and exhausted quotas fail over to other
// clusters instead of erroring.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc::core {
namespace {

class TenancyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    cluster_ = &addCluster("main", 5);
    client_ = std::make_unique<LidcClient>(
        *overlay_->topology().node("client-host"), "user");
  }

  ComputeCluster& addCluster(const std::string& name, int linkMs) {
    ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(32), ByteSize::fromGiB(64)};
    auto& cluster = overlay_->addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(60);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay_->connect("client-host", name,
                      net::LinkParams{sim::Duration::millis(linkMs)});
    overlay_->announceCluster(name);
    return cluster;
  }

  ComputeRequest tenantRequest(const std::string& tenant,
                               std::uint64_t cores = 2) {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(cores);
    request.memory = ByteSize::fromGiB(2);
    if (!tenant.empty()) request.params["tenant"] = tenant;
    return request;
  }

  Result<SubmitResult> submit(const ComputeRequest& request) {
    std::optional<Result<SubmitResult>> out;
    client_->submit(request, [&](Result<SubmitResult> r) { out = std::move(r); });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
    return out.value_or(Status::Internal("no answer"));
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
  ComputeCluster* cluster_ = nullptr;
  std::unique_ptr<LidcClient> client_;
};

TEST_F(TenancyTest, TenantJobsLandInTenantNamespace) {
  auto ack = submit(tenantRequest("genomics-lab"));
  ASSERT_TRUE(ack.ok()) << ack.status();
  auto* job = cluster_->cluster().job("tenant-genomics-lab", ack->jobId);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(cluster_->cluster().job("ndnk8s", ack->jobId), nullptr);
  // Status queries still resolve across namespaces.
  std::optional<JobStatusSnapshot> status;
  client_->queryStatus(ndn::Name(ack->statusName),
                       [&](Result<JobStatusSnapshot> r) {
                         ASSERT_TRUE(r.ok()) << r.status();
                         status = *r;
                       });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  ASSERT_TRUE(status.has_value());
}

TEST_F(TenancyTest, TenantsAreIsolatedNamespaces) {
  auto a = submit(tenantRequest("lab-a"));
  auto b = submit(tenantRequest("lab-b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cluster_->cluster().jobsInNamespace("tenant-lab-a").size(), 1u);
  EXPECT_EQ(cluster_->cluster().jobsInNamespace("tenant-lab-b").size(), 1u);
}

TEST_F(TenancyTest, InvalidTenantNameRejected) {
  auto ack = submit(tenantRequest("Not/Valid"));
  ASSERT_FALSE(ack.ok());
  EXPECT_NE(ack.status().message().find("tenant"), std::string::npos);
}

TEST_F(TenancyTest, QuotaCapsATenant) {
  cluster_->cluster().setNamespaceQuota(
      "tenant-small", k8s::Resources{MilliCpu::fromCores(3), ByteSize::fromGiB(8)});
  ASSERT_TRUE(submit(tenantRequest("small", 2)).ok());
  // Second 2-core job would exceed the 3-core quota: rejected (nacked),
  // and with no other cluster the placement fails as unavailable.
  auto second = submit(tenantRequest("small", 2));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  // Other tenants are unaffected.
  EXPECT_TRUE(submit(tenantRequest("other", 2)).ok());
}

TEST_F(TenancyTest, QuotaExhaustionFailsOverToAnotherCluster) {
  addCluster("backup", 40);
  cluster_->cluster().setNamespaceQuota(
      "tenant-small", k8s::Resources{MilliCpu::fromCores(3), ByteSize::fromGiB(8)});
  ASSERT_TRUE(submit(tenantRequest("small", 2)).ok());
  auto second = submit(tenantRequest("small", 2));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->cluster, "backup");
}

TEST_F(TenancyTest, NamespaceUsageAccounting) {
  (void)submit(tenantRequest("lab-a", 2));
  (void)submit(tenantRequest("lab-a", 4));
  const auto usage = cluster_->cluster().namespaceUsage("tenant-lab-a");
  EXPECT_EQ(usage.cpu, MilliCpu::fromCores(6));
  EXPECT_FALSE(cluster_->cluster().namespaceQuota("tenant-lab-a").has_value());
}

}  // namespace
}  // namespace lidc::core
