// Gateway behaviour in isolation: a single forwarder hosting the
// gateway AppFace and a client AppFace — no network links, so these
// tests pinpoint the gateway logic itself (parsing, validation,
// admission control, dedup, result cache, status).
#include "core/gateway.hpp"

#include <gtest/gtest.h>

#include "core/wire_format.hpp"
#include "ndn/app_face.hpp"

namespace lidc::core {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : forwarder_("gw-node", sim_), cluster_("cluster-x", sim_) {
    cluster_.addNode("n0", k8s::Resources{MilliCpu::fromCores(4),
                                          ByteSize::fromGiB(8)});
    (void)cluster_.createPvc("datalake-pvc", ByteSize::fromGiB(1));
    cluster_.registerApp("sleeper", [](k8s::AppContext& context) {
      k8s::AppResult result;
      const auto it = context.spec.args.find("duration_s");
      const double seconds =
          it == context.spec.args.end() ? 60.0 : std::stod(it->second);
      result.runtime = sim::Duration::seconds(seconds);
      result.resultPath = "/ndn/k8s/data/results/out";
      result.outputBytes = 1234;
      return result;
    });

    ValidatorRegistry validators;
    validators.add("BLAST", makeBlastValidator());
    gateway_ = std::make_unique<Gateway>(forwarder_, cluster_, std::move(validators),
                                         options_);
    gateway_->jobs().mapAppToImage("sleep", "sleeper");

    client_ = std::make_shared<ndn::AppFace>("app://client", sim_, 77);
    forwarder_.addFace(client_);

    // These tests exercise the gateway's own dedup/result-cache logic;
    // disable the forwarder's Content Store so every Interest reaches
    // the gateway instead of being answered by the NDN cache.
    forwarder_.cs().setCapacity(0);
  }

  ComputeRequest sleepRequest(double seconds = 60.0, std::uint64_t cores = 1) {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(cores);
    request.memory = ByteSize::fromGiB(1);
    request.params["duration_s"] = std::to_string(seconds);
    return request;
  }

  /// Sends a compute Interest; returns the decoded ack fields.
  KvMap submit(const ComputeRequest& request) {
    KvMap fields;
    client_->expressInterest(ndn::Interest(request.toName()),
                             [&](const ndn::Interest&, const ndn::Data& data) {
                               fields = decodeKv(data.contentAsString());
                             });
    sim_.runUntil(sim_.now() + sim::Duration::millis(100));
    return fields;
  }

  sim::Simulator sim_;
  ndn::Forwarder forwarder_;
  k8s::Cluster cluster_;
  GatewayOptions options_;
  std::unique_ptr<Gateway> gateway_;
  std::shared_ptr<ndn::AppFace> client_;
};

TEST_F(GatewayTest, LaunchReturnsJobIdAndStatusName) {
  const KvMap ack = submit(sleepRequest());
  ASSERT_TRUE(ack.count("job_id"));
  EXPECT_EQ(ack.at("cluster"), "cluster-x");
  EXPECT_EQ(ack.at("status_name"),
            "/ndn/k8s/status/cluster-x/" + ack.at("job_id"));
  EXPECT_EQ(gateway_->counters().jobsLaunched, 1u);
}

TEST_F(GatewayTest, MalformedNameRejected) {
  KvMap fields;
  client_->expressInterest(
      ndn::Interest(ndn::Name("/ndn/k8s/compute/not-a-kv-pair")),
      [&](const ndn::Interest&, const ndn::Data& data) {
        fields = decodeKv(data.contentAsString());
      });
  sim_.runUntil(sim_.now() + sim::Duration::millis(100));
  EXPECT_TRUE(fields.count("error"));
  EXPECT_EQ(gateway_->counters().computeRejected, 1u);
}

TEST_F(GatewayTest, ValidatorRejectionReported) {
  ComputeRequest bad;
  bad.app = "BLAST";
  bad.cpu = MilliCpu::fromCores(2);
  bad.memory = ByteSize::fromGiB(4);
  bad.params["srr_id"] = "BOGUS";
  const KvMap ack = submit(bad);
  ASSERT_TRUE(ack.count("error"));
  EXPECT_NE(ack.at("error").find("SRR"), std::string::npos);
}

TEST_F(GatewayTest, CapacityExhaustionNacks) {
  // Cluster has 4 cores; a 16-core job cannot fit anywhere, ever.
  int nacks = 0;
  ComputeRequest huge = sleepRequest(10.0, /*cores=*/16);
  client_->expressInterest(
      ndn::Interest(huge.toName()), [](const ndn::Interest&, const ndn::Data&) {},
      [&](const ndn::Interest&, const ndn::Nack& nack) {
        ++nacks;
        EXPECT_EQ(nack.reason(), ndn::NackReason::kCongestion);
      });
  sim_.runUntil(sim_.now() + sim::Duration::millis(100));
  EXPECT_EQ(nacks, 1);
  EXPECT_EQ(gateway_->counters().capacityRejected, 1u);
}

TEST_F(GatewayTest, AdmissionControlCanBeDisabled) {
  gateway_->setAdmissionControl(false);
  const KvMap ack = submit(sleepRequest(10.0, /*cores=*/16));
  // Job object is created and stays Pending (no nack).
  EXPECT_TRUE(ack.count("job_id"));
  EXPECT_EQ(cluster_.pendingUnschedulable(), 1u);
}

TEST_F(GatewayTest, InFlightDedupJoinsSameJob) {
  // Two canonical (no request id) identical submissions: one job.
  const KvMap first = submit(sleepRequest());
  const KvMap second = submit(sleepRequest());
  ASSERT_TRUE(first.count("job_id"));
  ASSERT_TRUE(second.count("job_id"));
  EXPECT_EQ(first.at("job_id"), second.at("job_id"));
  EXPECT_TRUE(second.count("deduplicated"));
  EXPECT_EQ(gateway_->counters().jobsLaunched, 1u);
  EXPECT_EQ(gateway_->counters().inflightDedup, 1u);
}

TEST_F(GatewayTest, UniqueRequestIdsLaunchSeparateJobs) {
  ComputeRequest a = sleepRequest();
  a.requestId = "r1";
  ComputeRequest b = sleepRequest();
  b.requestId = "r2";
  const KvMap ackA = submit(a);
  const KvMap ackB = submit(b);
  EXPECT_NE(ackA.at("job_id"), ackB.at("job_id"));
  EXPECT_EQ(gateway_->counters().jobsLaunched, 2u);
}

TEST_F(GatewayTest, CompletedJobServedFromResultCache) {
  const KvMap first = submit(sleepRequest());
  ASSERT_TRUE(first.count("job_id"));
  sim_.run();  // job completes

  const KvMap second = submit(sleepRequest());
  ASSERT_TRUE(second.count("cached"));
  EXPECT_EQ(second.at("job_id"), first.at("job_id"));
  EXPECT_EQ(second.at("result"), "/ndn/k8s/data/results/out");
  EXPECT_EQ(second.at("output_bytes"), "1234");
  EXPECT_EQ(gateway_->counters().cacheHits, 1u);
  EXPECT_EQ(gateway_->counters().jobsLaunched, 1u);
}

TEST_F(GatewayTest, CacheDisabledAlwaysLaunches) {
  GatewayOptions noCache;
  noCache.enableResultCache = false;
  // Fresh world with caching off.
  sim::Simulator sim;
  ndn::Forwarder forwarder("gw2", sim);
  k8s::Cluster cluster("cluster-y", sim);
  cluster.addNode("n0", k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)});
  cluster.registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(1);
    return result;
  });
  Gateway gateway(forwarder, cluster, ValidatorRegistry{}, noCache);
  gateway.jobs().mapAppToImage("sleep", "sleeper");
  forwarder.cs().setCapacity(0);
  auto client = std::make_shared<ndn::AppFace>("app://c", sim, 3);
  forwarder.addFace(client);

  ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);

  std::vector<std::string> jobIds;
  for (int i = 0; i < 2; ++i) {
    client->expressInterest(ndn::Interest(request.toName()),
                            [&](const ndn::Interest&, const ndn::Data& data) {
                              jobIds.push_back(
                                  decodeKv(data.contentAsString()).at("job_id"));
                            });
    sim.run();  // complete each job fully
  }
  ASSERT_EQ(jobIds.size(), 2u);
  EXPECT_NE(jobIds[0], jobIds[1]);
  EXPECT_EQ(gateway.counters().jobsLaunched, 2u);
}

TEST_F(GatewayTest, StatusLifecycle) {
  const KvMap ack = submit(sleepRequest(100.0));
  const ndn::Name statusName(ack.at("status_name"));

  auto poll = [&]() {
    KvMap fields;
    ndn::Interest interest(statusName);
    interest.setMustBeFresh(true);
    client_->expressInterest(interest,
                             [&](const ndn::Interest&, const ndn::Data& data) {
                               fields = decodeKv(data.contentAsString());
                             });
    sim_.runUntil(sim_.now() + sim::Duration::millis(100));
    return fields;
  };

  // Immediately after submit: Pending (pod starting).
  EXPECT_EQ(poll().at("state"), "Pending");
  // After pod startup: Running.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  EXPECT_EQ(poll().at("state"), "Running");
  // After completion: Completed with result info.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(120));
  const KvMap done = poll();
  EXPECT_EQ(done.at("state"), "Completed");
  EXPECT_EQ(done.at("result"), "/ndn/k8s/data/results/out");
  EXPECT_TRUE(done.count("runtime_s"));
}

TEST_F(GatewayTest, UnknownJobStatusIsError) {
  KvMap fields;
  client_->expressInterest(
      ndn::Interest(makeStatusName("cluster-x", "job-ghost")),
      [&](const ndn::Interest&, const ndn::Data& data) {
        fields = decodeKv(data.contentAsString());
      });
  sim_.runUntil(sim_.now() + sim::Duration::millis(100));
  EXPECT_TRUE(fields.count("error"));
}

TEST_F(GatewayTest, StatusForOtherClusterNacked) {
  int nacks = 0;
  client_->expressInterest(
      ndn::Interest(makeStatusName("cluster-x", "j") /*valid*/),
      [](const ndn::Interest&, const ndn::Data&) {}, nullptr, nullptr);
  // A name under a different cluster's status prefix has no route at all
  // on this forwarder; but if it reaches the gateway face, it is nacked.
  ndn::Name foreign = kStatusPrefix;
  foreign.append("cluster-z").append("job-1");
  forwarder_.registerPrefix(foreign.prefix(kStatusPrefix.size() + 1),
                            gateway_->faceId());
  client_->expressInterest(
      ndn::Interest(foreign), [](const ndn::Interest&, const ndn::Data&) {},
      [&](const ndn::Interest&, const ndn::Nack&) { ++nacks; });
  sim_.runUntil(sim_.now() + sim::Duration::millis(100));
  EXPECT_EQ(nacks, 1);
}

TEST_F(GatewayTest, FailedJobReportsError) {
  cluster_.registerApp("failer", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(5);
    result.status = Status::Internal("segfault in pod");
    return result;
  });
  ComputeRequest request;
  request.app = "failer";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  const KvMap ack = submit(request);
  ASSERT_TRUE(ack.count("status_name"));
  sim_.run();

  KvMap fields;
  ndn::Interest interest{ndn::Name(ack.at("status_name"))};
  interest.setMustBeFresh(true);
  client_->expressInterest(interest,
                           [&](const ndn::Interest&, const ndn::Data& data) {
                             fields = decodeKv(data.contentAsString());
                           });
  sim_.runUntil(sim_.now() + sim::Duration::millis(100));
  EXPECT_EQ(fields.at("state"), "Failed");
  EXPECT_NE(fields.at("error").find("segfault"), std::string::npos);
}

TEST_F(GatewayTest, FailedJobsAreNotCached) {
  cluster_.registerApp("failer", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(1);
    result.status = Status::Internal("boom");
    return result;
  });
  ComputeRequest request;
  request.app = "failer";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  (void)submit(request);
  sim_.run();
  // A repeat launches a fresh job rather than serving the failure.
  const KvMap again = submit(request);
  EXPECT_FALSE(again.count("cached"));
  EXPECT_EQ(gateway_->counters().jobsLaunched, 2u);
}

}  // namespace
}  // namespace lidc::core
