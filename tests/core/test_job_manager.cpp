#include "core/job_manager.hpp"

#include <gtest/gtest.h>

namespace lidc::core {
namespace {

class JobManagerTest : public ::testing::Test {
 protected:
  JobManagerTest() : cluster_("c1", sim_), manager_(cluster_) {
    cluster_.addNode("n0", k8s::Resources{MilliCpu::fromCores(8),
                                          ByteSize::fromGiB(16)});
    cluster_.registerApp("worker", [](k8s::AppContext& context) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(10);
      result.resultPath = "/ndn/k8s/data/" + context.spec.args.at("out");
      result.outputBytes = 42;
      return result;
    });
    manager_.mapAppToImage("WORK", "worker");
  }

  ComputeRequest request(std::uint64_t cores = 1) {
    ComputeRequest r;
    r.app = "WORK";
    r.cpu = MilliCpu::fromCores(cores);
    r.memory = ByteSize::fromGiB(1);
    return r;
  }

  sim::Simulator sim_;
  k8s::Cluster cluster_;
  JobManager manager_;
};

TEST_F(JobManagerTest, SubmitCreatesJobWithClusterScopedId) {
  auto jobId = manager_.submit(request());
  ASSERT_TRUE(jobId.ok()) << jobId.status();
  EXPECT_EQ(jobId->rfind("job-c1-", 0), 0u);
  EXPECT_NE(cluster_.job("ndnk8s", *jobId), nullptr);
}

TEST_F(JobManagerTest, JobIdsAreUnique) {
  auto a = manager_.submit(request());
  auto b = manager_.submit(request());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(JobManagerTest, UnknownAppRejected) {
  ComputeRequest bad;
  bad.app = "UNKNOWN";
  auto jobId = manager_.submit(bad);
  EXPECT_FALSE(jobId.ok());
  EXPECT_EQ(jobId.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(manager_.hasApp("UNKNOWN"));
  EXPECT_TRUE(manager_.hasApp("WORK"));
}

TEST_F(JobManagerTest, DirectImageNameAlsoWorks) {
  ComputeRequest direct;
  direct.app = "worker";  // image name without a mapping
  direct.cpu = MilliCpu::fromCores(1);
  direct.memory = ByteSize::fromGiB(1);
  EXPECT_TRUE(manager_.submit(direct).ok());
}

TEST_F(JobManagerTest, DefaultsAppliedWhenResourcesOmitted) {
  ComputeRequest r;
  r.app = "WORK";
  auto jobId = manager_.submit(r);
  ASSERT_TRUE(jobId.ok());
  const auto* job = cluster_.job("ndnk8s", *jobId);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->spec().requests.cpu.millicores(),
            JobManager::kDefaultCpuMillicores);
  EXPECT_EQ(job->spec().requests.memory, JobManager::defaultMemory());
}

TEST_F(JobManagerTest, OutArgDefaultsToJobId) {
  auto jobId = manager_.submit(request());
  ASSERT_TRUE(jobId.ok());
  const auto* job = cluster_.job("ndnk8s", *jobId);
  EXPECT_EQ(job->spec().args.at("out"), "results/" + *jobId);
}

TEST_F(JobManagerTest, DatasetsPassedAsArgs) {
  ComputeRequest r = request();
  r.datasets = {"human-ref", "rice"};
  auto jobId = manager_.submit(r);
  ASSERT_TRUE(jobId.ok());
  const auto* job = cluster_.job("ndnk8s", *jobId);
  EXPECT_EQ(job->spec().args.at("dataset0"), "human-ref");
  EXPECT_EQ(job->spec().args.at("dataset1"), "rice");
}

TEST_F(JobManagerTest, StatusTransitionsAndResult) {
  auto jobId = manager_.submit(request());
  ASSERT_TRUE(jobId.ok());
  auto status = manager_.status(*jobId);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, k8s::JobState::kPending);

  sim_.run();
  status = manager_.status(*jobId);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, k8s::JobState::kCompleted);
  EXPECT_EQ(status->outputBytes, 42u);
  EXPECT_NEAR(status->runtime.toSeconds(), 10.0, 0.1);
  EXPECT_EQ(status->resultPath, "/ndn/k8s/data/results/" + *jobId);
}

TEST_F(JobManagerTest, RetriesParamSetsBackoffLimit) {
  ComputeRequest r = request();
  r.params["retries"] = "2";
  auto jobId = manager_.submit(r);
  ASSERT_TRUE(jobId.ok());
  EXPECT_EQ(cluster_.job("ndnk8s", *jobId)->spec().backoffLimit, 2);
}

TEST_F(JobManagerTest, RetriesParamCappedAndValidated) {
  ComputeRequest big = request();
  big.params["retries"] = "99";
  auto jobId = manager_.submit(big);
  ASSERT_TRUE(jobId.ok());
  EXPECT_EQ(cluster_.job("ndnk8s", *jobId)->spec().backoffLimit, 5);

  ComputeRequest junk = request();
  junk.params["retries"] = "lots";
  auto junkId = manager_.submit(junk);
  ASSERT_TRUE(junkId.ok());
  EXPECT_EQ(cluster_.job("ndnk8s", *junkId)->spec().backoffLimit, 0);
}

TEST_F(JobManagerTest, UnknownJobIdStatusFails) {
  EXPECT_EQ(manager_.status("job-c1-999").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lidc::core
