// Cluster capability discovery over /ndn/k8s/info/<cluster> (paper
// SVII): clients learn free resources, app lists, and load through the
// same named network as everything else.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc::core {
namespace {

class ClusterInfoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    ComputeClusterConfig config;
    config.name = "c1";
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    cluster_ = &overlay_->addCluster(config);
    cluster_->cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(300);
      return result;
    });
    cluster_->gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay_->connect("client-host", "c1",
                      net::LinkParams{sim::Duration::millis(10)});
    overlay_->announceCluster("c1");
    client_ = std::make_unique<LidcClient>(
        *overlay_->topology().node("client-host"), "user");
  }

  Result<ClusterInfo> query(const std::string& cluster) {
    std::optional<Result<ClusterInfo>> result;
    client_->queryClusterInfo(cluster,
                              [&](Result<ClusterInfo> r) { result = std::move(r); });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
    return result.value_or(Status::Internal("no answer"));
  }

  sim::Simulator sim_;
  std::unique_ptr<ClusterOverlay> overlay_;
  ComputeCluster* cluster_ = nullptr;
  std::unique_ptr<LidcClient> client_;
};

TEST_F(ClusterInfoTest, ReportsCapacityAndApps) {
  auto info = query("c1");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->cluster, "c1");
  EXPECT_EQ(info->nodes, 2u);
  EXPECT_EQ(info->totalCpu, MilliCpu::fromCores(16));
  EXPECT_EQ(info->freeCpu, MilliCpu::fromCores(16));
  EXPECT_EQ(info->runningJobs, 0u);
  // Stock apps are installed by ComputeCluster (magic-blast requires the
  // dataset loader, compress is always present) plus our sleeper.
  EXPECT_NE(std::find(info->apps.begin(), info->apps.end(), "compress"),
            info->apps.end());
  EXPECT_NE(std::find(info->apps.begin(), info->apps.end(), "sleeper"),
            info->apps.end());
}

TEST_F(ClusterInfoTest, FreeCapacityDropsWhileJobsRun) {
  ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(4);
  request.memory = ByteSize::fromGiB(4);
  client_->submit(request, [](Result<SubmitResult> r) { ASSERT_TRUE(r.ok()); });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));

  auto info = query("c1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->freeCpu, MilliCpu::fromCores(12));
  EXPECT_EQ(info->runningJobs, 1u);
}

TEST_F(ClusterInfoTest, UnknownClusterNacksOrTimesOut) {
  auto info = query("nonexistent");
  EXPECT_FALSE(info.ok());
}

TEST_F(ClusterInfoTest, InfoRouteLeavesWithTheCluster) {
  overlay_->withdrawCluster("c1");
  auto info = query("c1");
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace lidc::core
