// Centralized-controller baseline behaviour, including the failure
// modes the paper attributes to logically centralized control planes.
#include "core/centralized.hpp"

#include <gtest/gtest.h>

#include "core/overlay.hpp"

namespace lidc::core {
namespace {

class CentralizedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<ClusterOverlay>(sim_);
    controller_ = std::make_unique<CentralizedController>(sim_, options_);
  }

  ComputeCluster& addSleepCluster(const std::string& name,
                                  sim::Duration rpcLatency,
                                  std::uint64_t cores = 8) {
    ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(cores),
                                    ByteSize::fromGiB(16)};
    auto& cluster = overlay_->addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(30);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    controller_->registerCluster(cluster, rpcLatency);
    return cluster;
  }

  ComputeRequest sleepRequest(std::uint64_t cores = 1) {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(cores);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  sim::Simulator sim_;
  CentralizedOptions options_;
  std::unique_ptr<ClusterOverlay> overlay_;
  std::unique_ptr<CentralizedController> controller_;
};

TEST_F(CentralizedTest, PlacesJobOnLeastLoadedCluster) {
  auto& a = addSleepCluster("a", sim::Duration::millis(10));
  addSleepCluster("b", sim::Duration::millis(10));
  // Pre-load cluster a.
  a.cluster().addNode("extra", k8s::Resources{});  // no-op capacity
  std::optional<CentralizedController::SubmitAck> first;
  controller_->submit(sleepRequest(4), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    first = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(first.has_value());
  // Second submission goes to the other cluster (least loaded).
  std::optional<CentralizedController::SubmitAck> second;
  controller_->submit(sleepRequest(1), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_TRUE(r.ok());
    second = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->cluster, second->cluster);
  EXPECT_EQ(controller_->jobsPlaced(), 2u);
}

TEST_F(CentralizedTest, SubmitLatencyIncludesAllRpcLegs) {
  addSleepCluster("a", sim::Duration::millis(30));
  std::optional<CentralizedController::SubmitAck> ack;
  controller_->submit(sleepRequest(), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_TRUE(r.ok());
    ack = *r;
  });
  sim_.run();
  ASSERT_TRUE(ack.has_value());
  // client->controller (20) + controller->cluster (30) + back (30+20).
  EXPECT_NEAR(ack->latency.toMillis(), 100.0, 1.0);
}

TEST_F(CentralizedTest, ControllerDownIsSinglePointOfFailure) {
  addSleepCluster("healthy", sim::Duration::millis(10));
  controller_->setDown(true);
  std::optional<Status> failure;
  controller_->submit(sleepRequest(), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kUnavailable);
  // The healthy cluster never got the job.
  EXPECT_EQ(controller_->jobsPlaced(), 0u);
}

TEST_F(CentralizedTest, DeadClusterKeepsReceivingJobsUntilHeartbeat) {
  addSleepCluster("zombie", sim::Duration::millis(10));
  addSleepCluster("alive", sim::Duration::millis(10));
  // Make "zombie" the clear choice (alive is loaded).
  controller_->setClusterReachable("zombie", false);

  // Before the next heartbeat, the controller still believes in zombie
  // and may route there; such jobs are lost.
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 4; ++i) {
    controller_->submit(sleepRequest(),
                        [&](Result<CentralizedController::SubmitAck> r) {
                          if (r.ok()) {
                            ++successes;
                          } else {
                            ++failures;
                          }
                        });
  }
  sim_.runUntil(sim_.now() + options_.heartbeatInterval * 0.5);
  EXPECT_GT(controller_->jobsLost() + static_cast<std::uint64_t>(successes), 0u);

  // After a heartbeat, the controller routes around the corpse.
  sim_.runUntil(sim_.now() + options_.heartbeatInterval);
  std::optional<CentralizedController::SubmitAck> ack;
  controller_->submit(sleepRequest(), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ack = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(6));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->cluster, "alive");
}

TEST_F(CentralizedTest, NoClusterFitsIsResourceExhausted) {
  addSleepCluster("tiny", sim::Duration::millis(5), /*cores=*/1);
  std::optional<Status> failure;
  controller_->submit(sleepRequest(8), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kResourceExhausted);
}

TEST_F(CentralizedTest, StatusQueriesRouteThroughController) {
  addSleepCluster("a", sim::Duration::millis(10));
  std::optional<CentralizedController::SubmitAck> ack;
  controller_->submit(sleepRequest(), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_TRUE(r.ok());
    ack = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(ack.has_value());

  std::optional<CentralizedController::StatusReport> report;
  controller_->queryStatus(ack->jobId,
                           [&](Result<CentralizedController::StatusReport> r) {
                             ASSERT_TRUE(r.ok()) << r.status();
                             report = *r;
                           });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(report.has_value());

  // Unknown job.
  std::optional<Status> failure;
  controller_->queryStatus("job-ghost",
                           [&](Result<CentralizedController::StatusReport> r) {
                             ASSERT_FALSE(r.ok());
                             failure = r.status();
                           });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kNotFound);
}

TEST_F(CentralizedTest, UnregisterRemovesCluster) {
  addSleepCluster("gone", sim::Duration::millis(5));
  controller_->unregisterCluster("gone");
  std::optional<Status> failure;
  controller_->submit(sleepRequest(), [&](Result<CentralizedController::SubmitAck> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
}

}  // namespace
}  // namespace lidc::core
