#include "core/result_cache.hpp"

#include <gtest/gtest.h>

namespace lidc::core {
namespace {

CachedResult makeResult(const std::string& jobId, sim::Time at = sim::Time()) {
  return CachedResult{jobId, "/ndn/k8s/data/results/" + jobId, 100, at};
}

TEST(ResultCacheTest, PutGetRoundTrip) {
  ResultCache cache;
  cache.put(ndn::Name("/c/x"), makeResult("j1"));
  auto hit = cache.get(ndn::Name("/c/x"), sim::Time());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->jobId, "j1");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ResultCacheTest, MissCounts) {
  ResultCache cache;
  EXPECT_FALSE(cache.get(ndn::Name("/none"), sim::Time()).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, TtlExpiryEvicts) {
  ResultCache cache(16, sim::Duration::hours(1));
  cache.put(ndn::Name("/c/x"), makeResult("j1", sim::Time()));
  EXPECT_TRUE(cache.get(ndn::Name("/c/x"),
                        sim::Time() + sim::Duration::minutes(59))
                  .has_value());
  EXPECT_FALSE(cache.get(ndn::Name("/c/x"),
                         sim::Time() + sim::Duration::minutes(61))
                   .has_value());
  // Expired entry was removed.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2, sim::Duration::hours(24));
  cache.put(ndn::Name("/a"), makeResult("ja"));
  cache.put(ndn::Name("/b"), makeResult("jb"));
  (void)cache.get(ndn::Name("/a"), sim::Time());  // touch /a
  cache.put(ndn::Name("/c"), makeResult("jc"));
  EXPECT_TRUE(cache.get(ndn::Name("/a"), sim::Time()).has_value());
  EXPECT_FALSE(cache.get(ndn::Name("/b"), sim::Time()).has_value());
}

TEST(ResultCacheTest, PutRefreshesExisting) {
  ResultCache cache;
  cache.put(ndn::Name("/a"), makeResult("old"));
  cache.put(ndn::Name("/a"), makeResult("new"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(ndn::Name("/a"), sim::Time())->jobId, "new");
}

TEST(ResultCacheTest, ZeroCapacityNeverStores) {
  ResultCache cache(0, sim::Duration::hours(1));
  cache.put(ndn::Name("/a"), makeResult("j"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, ClearEmpties) {
  ResultCache cache;
  cache.put(ndn::Name("/a"), makeResult("j"));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(ndn::Name("/a"), sim::Time()).has_value());
}

}  // namespace
}  // namespace lidc::core
