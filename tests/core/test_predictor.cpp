#include "core/predictor.hpp"

#include <gtest/gtest.h>

namespace lidc::core {
namespace {

ComputeRequest request(const std::string& app, const std::string& srrId = "") {
  ComputeRequest r;
  r.app = app;
  if (!srrId.empty()) r.params["srr_id"] = srrId;
  return r;
}

TEST(PredictorTest, NoHistoryNoPrediction) {
  CompletionTimePredictor predictor;
  EXPECT_FALSE(predictor.predict(request("BLAST")).has_value());
  EXPECT_EQ(predictor.sampleCount(), 0u);
}

TEST(PredictorTest, ExactKeyPredictsObservedRuntime) {
  CompletionTimePredictor predictor;
  predictor.record(request("BLAST", "SRR2931415"), sim::Duration::hours(8));
  auto predicted = predictor.predict(request("BLAST", "SRR2931415"));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->toSeconds(), 8 * 3600.0, 1.0);
}

TEST(PredictorTest, FallsBackToPerAppModel) {
  CompletionTimePredictor predictor;
  predictor.record(request("BLAST", "SRR2931415"), sim::Duration::hours(8));
  // Unknown sample, known app: coarse model answers.
  auto predicted = predictor.predict(request("BLAST", "SRR0000001"));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->toSeconds(), 8 * 3600.0, 1.0);
  // Unknown app: nothing.
  EXPECT_FALSE(predictor.predict(request("other")).has_value());
}

TEST(PredictorTest, FineModelBeatsCoarseWhenBothExist) {
  CompletionTimePredictor predictor;
  predictor.record(request("BLAST", "rice"), sim::Duration::hours(8));
  predictor.record(request("BLAST", "kidney"), sim::Duration::hours(24));
  auto rice = predictor.predict(request("BLAST", "rice"));
  ASSERT_TRUE(rice.has_value());
  EXPECT_NEAR(rice->toSeconds(), 8 * 3600.0, 1.0);
  auto kidney = predictor.predict(request("BLAST", "kidney"));
  ASSERT_TRUE(kidney.has_value());
  EXPECT_NEAR(kidney->toSeconds(), 24 * 3600.0, 1.0);
}

TEST(PredictorTest, EwmaConvergesTowardNewRegime) {
  CompletionTimePredictor predictor(0.5);
  const auto r = request("BLAST", "x");
  predictor.record(r, sim::Duration::seconds(100));
  for (int i = 0; i < 10; ++i) predictor.record(r, sim::Duration::seconds(200));
  auto predicted = predictor.predict(r);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->toSeconds(), 200.0, 5.0);
}

TEST(PredictorTest, ErrorShrinksWithStableWorkload) {
  CompletionTimePredictor predictor;
  const auto r = request("BLAST", "stable");
  for (int i = 0; i < 20; ++i) {
    predictor.record(r, sim::Duration::seconds(500));
  }
  // After the first sample every prediction is perfect.
  EXPECT_LT(predictor.meanAbsoluteErrorSeconds(), 1.0);
  EXPECT_EQ(predictor.sampleCount(), 19u);  // first record had no prediction
}

TEST(PredictorTest, DatasetsContributeToFineKey) {
  CompletionTimePredictor predictor;
  ComputeRequest withDataset = request("app");
  withDataset.datasets.push_back("d1");
  predictor.record(withDataset, sim::Duration::seconds(10));
  ComputeRequest otherDataset = request("app");
  otherDataset.datasets.push_back("d2");
  predictor.record(otherDataset, sim::Duration::seconds(1000));
  auto d1 = predictor.predict(withDataset);
  ASSERT_TRUE(d1.has_value());
  EXPECT_NEAR(d1->toSeconds(), 10.0, 0.5);
}

}  // namespace
}  // namespace lidc::core
