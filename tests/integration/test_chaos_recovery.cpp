// End-to-end failure recovery under the chaos engine: a cluster dies
// mid-run behind a lossy access network while its gateway blacks out,
// and every job still completes on the survivor through the client's
// failover loop (paper SI: "computations continue as long as *some*
// cluster is reachable"). Also pins down the chaos harness's core
// promise — same seed, byte-identical fault schedule and outcomes —
// and the gateway's orphan-reaper hygiene.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"

namespace lidc {
namespace {

core::ClientOptions recoveryOptions() {
  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 8;
  options.maxStatusPollFailures = 4;
  options.maxFailovers = 4;
  options.deadline = sim::Duration::minutes(10);
  return options;
}

/// The full crash scenario, parameterised by the chaos seed so the
/// determinism test can rebuild it from scratch. Two clusters ("east"
/// near, "west" far), both access links lossy (>= 10%); east dies at
/// t=10s while its gateway blacks out for 15s. Six 20-second jobs are
/// launched during the first 8 seconds.
struct CrashScenario {
  explicit CrashScenario(std::uint64_t chaosSeed) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    east = &addSleeperCluster("east");
    west = &addSleeperCluster("west");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5), 0.0, /*loss=*/0.12});
    overlay->connect("client-host", "west",
                     net::LinkParams{sim::Duration::millis(30), 0.0, /*loss=*/0.10});
    overlay->announceCluster("east");
    overlay->announceCluster("west");

    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "chaos-user", recoveryOptions(),
        /*seed=*/777);

    chaos = std::make_unique<sim::ChaosEngine>(sim, chaosSeed);
    chaos->clusterCrash("east-crash", east->cluster(),
                        sim::Time::fromNanos(0) + sim::Duration::seconds(10));
    chaos->blackout("east-gw-dark", sim::Time::fromNanos(0) + sim::Duration::seconds(10),
                    sim::Duration::seconds(15),
                    [this](bool on) { east->gateway().setBlackout(on); });
    // Seeded flaps on the (already dead) east access link: harmless to
    // recovery, but makes the fault schedule genuinely seed-dependent.
    chaos->linkFlaps("east-link-flaps", *overlay->topology().linkBetween("client-host", "east"),
                     sim::Time::fromNanos(0) + sim::Duration::seconds(30),
                     sim::Time::fromNanos(0) + sim::Duration::seconds(60),
                     sim::Duration::seconds(2), sim::Duration::seconds(1));
  }

  core::ComputeCluster& addSleeperCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay->addCluster(config);
    cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(20);
      return result;
    });
    cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
    return cc;
  }

  /// Launches `count` jobs 1.5 s apart and runs the world to quiescence.
  void run(int count) {
    outcomes.resize(static_cast<std::size_t>(count));
    finishedAt.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::millis(1500 * i), [this, i] {
        core::ComputeRequest request;
        request.app = "sleep";
        request.cpu = MilliCpu::fromCores(2);
        request.memory = ByteSize::fromGiB(1);
        client->runToCompletion(request, [this, i](Result<core::JobOutcome> r) {
          outcomes[static_cast<std::size_t>(i)] = std::move(r);
          finishedAt[static_cast<std::size_t>(i)] = sim.now();
        });
      });
    }
    sim.run();
  }

  /// Every observable that must be reproducible, as one string.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& r = outcomes[i];
      out << "job" << i << ": ";
      if (!r.has_value()) {
        out << "<no outcome>\n";
        continue;
      }
      if (!r->ok()) {
        out << r->status() << "\n";
        continue;
      }
      out << "cluster=" << (*r)->finalStatus.cluster
          << " state=" << k8s::jobStateName((*r)->finalStatus.state)
          << " failovers=" << (*r)->failovers
          << " done_ns=" << finishedAt[i].toNanos() << "\n";
    }
    out << chaos->traceString();
    for (const auto t : client->submitAttemptLog()) {
      out << "submit_ns=" << t.toNanos() << "\n";
    }
    return out.str();
  }

  sim::Simulator sim;
  std::unique_ptr<core::ClusterOverlay> overlay;
  core::ComputeCluster* east = nullptr;
  core::ComputeCluster* west = nullptr;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<sim::ChaosEngine> chaos;
  std::vector<std::optional<Result<core::JobOutcome>>> outcomes;
  std::vector<sim::Time> finishedAt;
};

TEST(ChaosRecoveryTest, ClusterCrashMidRunFailsOverAllJobsToSurvivor) {
  CrashScenario scenario(/*chaosSeed=*/4242);
  scenario.run(/*count=*/6);

  int failedOver = 0;
  for (std::size_t i = 0; i < scenario.outcomes.size(); ++i) {
    const auto& r = scenario.outcomes[i];
    ASSERT_TRUE(r.has_value()) << "job " << i << " never finished";
    ASSERT_TRUE((*r).ok()) << "job " << i << ": " << (*r).status();
    EXPECT_EQ((**r).finalStatus.state, k8s::JobState::kCompleted) << "job " << i;
    // East died with every job incomplete, so all completions are west's.
    EXPECT_EQ((**r).finalStatus.cluster, "west") << "job " << i;
    if ((**r).failovers > 0) ++failedOver;
  }
  // The jobs east accepted before dying had to be resubmitted.
  EXPECT_GE(failedOver, 1);

  // The chaos engine saw its plan through...
  EXPECT_GE(scenario.chaos->totalInjections(), 3u);  // crash + blackout + flaps
  EXPECT_GE(scenario.chaos->totalRecoveries(), 1u);  // blackout lifted
  // ...and the gateway's self-healing machinery engaged: the blackout
  // swallowed traffic, then the health gate redirected resubmissions.
  EXPECT_GT(scenario.east->gateway().counters().blackoutDropped, 0u);
  EXPECT_GT(scenario.east->gateway().counters().healthRejected, 0u);
  EXPECT_EQ(scenario.east->gateway().healthyNodeFraction(), 0.0);
}

TEST(ChaosRecoveryTest, SameSeedGivesByteIdenticalOutcomes) {
  CrashScenario first(/*chaosSeed=*/4242);
  first.run(6);
  CrashScenario second(/*chaosSeed=*/4242);
  second.run(6);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());

  // A different chaos seed reshuffles the flap schedule, so the trace
  // (and therefore the fingerprint) must actually depend on the seed.
  CrashScenario reseeded(/*chaosSeed=*/1789);
  reseeded.run(6);
  EXPECT_NE(first.chaos->traceString(), reseeded.chaos->traceString());
}

TEST(ChaosRecoveryTest, ReapedOrphanNeverServesDedupOrStatus) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "solo";
  config.nodeCount = 1;
  config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
  config.gateway.orphanTtl = sim::Duration::seconds(30);
  config.gateway.reaperInterval = sim::Duration::seconds(5);
  auto& cc = overlay.addCluster(config);
  cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(300);
    return result;
  });
  cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
  overlay.connect("client-host", "solo", net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("solo");

  // Canonical names (no request id) so identical requests share a job.
  core::ClientOptions options;
  options.bypassCache = false;
  core::LidcClient client(*overlay.topology().node("client-host"), "user", options);

  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  request.params["retries"] = "1";  // node death leaves a Pending retry

  std::optional<core::SubmitResult> firstAck;
  client.submit(request, [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    firstAck = *r;
  });
  sim.runUntil(sim.now() + sim::Duration::seconds(2));
  ASSERT_TRUE(firstAck.has_value());

  // Kill the only node: the attempt fails, the retry sits Pending with
  // nowhere to schedule — the canonical "stuck orphan".
  sim::ChaosEngine chaos(sim);
  chaos.nodeCrash("solo-node-dies", cc.cluster(), "solo-node-0",
                  sim.now() + sim::Duration::seconds(1));
  sim.runUntil(sim.now() + sim::Duration::seconds(60));

  EXPECT_GE(cc.gateway().counters().orphansReaped, 1u);

  // Status for the reaped job is a clean NotFound, not a stale Pending.
  std::optional<Status> statusError;
  client.queryStatus(ndn::Name(firstAck->statusName),
                     [&](Result<core::JobStatusSnapshot> r) {
                       ASSERT_FALSE(r.ok());
                       statusError = r.status();
                     });
  sim.runUntil(sim.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(statusError.has_value());
  EXPECT_EQ(statusError->code(), StatusCode::kNotFound);

  // Once the cluster heals, the same canonical request launches a brand
  // new job instead of joining the reaped one through the dedup map.
  cc.cluster().setNodeReady("solo-node-0", true);
  std::optional<core::SubmitResult> secondAck;
  client.submit(request, [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    secondAck = *r;
  });
  sim.runUntil(sim.now() + sim::Duration::seconds(5));
  ASSERT_TRUE(secondAck.has_value());
  EXPECT_FALSE(secondAck->deduplicated);
  EXPECT_NE(secondAck->jobId, firstAck->jobId);
}

}  // namespace
}  // namespace lidc
