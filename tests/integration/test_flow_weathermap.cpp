// End-to-end traffic observability (ISSUE 9 acceptance): a noisy
// tenant floods a bandwidth-limited link with data fetches while a
// well-behaved tenant trickles tagged workflow fetches. The claims:
// the weathermap's topTalkers() names the aggressor tenant on the hot
// link; the saturation and dominance alerts fire off the weathermap's
// value source with non-empty flight-recorder windows that contain the
// weathermap's own hot-link events; and explainLink() / the fleet JSON
// are byte-identical per seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "datalake/file_server.hpp"
#include "k8s/pvc.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/weathermap.hpp"

namespace lidc {
namespace {

const char* const kHotLink = "link://east->client-host";

std::vector<std::uint8_t> payload(std::size_t size) {
  return std::vector<std::uint8_t>(size, 0x42);
}

/// One cluster "east" serving a data lake over a 1 Mbit/s link to
/// "client-host"; an ops host runs the weathermap + alert engine.
struct FlowScenario {
  FlowScenario()
      : lakePvc("east-lake", ByteSize::fromMiB(64)), lakeStore(lakePvc) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    overlay->addNode("ops");

    core::ComputeClusterConfig config;
    config.name = "east";
    config.nodeCount = 1;
    overlay->addCluster(config);

    // The contended link: 1 Mbit/s. The aggressor offers slightly more.
    net::LinkParams dataLink;
    dataLink.latency = sim::Duration::millis(5);
    dataLink.bandwidthBitsPerSec = 1'000'000.0;
    overlay->connect("client-host", "east", dataLink);
    overlay->connect("ops", "east", net::LinkParams{sim::Duration::millis(2)});
    overlay->announceCluster("east");

    // East's lake: unique objects per fetch so the client-side content
    // store cannot short-circuit the flood.
    server = std::make_unique<datalake::FileServer>(
        *overlay->topology().node("east"), lakeStore, kDataPrefix);
    for (int i = 0; i < 70; ++i) {
      (void)lakeStore.put(noisyObject(i), payload(32 * 1024));
    }
    for (int i = 0; i < 8; ++i) {
      (void)lakeStore.put(acmeObject(i), payload(4 * 1024));
    }
    overlay->topology().installRoutesTo(kDataPrefix, "east");
    ndn::Name telemetryPrefix = telemetry::kTelemetryPrefix;
    telemetryPrefix.append("east");
    overlay->topology().installRoutesTo(telemetryPrefix, "east");

    overlay->attachTelemetry(registry);
    overlay->enableFlowAccounting();
    recorder = std::make_unique<telemetry::FlightRecorder>(sim, 4096);
    overlay->attachFlightRecorder(recorder.get());

    telemetry::WeathermapOptions mapOptions;
    mapOptions.collector.interestLifetime = sim::Duration::millis(500);
    mapOptions.collector.freshnessWindow = sim::Duration::seconds(5);
    mapOptions.collector.scrapeInterval = sim::Duration::seconds(2);
    weathermap = std::make_unique<telemetry::Weathermap>(
        *overlay->topology().node("ops"), mapOptions);
    weathermap->watchCluster("east");
    weathermap->setFlightRecorder(recorder.get());

    telemetry::AlertEngineOptions alertOptions;
    alertOptions.eventWindow = 16;
    alertOptions.evaluateInterval = sim::Duration::seconds(1);
    alerts = std::make_unique<telemetry::AlertEngine>(sim, alertOptions);
    alerts->setValueSource(weathermap->valueSource());
    alerts->setFlightRecorder(recorder.get());
    alerts->addThresholdRule(
        "east-link-saturation",
        std::string("east/lidc_link_utilization{link=\"") + kHotLink + "\"}",
        telemetry::AlertComparison::kAbove, 0.8, /*forCount=*/3);
    alerts->addThresholdRule("east-tenant-dominance", "fleet/max_dominant_share",
                             telemetry::AlertComparison::kAbove, 0.5,
                             /*forCount=*/3);

    core::ClientOptions noisyOptions;
    noisyOptions.tenant = "noisy";
    noisyOptions.interestLifetime = sim::Duration::seconds(30);
    noisy = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "noisy-user", noisyOptions,
        /*seed=*/303);
    core::ClientOptions acmeOptions;
    acmeOptions.tenant = "acme";
    acmeOptions.interestLifetime = sim::Duration::seconds(30);
    acme = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "acme-user", acmeOptions,
        /*seed=*/101);
  }

  static ndn::Name noisyObject(int i) {
    return ndn::Name("/ndn/k8s/data/bulk/" + std::to_string(i));
  }
  static ndn::Name acmeObject(int i) {
    return ndn::Name("/ndn/k8s/data/genome/" + std::to_string(i));
  }

  /// The aggressor fetches a fresh 32 KiB object every 250 ms
  /// (~1.05 Mbit/s offered against the 1 Mbit/s link) over t=[0.5s,18s);
  /// acme fetches a 4 KiB object every 2 s, tagged with its workflow.
  void run() {
    weathermap->start();
    alerts->start();
    for (int i = 0; i < 70; ++i) {
      sim.scheduleAt(
          sim::Time() + sim::Duration::millis(500 + 250 * i), [this, i] {
            noisy->fetchData(noisyObject(i),
                             [this](Result<std::vector<std::uint8_t>> r) {
                               if (r.ok()) ++noisyDelivered;
                             });
          });
    }
    for (int i = 0; i < 8; ++i) {
      sim.scheduleAt(
          sim::Time() + sim::Duration::seconds(1 + 2 * i), [this, i] {
            acme->fetchData(
                acmeObject(i),
                [this](Result<std::vector<std::uint8_t>> r) {
                  if (r.ok()) ++acmeDelivered;
                },
                {}, "wf/genome");
          });
    }
    // Utilization is a trailing-window read: snapshot it mid-flood,
    // just after a scrape, while the link is actually saturated.
    sim.scheduleAt(sim::Time() + sim::Duration::millis(12'500),
                   [this] { midRunLinks = weathermap->links(); });
    sim.scheduleAt(sim::Time() + sim::Duration::seconds(25), [this] {
      weathermap->stop();
      alerts->stop();
    });
    sim.run();
  }

  /// Every reproducible observable in one string.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    out << "delivered noisy=" << noisyDelivered << " acme=" << acmeDelivered
        << "\n--- weathermap ---\n"
        << weathermap->weathermapJson() << "\n--- explain ---\n"
        << weathermap->explainLink(kHotLink) << "--- alerts ---\n"
        << alerts->serializedLog();
    return out.str();
  }

  sim::Simulator sim;
  telemetry::MetricsRegistry registry;
  k8s::PersistentVolumeClaim lakePvc;
  datalake::ObjectStore lakeStore;
  const ndn::Name kDataPrefix{"/ndn/k8s/data"};
  std::unique_ptr<core::ClusterOverlay> overlay;
  std::unique_ptr<datalake::FileServer> server;
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  std::unique_ptr<telemetry::Weathermap> weathermap;
  std::unique_ptr<telemetry::AlertEngine> alerts;
  std::unique_ptr<core::LidcClient> noisy;
  std::unique_ptr<core::LidcClient> acme;
  int noisyDelivered = 0;
  int acmeDelivered = 0;
  std::map<std::string, std::map<std::string, telemetry::LinkView>> midRunLinks;
};

TEST(FlowWeathermapTest, TopTalkersNameTheAggressorOnTheHotLink) {
  FlowScenario scenario;
  scenario.run();

  EXPECT_GT(scenario.noisyDelivered, 0);
  EXPECT_GT(scenario.acmeDelivered, 0);

  const auto talkers = scenario.weathermap->topTalkers(kHotLink);
  ASSERT_FALSE(talkers.empty());
  EXPECT_EQ(talkers[0].rank, 1);
  EXPECT_EQ(talkers[0].tenant, "noisy");
  EXPECT_EQ(talkers[0].group, "data");

  // acme's tagged trickle is attributed too — by tenant AND workflow.
  bool sawAcme = false;
  for (const auto& t : talkers) {
    if (t.tenant == "acme" && t.tag == "wf/genome") sawAcme = true;
  }
  EXPECT_TRUE(sawAcme);

  // The aggressor dominates the link's tenant split.
  const auto fleet = scenario.weathermap->links();
  const telemetry::LinkView& lv = fleet.at("east").at(kHotLink);
  EXPECT_GT(lv.dominantShare, 0.5);
  EXPECT_GT(lv.tenantBytes.at("noisy"), lv.tenantBytes.at("acme"));

  // Mid-flood, the scraped trailing-window utilization shows saturation.
  const telemetry::LinkView& hot = scenario.midRunLinks.at("east").at(kHotLink);
  EXPECT_GT(hot.utilization, 0.8);
}

TEST(FlowWeathermapTest, SaturationAndDominanceAlertsFireWithFlightWindows) {
  FlowScenario scenario;
  scenario.run();

  ASSERT_GE(scenario.alerts->firedTotal(), 2u);
  std::map<std::string, const telemetry::Alert*> byRule;
  for (const auto& alert : scenario.alerts->alerts()) {
    byRule.emplace(alert.rule, &alert);
  }
  ASSERT_EQ(byRule.count("east-link-saturation"), 1u);
  ASSERT_EQ(byRule.count("east-tenant-dominance"), 1u);

  // The dominance alert's post-mortem window holds the weathermap's own
  // scrape-time events naming the aggressor.
  const telemetry::Alert& dominance = *byRule.at("east-tenant-dominance");
  ASSERT_FALSE(dominance.events.empty());
  bool sawDominated = false;
  for (const auto& event : dominance.events) {
    if (event.component == "weathermap" &&
        event.message.find("tenant=noisy") != std::string::npos) {
      sawDominated = true;
    }
  }
  EXPECT_TRUE(sawDominated);
}

TEST(FlowWeathermapTest, WeathermapViewsAreByteIdenticalPerSeed) {
  const auto run = [] {
    FlowScenario scenario;
    scenario.run();
    return scenario.fingerprint();
  };
  const std::string first = run();
  EXPECT_NE(first.find("tenant=noisy"), std::string::npos);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace lidc
