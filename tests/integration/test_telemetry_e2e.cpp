// End-to-end telemetry: a diamond workflow runs across a two-cluster
// overlay while a chaos blackout takes the near gateway down mid-run.
// With the registry + tracer attached everywhere, explain(job_id) must
// render a causal span tree covering the client, per-hop forwarder
// decisions, gateway admission, K8s execution, and data-lake retrieval
// — with durations consistent with the end-to-end latency — and the
// collector must scrape both clusters purely via Interests, with the
// repeat snapshot fetch served from the Content Store.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "telemetry/monitor.hpp"
#include "workflow/engine.hpp"

namespace lidc {
namespace {

std::vector<std::uint8_t> rawBytes() {
  std::vector<std::uint8_t> bytes(1024);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>("ACGT"[i % 4]);
  }
  return bytes;
}

/// prep -> {left, right} -> merge, all transform stages (~10 s each).
workflow::WorkflowSpec diamondSpec(const std::string& id) {
  workflow::WorkflowSpec spec;
  spec.id = id;

  workflow::StageSpec prep;
  prep.name = "prep";
  prep.app = "transform";
  prep.cpu = MilliCpu::fromCores(1);
  prep.memory = ByteSize::fromGiB(1);
  prep.lakeInputs = {"raw/genome"};
  spec.addStage(prep);

  for (const std::string& side : {std::string("left"), std::string("right")}) {
    workflow::StageSpec stage;
    stage.name = side;
    stage.app = "transform";
    stage.cpu = MilliCpu::fromCores(1);
    stage.memory = ByteSize::fromGiB(1);
    stage.params["tag"] = side;
    stage.stageInputs = {{"prep", "input"}};
    spec.addStage(stage);
  }

  workflow::StageSpec merge;
  merge.name = "merge";
  merge.app = "transform";
  merge.cpu = MilliCpu::fromCores(1);
  merge.memory = ByteSize::fromGiB(1);
  merge.stageInputs = {{"left", ""}, {"right", ""}};
  spec.addStage(merge);
  return spec;
}

/// Two transform clusters, the full telemetry plane attached, a
/// collector on the client host, and a gateway blackout on the near
/// cluster from t=12s to t=42s.
struct TelemetryScenario {
  TelemetryScenario() : tracer(sim) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    addTransformCluster("east");
    addTransformCluster("west");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->connect("client-host", "west",
                     net::LinkParams{sim::Duration::millis(40)});
    overlay->announceCluster("east");
    overlay->announceCluster("west");

    core::ClientOptions options;
    options.interestLifetime = sim::Duration::seconds(2);
    options.statusPollInterval = sim::Duration::seconds(1);
    options.maxSubmitRetries = 3;
    options.maxStatusPollFailures = 3;
    options.maxFailovers = 4;
    options.deadline = sim::Duration::minutes(10);
    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "wf-user", options,
        /*seed=*/777);
    // Staging mode (locality off): every intermediate is fetched and
    // republished by the engine, so the trace is guaranteed to carry
    // data-retrieval / data-publish spans.
    workflow::WorkflowOptions engineOptions;
    engineOptions.localityAware = false;
    engine = std::make_unique<workflow::WorkflowEngine>(*client, engineOptions);

    overlay->attachTelemetry(registry, &tracer);
    client->attachTelemetry(registry, &tracer);
    engine->attachTelemetry(registry, &tracer);

    telemetry::TelemetryCollectorOptions collectorOptions;
    collectorOptions.interestLifetime = sim::Duration::millis(800);
    collectorOptions.freshnessWindow = sim::Duration::seconds(5);
    collector = std::make_unique<telemetry::TelemetryCollector>(
        *overlay->topology().node("client-host"), collectorOptions);
    collector->watchCluster("east");
    collector->watchCluster("west");

    chaos = std::make_unique<sim::ChaosEngine>(sim, /*seed=*/99);
    chaos->attachTelemetry(registry);
    chaos->blackout("east-gw-dark",
                    sim::Time::fromNanos(0) + sim::Duration::seconds(12),
                    sim::Duration::seconds(30), [this](bool on) {
                      overlay->cluster("east")->gateway().setBlackout(on);
                    });
  }

  void addTransformCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay->addCluster(config);
    apps::TransformConfig slow;
    slow.bytesPerSecondPerCore = 100.0;
    slow.scalingEfficiency = 0.0;
    apps::installTransformApp(cc.cluster(), cc.store(), slow);
    ndn::Name rawName = core::kDataPrefix;
    rawName.append("raw").append("genome");
    (void)cc.store().put(rawName, rawBytes());
  }

  void run(workflow::WorkflowSpec spec) {
    engine->run(std::move(spec), [this](Result<workflow::WorkflowOutcome> r) {
      outcome = std::move(r);
    });
    sim.run();
  }

  sim::Simulator sim;
  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer;
  std::unique_ptr<core::ClusterOverlay> overlay;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<workflow::WorkflowEngine> engine;
  std::unique_ptr<telemetry::TelemetryCollector> collector;
  std::unique_ptr<sim::ChaosEngine> chaos;
  std::optional<Result<workflow::WorkflowOutcome>> outcome;
};

TEST(TelemetryE2eTest, ExplainRendersFullSpanTreeForJobUnderChaos) {
  TelemetryScenario scenario;
  scenario.run(diamondSpec("wf-traced"));

  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_TRUE(outcome.succeeded);

  // Every launched job was bound to a trace; pick one that actually
  // executed (its trace carries a retroactive k8s-exec span).
  const auto jobs = scenario.tracer.boundJobs();
  ASSERT_FALSE(jobs.empty());
  std::string jobId;
  for (const auto& candidate : jobs) {
    const auto trace = scenario.tracer.traceForJob(candidate);
    ASSERT_TRUE(trace.has_value());
    for (const auto& span : scenario.tracer.spansForTrace(*trace)) {
      if (span.name == "k8s-exec") {
        jobId = candidate;
        break;
      }
    }
    if (!jobId.empty()) break;
  }
  ASSERT_FALSE(jobId.empty()) << "no bound job has a k8s-exec span";

  // The rendered tree covers every layer of the stack.
  const std::string tree = scenario.tracer.explain(jobId);
  for (const char* layer :
       {"workflow", "stage", "job", "submit-attempt", "forwarder-hop",
        "gateway-admission", "k8s-schedule", "k8s-exec", "await-completion",
        "data-retrieval"}) {
    EXPECT_NE(tree.find(layer), std::string::npos)
        << "span '" << layer << "' missing from:\n"
        << tree;
  }
  EXPECT_NE(tree.find("decision=launch"), std::string::npos) << tree;

  // Durations are consistent with the end-to-end latency: the root
  // workflow span lasts exactly the makespan, and every span in the
  // trace nests inside its window.
  const telemetry::TraceId traceId = *scenario.tracer.traceForJob(jobId);
  const auto spans = scenario.tracer.spansForTrace(traceId);
  const telemetry::Span* root = nullptr;
  const telemetry::Span* jobSpan = nullptr;
  const telemetry::Span* execSpan = nullptr;
  for (const auto& span : spans) {
    if (span.name == "workflow") root = &span;
    if (span.name == "job" && jobSpan == nullptr) jobSpan = &span;
    if (span.name == "k8s-exec" && execSpan == nullptr) execSpan = &span;
    EXPECT_FALSE(span.open) << span.name << " never ended";
    EXPECT_GE(span.duration().toNanos(), 0) << span.name;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(jobSpan, nullptr);
  ASSERT_NE(execSpan, nullptr);
  EXPECT_EQ(root->duration().toNanos(), outcome.makespan.toNanos());
  for (const auto& span : spans) {
    EXPECT_GE(span.start.toNanos(), root->start.toNanos()) << span.name;
    EXPECT_LE(span.end.toNanos(), root->end.toNanos()) << span.name;
  }
  // Pod execution happened strictly inside the client's job window.
  EXPECT_GE(execSpan->start.toNanos(), jobSpan->start.toNanos());
  EXPECT_LE(execSpan->end.toNanos(), jobSpan->end.toNanos());
  EXPECT_LE(execSpan->duration().toNanos(), jobSpan->duration().toNanos());

  // The chaos blackout left its mark on the registry: east dropped
  // Interests while dark, and chaos accounted the injection.
  const auto flat = scenario.registry.flatten();
  EXPECT_GE(flat.at("lidc_gateway_blackout_dropped{cluster=\"east\"}"), 1.0);
  EXPECT_GE(flat.at("lidc_chaos_injections"), 1.0);
  EXPECT_GE(flat.at("lidc_workflow_runs_succeeded"), 1.0);
}

TEST(TelemetryE2eTest, CollectorScrapesBothClustersAndRepeatHitsContentStore) {
  TelemetryScenario scenario;
  scenario.run(diamondSpec("wf-scraped"));
  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();

  bool done = false;
  scenario.collector->scrapeOnce([&done] { done = true; });
  scenario.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(scenario.collector->counters().scrapesSucceeded, 2u);
  EXPECT_FALSE(scenario.collector->isStale("east"));
  EXPECT_FALSE(scenario.collector->isStale("west"));

  // The scraped views carry the real per-cluster launch counters: the
  // four stages all ran somewhere.
  const double launches =
      scenario.collector->metric("east",
                                 "lidc_gateway_jobs_launched{cluster=\"east\"}") +
      scenario.collector->metric("west",
                                 "lidc_gateway_jobs_launched{cluster=\"west\"}");
  EXPECT_GE(launches, 4.0);

  // Forget the views and scrape again past the manifest freshness: the
  // immutable snapshot Data is re-fetched, but the collector host's own
  // Content Store answers it — visible in the registry's CS-hit metric
  // for that node (its forwarder counters are live-mirrored).
  telemetry::Counter& csHits = scenario.registry.counter(
      "lidc_forwarder_cs_hits", {{"node", "client-host"}});
  const std::uint64_t fetchedBefore =
      scenario.collector->counters().snapshotsFetched;
  const std::uint64_t csHitsBefore = csHits.value();
  scenario.collector->invalidate("east");
  scenario.collector->invalidate("west");
  scenario.sim.scheduleAfter(sim::Duration::millis(600),
                             [&scenario] { scenario.collector->scrapeOnce(); });
  scenario.sim.run();

  EXPECT_EQ(scenario.collector->counters().snapshotsFetched, fetchedBefore + 2);
  EXPECT_FALSE(scenario.collector->isStale("east"));
  EXPECT_FALSE(scenario.collector->isStale("west"));
  EXPECT_GE(csHits.value(), csHitsBefore + 2);
}

}  // namespace
}  // namespace lidc
