// End-to-end tests of the replica plane wired into the rest of the
// stack. Part one drives the WorkflowEngine's lookahead hooks through a
// PrestageCoordinator: a 3-stage chain whose reference inputs live only
// on the far cluster dispatches every stage with its inputs already
// local (dispatchBytesMoved == 0), while the reactive baseline moves
// the same bytes at dispatch time and pays for it in makespan. Part two
// crashes the seeded cluster out from under a replicated lake: the
// directory ages it into stale, the RepairLoop restores every dataset
// to its target replication factor from the survivor, and the
// under-replication alert fires while degraded and clears once repairs
// land.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "datalake/file_server.hpp"
#include "k8s/pvc.hpp"
#include "net/topology.hpp"
#include "replica/directory.hpp"
#include "replica/prestage.hpp"
#include "replica/repair.hpp"
#include "telemetry/alerts.hpp"
#include "workflow/engine.hpp"

namespace lidc {
namespace {

const std::string kRawPath = "raw/genome";
const std::string kPanelPath = "refs/panel";
const std::string kAnnotationsPath = "refs/annotations";
constexpr std::size_t kPanelBytes = 2048;
constexpr std::size_t kAnnotationsBytes = 3072;

/// Resolves a workflow-relative dataset path ("refs/panel",
/// "wf/<id>/<stage>") to its full lake name, exactly as the gateway's
/// dataset validator does.
ndn::Name lakeName(const std::string& path) {
  ndn::Name name = core::kDataPrefix;
  std::size_t begin = 0;
  while (begin < path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) name.append(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return name;
}

std::vector<std::string> lakeUris(const std::vector<std::string>& paths) {
  std::vector<std::string> uris;
  uris.reserve(paths.size());
  for (const std::string& path : paths) uris.push_back(lakeName(path).toUri());
  return uris;
}

/// prep -> analyze -> report. The chain's reference inputs (panel,
/// annotations) are seeded only on the far cluster, so they must cross
/// the overlay before analyze/report can be admitted where prep ran.
workflow::WorkflowSpec chainSpec(const std::string& id) {
  workflow::WorkflowSpec spec;
  spec.id = id;

  workflow::StageSpec prep;
  prep.name = "prep";
  prep.app = "transform";
  prep.cpu = MilliCpu::fromCores(1);
  prep.memory = ByteSize::fromGiB(1);
  prep.lakeInputs = {kRawPath};
  spec.addStage(prep);

  workflow::StageSpec analyze;
  analyze.name = "analyze";
  analyze.app = "transform";
  analyze.cpu = MilliCpu::fromCores(1);
  analyze.memory = ByteSize::fromGiB(1);
  analyze.lakeInputs = {kPanelPath};
  analyze.stageInputs = {{"prep", "input"}};
  spec.addStage(analyze);

  workflow::StageSpec report;
  report.name = "report";
  report.app = "transform";
  report.cpu = MilliCpu::fromCores(1);
  report.memory = ByteSize::fromGiB(1);
  report.lakeInputs = {kAnnotationsPath};
  report.stageInputs = {{"analyze", "input"}};
  spec.addStage(report);
  return spec;
}

/// Two clusters — "east" near (5 ms) runs the work, "west" far (40 ms)
/// holds the reference inputs — with a PrestageCoordinator staging
/// toward east's lake. `lookahead` toggles the predictive half: with it
/// off, only dispatch-time ensureInputsLocal() moves bytes (the
/// reactive baseline).
struct PrestageScenario {
  explicit PrestageScenario(bool lookahead) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    east = &addTransformCluster("east");
    west = &addTransformCluster("west");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->connect("client-host", "west",
                     net::LinkParams{sim::Duration::millis(40)});
    overlay->announceCluster("east");
    overlay->announceCluster("west");

    // The raw input lives where the work runs; the reference inputs of
    // the later stages live only on the far cluster.
    (void)east->store().put(lakeName(kRawPath), bytes(1024, 0x11));
    (void)west->store().put(lakeName(kPanelPath), bytes(kPanelBytes, 0x22));
    (void)west->store().put(lakeName(kAnnotationsPath),
                            bytes(kAnnotationsBytes, 0x33));

    core::ClientOptions clientOptions;
    clientOptions.interestLifetime = sim::Duration::seconds(2);
    clientOptions.statusPollInterval = sim::Duration::seconds(1);
    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "wf-user", clientOptions,
        /*seed=*/777);

    scheduler = std::make_unique<replica::TransferScheduler>(
        east->forwarder(), east->store(), "east", replica::TransferOptions{});
    coordinator =
        std::make_unique<replica::PrestageCoordinator>(*scheduler, east->store());

    workflow::WorkflowOptions options;
    if (lookahead) {
      options.prestageHook = [this](const std::string& consumer,
                                    const std::vector<std::string>& inputs) {
        coordinator->prestage(consumer, lakeUris(inputs));
      };
    }
    options.ensureInputsLocal = [this](const std::string& stage,
                                       const std::vector<std::string>& inputs,
                                       std::function<void(std::uint64_t)> done) {
      coordinator->ensureLocal(stage, lakeUris(inputs), std::move(done));
    };
    engine = std::make_unique<workflow::WorkflowEngine>(*client, options);
  }

  static std::vector<std::uint8_t> bytes(std::size_t size, std::uint8_t fill) {
    return std::vector<std::uint8_t>(size, fill);
  }

  core::ComputeCluster& addTransformCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay->addCluster(config);
    // Slow transform (~10 s per KiB stage) so pre-staging has a whole
    // producer runtime to hide the reference transfers in.
    apps::TransformConfig slow;
    slow.bytesPerSecondPerCore = 100.0;
    slow.scalingEfficiency = 0.0;
    apps::installTransformApp(cc.cluster(), cc.store(), slow);
    return cc;
  }

  workflow::WorkflowOutcome run() {
    std::optional<Result<workflow::WorkflowOutcome>> result;
    engine->run(chainSpec("wfpre"), [&result](Result<workflow::WorkflowOutcome> r) {
      result = std::move(r);
    });
    sim.run();
    EXPECT_TRUE(result.has_value());
    EXPECT_TRUE(result->ok()) << result->status();
    return result->value();
  }

  sim::Simulator sim;
  std::unique_ptr<core::ClusterOverlay> overlay;
  core::ComputeCluster* east = nullptr;
  core::ComputeCluster* west = nullptr;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<replica::TransferScheduler> scheduler;
  std::unique_ptr<replica::PrestageCoordinator> coordinator;
  std::unique_ptr<workflow::WorkflowEngine> engine;
};

TEST(ReplicaPrestageWorkflowTest, LookaheadKeepsEveryDispatchLocal) {
  PrestageScenario scenario(/*lookahead=*/true);
  const auto outcome = scenario.run();

  EXPECT_TRUE(outcome.succeeded);
  ASSERT_EQ(outcome.stages.size(), 3u);
  for (const auto& [name, st] : outcome.stages) {
    EXPECT_EQ(st.state, workflow::StageState::kCompleted) << name;
    EXPECT_EQ(st.cluster, "east") << name;
    // The acceptance check of predictive pre-staging: zero bytes moved
    // at dispatch, for every stage.
    EXPECT_EQ(st.dispatchStagingBytes, 0u) << name;
  }
  EXPECT_EQ(outcome.dispatchBytesMoved, 0u);

  // The bytes crossed the overlay *before* dispatch, via the lookahead
  // hook: one prestage per far-cluster reference input.
  EXPECT_EQ(scenario.coordinator->prestagesRequested(), 2u);
  EXPECT_EQ(scenario.coordinator->dispatchFetches(), 0u);
  EXPECT_EQ(scenario.scheduler->staged(), 2u);
  EXPECT_EQ(scenario.scheduler->bytesMoved(), kPanelBytes + kAnnotationsBytes);
  EXPECT_TRUE(scenario.east->store().contains(lakeName(kPanelPath)));
  EXPECT_TRUE(scenario.east->store().contains(lakeName(kAnnotationsPath)));

  // The engine trace narrates the lookahead firing per consumer.
  EXPECT_NE(outcome.trace.find("prestage analyze inputs=1"), std::string::npos);
  EXPECT_NE(outcome.trace.find("prestage report inputs=1"), std::string::npos);
}

TEST(ReplicaPrestageWorkflowTest, ReactiveBaselineMovesBytesAtDispatch) {
  PrestageScenario scenario(/*lookahead=*/false);
  const auto outcome = scenario.run();

  EXPECT_TRUE(outcome.succeeded);
  // Without lookahead, every far-cluster input is fetched while its
  // stage waits to launch — the cost predictive pre-staging removes.
  EXPECT_EQ(outcome.dispatchBytesMoved, kPanelBytes + kAnnotationsBytes);
  EXPECT_EQ(outcome.stages.at("prep").dispatchStagingBytes, 0u);
  EXPECT_EQ(outcome.stages.at("analyze").dispatchStagingBytes, kPanelBytes);
  EXPECT_EQ(outcome.stages.at("report").dispatchStagingBytes, kAnnotationsBytes);
  EXPECT_EQ(scenario.coordinator->prestagesRequested(), 0u);
  EXPECT_EQ(scenario.coordinator->dispatchFetches(), 2u);
}

TEST(ReplicaPrestageWorkflowTest, LookaheadStrictlyReducesMakespan) {
  PrestageScenario reactive(/*lookahead=*/false);
  const auto reactiveOutcome = reactive.run();
  PrestageScenario lookahead(/*lookahead=*/true);
  const auto lookaheadOutcome = lookahead.run();

  ASSERT_TRUE(reactiveOutcome.succeeded);
  ASSERT_TRUE(lookaheadOutcome.succeeded);
  // Identical work, but the reactive run serializes input staging into
  // the dispatch path while lookahead hides it under producer runtime.
  EXPECT_LT(lookaheadOutcome.makespan.toNanos(),
            reactiveOutcome.makespan.toNanos());
}

// ---------------------------------------------------------------------------
// Part two: crash recovery. Datasets replicated on {east, west}; east
// dies (its routes vanish), the directory ages it into stale, and the
// RepairLoop re-replicates onto south from the surviving copy while the
// under-replication alert fires and then clears.

const ndn::Name kDataPrefix("/ndn/k8s/data");

struct RepairSite {
  std::unique_ptr<k8s::PersistentVolumeClaim> pvc;
  std::unique_ptr<datalake::ObjectStore> store;
  std::unique_ptr<datalake::FileServer> server;
  std::unique_ptr<replica::ReplicaCatalog> catalog;
  std::unique_ptr<replica::TransferScheduler> scheduler;
};

TEST(ReplicaRepairAlertTest, CrashedClusterIsRepairedAndAlertFiresThenClears) {
  sim::Simulator sim;
  net::Topology topology(sim);
  topology.addNode("ops");
  std::map<std::string, RepairSite> sites;
  for (const std::string& name : {std::string("east"), std::string("west"),
                                  std::string("south")}) {
    ndn::Forwarder& node = topology.addNode(name);
    topology.connect("ops", name, net::LinkParams{sim::Duration::millis(10)});
    RepairSite& site = sites[name];
    site.pvc = std::make_unique<k8s::PersistentVolumeClaim>(
        name + "-lake", ByteSize::fromMiB(4));
    site.store = std::make_unique<datalake::ObjectStore>(*site.pvc);
    site.server =
        std::make_unique<datalake::FileServer>(node, *site.store, kDataPrefix);
    site.catalog = std::make_unique<replica::ReplicaCatalog>(node, name);
    ndn::Name prefix = replica::kReplicaPrefix;
    prefix.append(name);
    topology.installRoutesTo(prefix, name);
  }

  // Both datasets start at replication factor 2: east + west.
  const std::vector<ndn::Name> datasets{ndn::Name("/ndn/k8s/data/alpha"),
                                        ndn::Name("/ndn/k8s/data/beta")};
  for (const std::string& holder : {std::string("east"), std::string("west")}) {
    for (const ndn::Name& dataset : datasets) {
      ASSERT_TRUE(sites[holder]
                      .store->put(dataset, std::vector<std::uint8_t>(2048, 0x42))
                      .ok());
    }
    sites[holder].catalog->syncFromStore(*sites[holder].store, kDataPrefix);
    topology.installRoutesTo(kDataPrefix, holder);
  }
  for (const std::string& name : {std::string("west"), std::string("south")}) {
    sites[name].scheduler = std::make_unique<replica::TransferScheduler>(
        *topology.node(name), *sites[name].store, name,
        replica::TransferOptions{}, sites[name].catalog.get());
  }

  replica::ReplicaDirectory directory(*topology.node("ops"));
  for (const auto& [name, site] : sites) directory.watchCluster(name);

  // Hot datasets (3 weighted accesses past the default threshold) want
  // hotReplicas = 2 copies each.
  replica::PlacementPolicy policy;
  for (const ndn::Name& dataset : datasets) {
    for (int i = 0; i < 3; ++i) policy.recordAccess(dataset);
  }
  replica::RepairLoop repair(sim, directory, policy);
  repair.addScheduler("west", sites["west"].scheduler.get());
  repair.addScheduler("south", sites["south"].scheduler.get());

  telemetry::AlertEngineOptions alertOptions;
  alertOptions.evaluateInterval = sim::Duration::millis(500);
  telemetry::AlertEngine alerts(sim, alertOptions);
  alerts.setValueSource(replica::repairValueSource(repair));
  alerts.addThresholdRule("replica-under-replicated",
                          "replica/under_replicated",
                          telemetry::AlertComparison::kAbove, 0.0,
                          /*forCount=*/2);

  directory.start();
  repair.start();
  alerts.start();

  // Healthy steady state: fully replicated, nothing to repair, quiet
  // alert plane.
  sim.runUntil(sim::Time() + sim::Duration::seconds(6));
  for (const ndn::Name& dataset : datasets) {
    EXPECT_EQ(directory.replicationFactor(dataset), 2u) << dataset.toUri();
  }
  EXPECT_EQ(repair.repairsEnqueued(), 0u);
  EXPECT_EQ(alerts.firingCount(), 0u);

  // East crashes: its catalog and lake fall off the network. The
  // directory's scrapes of east start failing and its replicas age out
  // of the replication factor after the freshness window.
  ndn::Name eastReplicaPrefix = replica::kReplicaPrefix;
  eastReplicaPrefix.append("east");
  topology.uninstallRoutesTo(eastReplicaPrefix, "east");
  topology.uninstallRoutesTo(kDataPrefix, "east");

  sim.runUntil(sim::Time() + sim::Duration::seconds(30));
  alerts.stop();
  repair.stop();
  directory.stop();
  sim.run();

  // The repair loop restored every dataset to its target factor from
  // the surviving copy: south now holds both.
  EXPECT_TRUE(directory.isStale("east"));
  for (const ndn::Name& dataset : datasets) {
    EXPECT_EQ(directory.replicationFactor(dataset), 2u) << dataset.toUri();
    const auto holders = directory.holders(dataset);
    EXPECT_EQ(holders, (std::vector<std::string>{"south", "west"}))
        << dataset.toUri();
    EXPECT_TRUE(sites["south"].store->contains(dataset)) << dataset.toUri();
    EXPECT_EQ(*sites["south"].store->get(dataset),
              *sites["west"].store->get(dataset));
  }
  EXPECT_GE(repair.repairsCompleted(), 2u);
  EXPECT_EQ(repair.underReplicated(), 0u);

  // The under-replication alert fired while degraded and cleared once
  // repairs landed.
  EXPECT_GE(alerts.firedTotal(), 1u);
  EXPECT_GE(alerts.resolvedTotal(), 1u);
  EXPECT_EQ(alerts.firingCount(), 0u);
  EXPECT_NE(alerts.serializedLog().find("state=fired"), std::string::npos);
  EXPECT_NE(alerts.serializedLog().find("state=resolved"), std::string::npos);
}

}  // namespace
}  // namespace lidc
