// End-to-end health & SLO loop (ISSUE 4 acceptance): a chaos gateway
// blackout darkens east's compute plane while its telemetry publisher
// keeps answering. The collector's refused-work deltas drive east's
// health score to zero, which must (a) fire an alert whose post-mortem
// carries a non-empty flight-recorder window naming rule + triggering
// series, (b) publish that alert as signed Data on the named monitoring
// plane where a second collector scrapes it with ordinary Interests,
// and (c) steer >= 80% of subsequent jobs off the degraded cluster
// before it hard-fails a single job — all byte-identical per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/monitor.hpp"

namespace lidc {
namespace {

constexpr double kMinHealth = 0.5;

/// Two sleeper clusters (east near / west far), the full health plane
/// on the client host, an ops host scraping the alert plane, and a
/// gateway blackout on east from t=12s to t=42s. Jobs launch every 2s
/// through t=40s.
struct HealthScenario {
  explicit HealthScenario(bool steering) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    overlay->addNode("ops-host");
    addSleeperCluster("east");
    addSleeperCluster("west");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->connect("client-host", "west",
                     net::LinkParams{sim::Duration::millis(40)});
    overlay->connect("client-host", "ops-host",
                     net::LinkParams{sim::Duration::millis(10)});
    overlay->announceCluster("east");
    overlay->announceCluster("west");

    overlay->attachTelemetry(registry);

    // Flight recorder wired through every layer, plus warn-level log
    // capture (single code path: the log sink).
    recorder = std::make_unique<telemetry::FlightRecorder>(sim, 4096);
    recorder->captureLogs(log::Level::kWarn);
    overlay->attachFlightRecorder(recorder.get());

    telemetry::TelemetryCollectorOptions collectorOptions;
    collectorOptions.interestLifetime = sim::Duration::millis(800);
    collectorOptions.freshnessWindow = sim::Duration::seconds(3);
    collectorOptions.scrapeInterval = sim::Duration::seconds(1);
    collector = std::make_unique<telemetry::TelemetryCollector>(
        *overlay->topology().node("client-host"), collectorOptions);
    collector->watchCluster("east");
    collector->watchCluster("west");
    collector->attachTelemetry(registry);

    // Close the steering loop: scraped health biases the compute routes
    // (network-level) and the client's proactive failover (edge-level).
    adaptive = std::make_unique<core::AdaptivePlacement>(*overlay);
    if (steering) {
      collector->setHealthListener(
          [this](const std::string& cluster, double score) {
            if (cluster == "east") {
              minEastHealth = std::min(minEastHealth, score);
            }
            adaptive->observeHealth(cluster, score);
            adaptive->tick();
          });
    }

    core::ClientOptions options;
    options.interestLifetime = sim::Duration::seconds(2);
    options.statusPollInterval = sim::Duration::seconds(1);
    options.maxSubmitRetries = 6;
    options.maxStatusPollFailures = 3;
    options.maxFailovers = 4;
    options.deadline = sim::Duration::minutes(10);
    if (steering) {
      options.healthProvider = [this](const std::string& cluster) {
        return collector->healthScore(cluster);
      };
      options.minClusterHealth = kMinHealth;
    }
    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "slo-user", options,
        /*seed=*/777);
    client->attachTelemetry(registry);
    client->setFlightRecorder(recorder.get());

    // Alert plane: rules over the collector's scraped views...
    telemetry::AlertEngineOptions alertOptions;
    alertOptions.eventWindow = 16;
    alertOptions.evaluateInterval = sim::Duration::seconds(1);
    alerts = std::make_unique<telemetry::AlertEngine>(sim, alertOptions);
    alerts->setValueSource(telemetry::collectorValueSource(*collector));
    alerts->setFlightRecorder(recorder.get());
    alerts->addThresholdRule("east-health-low", "east/health",
                             telemetry::AlertComparison::kBelow, kMinHealth,
                             /*forCount=*/2);
    alerts->attachTelemetry(registry);

    // ...published as signed Data under /ndn/k8s/telemetry/monitor/alerts
    // so any collector can scrape the alert plane over plain Interests.
    alertPublisher = std::make_unique<telemetry::TelemetryPublisher>(
        *overlay->topology().node("client-host"), registry, "monitor");
    alertPublisher->addContentGroup(
        "alerts", [this] { return alerts->serializedLog(); },
        [this] { return alerts->revision(); });
    ndn::Name monitorPrefix = telemetry::kTelemetryPrefix;
    monitorPrefix.append("monitor");
    overlay->topology().installRoutesTo(monitorPrefix, "client-host");

    telemetry::TelemetryCollectorOptions opsOptions;
    opsOptions.group = "alerts";
    opsOptions.interestLifetime = sim::Duration::millis(800);
    opsCollector = std::make_unique<telemetry::TelemetryCollector>(
        *overlay->topology().node("ops-host"), opsOptions);
    opsCollector->watchCluster("monitor");

    chaos = std::make_unique<sim::ChaosEngine>(sim, /*seed=*/99);
    chaos->attachTelemetry(registry);
    chaos->setFlightRecorder(recorder.get());
    chaos->blackout("east-gw-dark",
                    sim::Time::fromNanos(0) + sim::Duration::seconds(12),
                    sim::Duration::seconds(30), [this](bool on) {
                      overlay->cluster("east")->gateway().setBlackout(on);
                    });
  }

  void addSleeperCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay->addCluster(config);
    cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(10);
      return result;
    });
    cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
  }

  /// Launches 21 jobs 2s apart (t=0..40), scrapes the alert plane from
  /// the ops host at t=25, and runs the world to quiescence.
  void run() {
    collector->start();
    alerts->start();
    const int count = 21;
    outcomes.resize(count);
    launchedAt.resize(count);
    for (int i = 0; i < count; ++i) {
      const sim::Time at = sim::Time::fromNanos(0) + sim::Duration::seconds(2 * i);
      launchedAt[static_cast<std::size_t>(i)] = at;
      sim.scheduleAt(at, [this, i] {
        core::ComputeRequest request;
        request.app = "sleep";
        request.cpu = MilliCpu::fromCores(1);
        request.memory = ByteSize::fromGiB(1);
        client->runToCompletion(request, [this, i](Result<core::JobOutcome> r) {
          outcomes[static_cast<std::size_t>(i)] = std::move(r);
        });
      });
    }
    sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(25), [this] {
      opsCollector->scrapeOnce([this] {
        scrapedAlertLog = opsCollector->view("monitor")->rawText;
      });
    });
    sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(70), [this] {
      collector->stop();
      alerts->stop();
    });
    sim.run();
  }

  /// Placement of jobs launched at or after `fromSeconds` that reached
  /// a terminal state, as "cluster cluster ..." plus a west fraction.
  [[nodiscard]] double westFractionSince(double fromSeconds) const {
    int total = 0, west = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (launchedAt[i].toSeconds() < fromSeconds) continue;
      if (!outcomes[i].has_value() || !(*outcomes[i]).ok()) continue;
      ++total;
      if ((*outcomes[i])->finalStatus.cluster == "west") ++west;
    }
    return total == 0 ? 0.0 : static_cast<double>(west) / total;
  }

  /// Every reproducible observable in one string.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      out << "job" << i << ": ";
      if (!outcomes[i].has_value()) {
        out << "<none>\n";
        continue;
      }
      if (!(*outcomes[i]).ok()) {
        out << (*outcomes[i]).status() << "\n";
        continue;
      }
      const auto& o = *(*outcomes[i]);
      out << "cluster=" << o.finalStatus.cluster
          << " state=" << k8s::jobStateName(o.finalStatus.state)
          << " failovers=" << o.failovers
          << " latency_ns=" << o.totalLatency.toNanos() << "\n";
    }
    out << "--- alerts ---\n" << alerts->serializedLog();
    if (!alerts->alerts().empty()) {
      out << "--- explain ---\n" << alerts->explainAlert(alerts->alerts()[0].id);
    }
    return out.str();
  }

  sim::Simulator sim;
  telemetry::MetricsRegistry registry;
  std::unique_ptr<core::ClusterOverlay> overlay;
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  std::unique_ptr<telemetry::TelemetryCollector> collector;
  std::unique_ptr<core::AdaptivePlacement> adaptive;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<telemetry::AlertEngine> alerts;
  std::unique_ptr<telemetry::TelemetryPublisher> alertPublisher;
  std::unique_ptr<telemetry::TelemetryCollector> opsCollector;
  std::unique_ptr<sim::ChaosEngine> chaos;
  std::vector<std::optional<Result<core::JobOutcome>>> outcomes;
  std::vector<sim::Time> launchedAt;
  std::string scrapedAlertLog;
  /// Lowest health the steering loop ever saw for east (1.0 = never
  /// degraded); only fed when steering is on.
  double minEastHealth = 1.0;
};

TEST(HealthAlertsTest, BlackoutFiresExplainableAlertOnTheNamedPlane) {
  HealthScenario scenario(/*steering=*/true);
  scenario.run();

  // (a) The alert fired during the blackout with a flight-recorder
  // window attached, and the post-mortem names rule + triggering series.
  ASSERT_GE(scenario.alerts->firedTotal(), 1u);
  const telemetry::Alert& first = scenario.alerts->alerts()[0];
  EXPECT_EQ(first.rule, "east-health-low");
  EXPECT_EQ(first.series, "east/health");
  EXPECT_GT(first.firedAt.toSeconds(), 12.0);
  EXPECT_FALSE(first.events.empty());

  const std::string post = scenario.alerts->explainAlert(first.id);
  EXPECT_NE(post.find("rule=east-health-low"), std::string::npos) << post;
  EXPECT_NE(post.find("series: east/health"), std::string::npos) << post;
  EXPECT_NE(post.find("threshold east/health < 0.5"), std::string::npos) << post;
  // The captured window holds real structured events from the fault.
  EXPECT_NE(post.find("events ("), std::string::npos) << post;
  EXPECT_NE(post.find("blackout-drop"), std::string::npos) << post;

  // The blackout resolved after recovery: east reads healthy again.
  EXPECT_GE(scenario.alerts->resolvedTotal(), 1u);

  // (b) The ops host scraped the alert transition log off the named
  // plane via ordinary Interests against /ndn/k8s/telemetry/monitor.
  ASSERT_FALSE(scenario.scrapedAlertLog.empty());
  EXPECT_NE(scenario.scrapedAlertLog.find("state=fired"), std::string::npos);
  EXPECT_NE(scenario.scrapedAlertLog.find("rule=east-health-low"),
            std::string::npos);
  EXPECT_EQ(scenario.opsCollector->counters().scrapesSucceeded, 1u);

  // The alert counters are mirrored into the registry.
  const auto flat = scenario.registry.flatten();
  EXPECT_GE(flat.at("lidc_alerts_fired_total"), 1.0);
}

TEST(HealthAlertsTest, SteeringMovesJobsOffDegradedClusterBeforeFailures) {
  HealthScenario scenario(/*steering=*/true);
  scenario.run();

  // Every job completed — the degraded cluster never hard-failed one.
  for (std::size_t i = 0; i < scenario.outcomes.size(); ++i) {
    ASSERT_TRUE(scenario.outcomes[i].has_value()) << "job " << i;
    ASSERT_TRUE((*scenario.outcomes[i]).ok())
        << "job " << i << ": " << (*scenario.outcomes[i]).status();
    EXPECT_EQ((**scenario.outcomes[i]).finalStatus.state,
              k8s::JobState::kCompleted)
        << "job " << i;
  }

  // (c) After detection (alert fires ~t=14s), jobs shift off east: at
  // least 80% of jobs launched from t=16s on completed on west.
  EXPECT_GE(scenario.westFractionSince(16.0), 0.8);

  // The shift was proactive: the blackout zeroed east's scraped health
  // and the steering loop re-costed its routes (health recovers to 1.0
  // once the blackout lifts, so assert on the minimum seen).
  EXPECT_GT(scenario.adaptive->updatesApplied(), 0u);
  EXPECT_LT(scenario.minEastHealth, kMinHealth);
}

TEST(HealthAlertsTest, AlertAndEventTracesAreByteIdenticalPerSeed) {
  const auto run = [] {
    HealthScenario scenario(/*steering=*/true);
    scenario.run();
    return scenario.fingerprint();
  };
  const std::string first = run();
  EXPECT_NE(first.find("state=fired"), std::string::npos);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace lidc
