// Multi-cluster, multi-client integration over a realistic geo topology:
// three clusters behind regional routers, clients in two regions,
// genomics jobs end to end. Exercises the full Fig. 1 picture.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class MultiClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    catalog_ = std::make_unique<genomics::DatasetCatalog>(/*scale=*/0.1);

    // Regional routers + client hosts.
    overlay_->addNode("router-east");
    overlay_->addNode("router-west");
    overlay_->connect("router-east", "router-west",
                      net::LinkParams{sim::Duration::millis(35)});
    overlay_->addNode("client-east");
    overlay_->addNode("client-west");
    overlay_->connect("client-east", "router-east",
                      net::LinkParams{sim::Duration::millis(3)});
    overlay_->connect("client-west", "router-west",
                      net::LinkParams{sim::Duration::millis(3)});

    addGenomicsCluster("campus-east", "router-east", 4);
    addGenomicsCluster("cloud-east", "router-east", 12);
    addGenomicsCluster("campus-west", "router-west", 8);

    east_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("client-east"), "east-user");
    west_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("client-west"), "west-user");
  }

  void addGenomicsCluster(const std::string& name, const std::string& attach,
                          std::uint64_t cores) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(cores),
                                    ByteSize::fromGiB(32)};
    auto& cluster = overlay_->addCluster(config);
    cluster.loadGenomicsDatasets(*catalog_);
    overlay_->connect(name, attach, net::LinkParams{sim::Duration::millis(8)});
    overlay_->announceCluster(name);
  }

  core::ComputeRequest blast(const std::string& srrId) {
    core::ComputeRequest request;
    request.app = "BLAST";
    request.cpu = MilliCpu::fromCores(2);
    request.memory = ByteSize::fromGiB(4);
    request.params["srr_id"] = srrId;
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  std::unique_ptr<genomics::DatasetCatalog> catalog_;
  std::unique_ptr<core::LidcClient> east_;
  std::unique_ptr<core::LidcClient> west_;
};

TEST_F(MultiClusterTest, ClientsPlaceOnTheirRegionalCluster) {
  std::string eastPlacement;
  std::string westPlacement;
  east_->submit(blast("SRR2931415"), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    eastPlacement = r->cluster;
  });
  west_->submit(blast("SRR2931415"), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    westPlacement = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  // Both east clusters are 11 ms away; the west cluster is ~46 ms away
  // from the east client, so east placements stay east and vice versa.
  EXPECT_TRUE(eastPlacement == "campus-east" || eastPlacement == "cloud-east")
      << eastPlacement;
  EXPECT_EQ(westPlacement, "campus-west");
}

TEST_F(MultiClusterTest, SameNameWorksFromBothRegions) {
  // The same semantic name, expressed anywhere, reaches *a* cluster —
  // the location-independence property.
  int completed = 0;
  for (auto* client : {east_.get(), west_.get()}) {
    client->runToCompletion(blast("SRR2931415"),
                            [&](Result<core::JobOutcome> r) {
                              ASSERT_TRUE(r.ok()) << r.status();
                              EXPECT_EQ(r->finalStatus.state,
                                        k8s::JobState::kCompleted);
                              ++completed;
                            });
  }
  sim_.run();
  EXPECT_EQ(completed, 2);
}

TEST_F(MultiClusterTest, RegionalOutageFailsOverAcrossRegions) {
  overlay_->failCluster("campus-west");
  std::string placement;
  west_->submit(blast("SRR2931415"), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    placement = r->cluster;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  EXPECT_TRUE(placement == "campus-east" || placement == "cloud-east");
}

TEST_F(MultiClusterTest, DataRetrievableFromWhicheverClusterRan) {
  std::optional<core::JobOutcome> outcome;
  west_->runToCompletion(blast("SRR2931415"), [&](Result<core::JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);

  std::optional<std::size_t> size;
  west_->fetchData(ndn::Name(outcome->finalStatus.resultPath),
                   [&](Result<std::vector<std::uint8_t>> r) {
                     ASSERT_TRUE(r.ok()) << r.status();
                     size = r->size();
                   });
  sim_.run();
  ASSERT_TRUE(size.has_value());
  EXPECT_GT(*size, 0u);
}

TEST_F(MultiClusterTest, ParallelJobsSpreadUnderCapacityPressure) {
  // campus-east holds 4 cores; with 2-core jobs, the third east job must
  // land elsewhere even though campus-east is nearest.
  std::map<std::string, int> placements;
  for (int i = 0; i < 4; ++i) {
    east_->submit(blast("SRR2931415"), [&](Result<core::SubmitResult> r) {
      ASSERT_TRUE(r.ok()) << r.status();
      ++placements[r->cluster];
    });
    sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  }
  int total = 0;
  for (const auto& [cluster, count] : placements) total += count;
  EXPECT_EQ(total, 4);
  EXPECT_GE(placements.size(), 2u);  // overflowed beyond the nearest
}

}  // namespace
}  // namespace lidc
