// Failure injection through the full stack: a worker node dies inside a
// multi-node cluster while a named LIDC job runs. With retries=N in the
// semantic name, the K8s Job controller reschedules the pod onto a
// surviving node and the client still observes Completed — the user
// never learns a node died.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class NodeFailureWorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "ha-cluster";
    config.nodeCount = 3;  // multi-node, unlike the paper's single-node
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    cluster_ = &overlay_->addCluster(config);
    cluster_->cluster().registerApp("sleeper", [this](k8s::AppContext&) {
      ++runs_;
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(120);
      return result;
    });
    cluster_->gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay_->connect("client-host", "ha-cluster",
                      net::LinkParams{sim::Duration::millis(5)});
    overlay_->announceCluster("ha-cluster");
    client_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("client-host"), "user");
  }

  core::ComputeRequest sleepRequest(int retries) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    if (retries > 0) request.params["retries"] = std::to_string(retries);
    return request;
  }

  /// Name of the node hosting the job's pod.
  std::string nodeOfJob(const std::string& jobId) {
    auto* job = cluster_->cluster().job("ndnk8s", jobId);
    if (job == nullptr) return {};
    auto* pod = cluster_->cluster().pod("ndnk8s", job->podName());
    return pod == nullptr ? std::string{} : pod->nodeName();
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  core::ComputeCluster* cluster_ = nullptr;
  std::unique_ptr<core::LidcClient> client_;
  int runs_ = 0;
};

TEST_F(NodeFailureWorkflowTest, JobSurvivesNodeDeathWithRetries) {
  std::optional<core::JobOutcome> outcome;
  std::string jobId;
  client_->submit(sleepRequest(/*retries=*/2), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    jobId = r->jobId;
    client_->waitForCompletion(ndn::Name(r->statusName),
                               [&](Result<core::JobStatusSnapshot> status) {
                                 ASSERT_TRUE(status.ok()) << status.status();
                                 core::JobOutcome o;
                                 o.finalStatus = *status;
                                 outcome = o;
                               });
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(30));
  ASSERT_FALSE(jobId.empty());

  // Kill the node the pod landed on, mid-run.
  const std::string victim = nodeOfJob(jobId);
  ASSERT_FALSE(victim.empty());
  cluster_->cluster().failNode(victim);

  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
  EXPECT_EQ(runs_, 2);  // original attempt + retry
}

TEST_F(NodeFailureWorkflowTest, WithoutRetriesClientSeesFailed) {
  std::optional<core::JobStatusSnapshot> finalStatus;
  std::string jobId;
  client_->submit(sleepRequest(/*retries=*/0), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    jobId = r->jobId;
    client_->waitForCompletion(ndn::Name(r->statusName),
                               [&](Result<core::JobStatusSnapshot> status) {
                                 ASSERT_TRUE(status.ok()) << status.status();
                                 finalStatus = *status;
                               });
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(30));
  ASSERT_FALSE(jobId.empty());
  cluster_->cluster().failNode(nodeOfJob(jobId));
  sim_.run();
  ASSERT_TRUE(finalStatus.has_value());
  EXPECT_EQ(finalStatus->state, k8s::JobState::kFailed);
  EXPECT_NE(finalStatus->error.find("failed"), std::string::npos);
}

}  // namespace
}  // namespace lidc
