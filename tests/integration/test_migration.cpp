// End-to-end checkpoint/restore & cross-cluster migration (DESIGN.md
// §14): a long MiniBlast alignment checkpoints on cadence into the
// /ndn/k8s/ckpt namespace, the ordinary replica plane (catalog →
// directory → repair loop) keeps a survivor copy, and when the cluster
// running the job crashes mid-flight the MigrationCoordinator resumes
// it on the survivor from the latest replicated checkpoint:
//
//   * the poller's status name stays valid throughout — the target
//     gateway aliases the dead cluster's job id, so waitForCompletion
//     rides through the crash without exhausting its failure budget,
//   * recomputed work is bounded by one checkpoint interval,
//   * the no-failure path pays < 5% checkpoint overhead,
//   * the whole incident replays byte-identically from the same seed.
//
// Plus the restore-failure alert loop: wrong-digest restore attempts
// fall back to cold starts, count ckptRestoreFailures, and trip an
// AlertEngine threshold rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint_format.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/semantic_name.hpp"
#include "migrate/checkpoint.hpp"
#include "migrate/coordinator.hpp"
#include "replica/directory.hpp"
#include "replica/policy.hpp"
#include "replica/repair.hpp"
#include "replica/scheduler.hpp"
#include "sim/chaos.hpp"
#include "telemetry/alerts.hpp"

namespace lidc {
namespace {

constexpr double kCkptIntervalSeconds = 300.0;  // 5 min cadence
constexpr double kCrashAtSeconds = 750.0;       // mid-epoch-3, after 2 writes

struct ScenarioResult {
  Result<core::JobStatusSnapshot> finalStatus{
      Status::Internal("never settled")};
  std::string placedOn;
  sim::Duration observedMakespan;  // submit -> poller saw terminal
  migrate::MigrationCounters counters;
  std::string decisions;              // coordinator decision log
  double ckptOverheadSeconds = 0.0;   // east manager's modeled write cost
  std::uint64_t survivorRestores = 0;     // west gateway ckptRestores
  std::uint64_t survivorAliasServed = 0;  // west gateway aliasServed
  std::uint64_t repairsCompleted = 0;
};

/// One full run: a rice-sample MiniBlast job lands on east; with
/// `crash`, every east node hard-fails and east's routes vanish at
/// kCrashAtSeconds while the user keeps polling the original status
/// name throughout.
ScenarioResult runScenario(bool crash) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  genomics::DatasetCatalog catalog(/*scale=*/0.05);
  overlay.addNode("client-host");
  overlay.addNode("ops-host");

  auto addCluster = [&](const std::string& name) -> core::ComputeCluster* {
    core::ComputeClusterConfig config;
    config.name = name;
    // 10x the measured testbed throughput so the rice alignment runs
    // ~minutes of simulated time instead of ~8 h.
    config.blast.throughputBytesPerSec = 1.2e6;
    auto& cc = overlay.addCluster(config);
    cc.loadGenomicsDatasets(catalog);
    cc.enableCheckpointServing();
    return &cc;
  };
  auto* east = addCluster("east");
  auto* west = addCluster("west");
  overlay.connect("client-host", "east",
                  net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "west",
                  net::LinkParams{sim::Duration::millis(30)});
  overlay.connect("ops-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("ops-host", "west", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("east", "west", net::LinkParams{sim::Duration::millis(10)});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  // Replica plane: checkpoints written on east register in its catalog
  // and heat the shared policy; the directory sees them and the repair
  // loop replicates them onto west — ordinary repair machinery, no
  // migration-specific transfers.
  replica::ReplicaCatalog eastCatalog(east->forwarder(), "east");
  replica::ReplicaCatalog westCatalog(west->forwarder(), "west");
  replica::PlacementPolicy policy;
  migrate::CheckpointOptions ckptOptions;
  ckptOptions.interval = sim::Duration::seconds(kCkptIntervalSeconds);
  migrate::CheckpointManager eastCkpt(east->cluster(), east->store(),
                                      ckptOptions, &eastCatalog, &policy);
  migrate::CheckpointManager westCkpt(west->cluster(), west->store(),
                                      ckptOptions, &westCatalog, &policy);
  replica::TransferScheduler eastSched(east->forwarder(), east->store(), "east",
                                       replica::TransferOptions{},
                                       &eastCatalog);
  replica::TransferScheduler westSched(west->forwarder(), west->store(), "west",
                                       replica::TransferOptions{},
                                       &westCatalog);
  replica::ReplicaDirectory directory(*overlay.topology().node("ops-host"));
  directory.watchCluster("east");
  directory.watchCluster("west");
  replica::RepairLoop repair(sim, directory, policy);
  repair.addScheduler("east", &eastSched);
  repair.addScheduler("west", &westSched);
  directory.start();
  repair.start();

  core::LidcClient user(*overlay.topology().node("client-host"), "user");
  core::LidcClient ops(*overlay.topology().node("ops-host"), "ops");
  migrate::MigrationCoordinator coordinator(ops, /*placement=*/nullptr,
                                            &directory);
  coordinator.addScheduler("east", &eastSched);
  coordinator.addScheduler("west", &westSched);
  coordinator.routeInstaller = [&overlay](const std::string& oldCluster,
                                          const std::string& oldJobId,
                                          const std::string& target) {
    overlay.topology().installRoutesTo(
        core::makeStatusName(oldCluster, oldJobId), target);
  };

  core::ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";
  std::optional<Result<core::SubmitResult>> ack;
  user.submit(request,
              [&ack](Result<core::SubmitResult> r) { ack = std::move(r); });
  sim.runUntil(sim::Time() + sim::Duration::seconds(2));
  EXPECT_TRUE(ack.has_value() && ack->ok());
  ScenarioResult out;
  if (!ack.has_value() || !ack->ok()) return out;
  out.placedOn = (*ack)->cluster;
  coordinator.track(**ack, request);

  // The user polls the ORIGINAL status name for the whole incident.
  std::optional<Result<core::JobStatusSnapshot>> final;
  sim::Time doneAt;
  user.waitForCompletion(ndn::Name((*ack)->statusName),
                         [&final, &doneAt, &sim](
                             Result<core::JobStatusSnapshot> r) {
                           final = std::move(r);
                           doneAt = sim.now();
                         });

  sim::ChaosEngine chaos(sim);
  if (crash) {
    const sim::Time crashAt =
        sim::Time() + sim::Duration::seconds(kCrashAtSeconds);
    // Pods die AND the cluster falls off the network at the same
    // instant: routes withdrawn, links dark — status polls nack fast.
    chaos.clusterCrash("east-crash", east->cluster(), crashAt);
    chaos.custom("east-blackout", crashAt,
                 [&overlay] { overlay.failCluster("east"); });
  }

  sim.runUntil(sim::Time() + sim::Duration::hours(2));
  repair.stop();
  directory.stop();
  sim.run();

  EXPECT_TRUE(final.has_value());
  if (final.has_value()) out.finalStatus = *final;
  out.observedMakespan = doneAt - sim::Time();
  out.counters = coordinator.counters();
  out.decisions = coordinator.decisionLog();
  out.ckptOverheadSeconds = eastCkpt.totalOverhead().toSeconds();
  out.survivorRestores = west->gateway().counters().ckptRestores;
  out.survivorAliasServed = west->gateway().counters().aliasServed;
  out.repairsCompleted = repair.repairsCompleted();
  return out;
}

TEST(MigrationIntegrationTest, CrashedClusterJobResumesOnSurvivor) {
  // Control: no failure. The job completes on east, nothing migrates,
  // and the no-failure path's checkpoint overhead stays under the 5%
  // budget the paper-scale bench enforces.
  const ScenarioResult control = runScenario(/*crash=*/false);
  ASSERT_TRUE(control.finalStatus.ok()) << control.finalStatus.status();
  EXPECT_EQ(control.finalStatus->state, k8s::JobState::kCompleted);
  EXPECT_EQ(control.placedOn, "east");
  EXPECT_EQ(control.counters.planned, 0u) << control.decisions;
  const double fullRuntime = control.finalStatus->runtime.toSeconds();
  ASSERT_GT(fullRuntime, kCrashAtSeconds + kCkptIntervalSeconds)
      << "scenario needs a job long enough to crash mid-flight";
  EXPECT_GT(control.ckptOverheadSeconds, 0.0);
  EXPECT_LT(control.ckptOverheadSeconds, 0.05 * fullRuntime);
  // Checkpoints were replicated to the survivor even without a crash.
  EXPECT_GE(control.repairsCompleted, 1u);

  // Incident run: east dies mid-flight; the coordinator resumes the
  // job on west from the latest replicated checkpoint.
  const ScenarioResult incident = runScenario(/*crash=*/true);
  ASSERT_TRUE(incident.finalStatus.ok())
      << incident.finalStatus.status() << "\n"
      << incident.decisions;
  EXPECT_EQ(incident.finalStatus->state, k8s::JobState::kCompleted);
  // The poller's original status name was answered by west through the
  // migration alias — continuity across the crash, no client churn.
  EXPECT_EQ(incident.finalStatus->cluster, "west");
  EXPECT_GE(incident.survivorAliasServed, 1u);
  EXPECT_EQ(incident.survivorRestores, 1u);
  EXPECT_EQ(incident.counters.planned, 1u);
  EXPECT_EQ(incident.counters.completed, 1u);
  EXPECT_EQ(incident.counters.coldFallbacks, 0u);
  EXPECT_EQ(incident.counters.failed, 0u);
  EXPECT_NE(incident.decisions.find("reason=status-dark"), std::string::npos)
      << incident.decisions;

  // Recompute bound: the resumed attempt re-did at most one checkpoint
  // interval of the work already done before the crash (plus restore
  // quantization slack — the resume offset is whole reads).
  const double resumedRuntime = incident.finalStatus->runtime.toSeconds();
  const double remainingAtCrash = fullRuntime - kCrashAtSeconds;
  const double recomputed = resumedRuntime - remainingAtCrash;
  EXPECT_GE(recomputed, 0.0);
  EXPECT_LT(recomputed, kCkptIntervalSeconds + 60.0)
      << "resumed " << resumedRuntime << "s vs " << remainingAtCrash
      << "s remaining at crash (full " << fullRuntime << "s)";
  // And failover-by-restore beats failover-by-recompute: total observed
  // makespan stays well under crash + full rerun.
  EXPECT_LT(incident.observedMakespan.toSeconds(),
            kCrashAtSeconds + fullRuntime - kCkptIntervalSeconds);

  // Same seed, same incident: the decision log IS the behavior.
  const ScenarioResult replay = runScenario(/*crash=*/true);
  EXPECT_EQ(replay.decisions, incident.decisions);
  EXPECT_EQ(replay.counters.completed, incident.counters.completed);
  EXPECT_EQ(replay.finalStatus->runtime, incident.finalStatus->runtime);
}

// Wrong-digest restore attempts: the gateway refuses the resume point,
// cold-starts instead (job still completes), counts the failures, and
// the alert plane surfaces the pattern.
TEST(MigrationIntegrationTest, RestoreFailuresColdStartAndRaiseAlert) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "east";
  auto& cc = overlay.addCluster(config);
  cc.enableCheckpointServing();
  cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(3);
    return result;
  });
  cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
  overlay.connect("client-host", "east",
                  net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("east");
  core::LidcClient client(*overlay.topology().node("client-host"), "user");

  // A real checkpoint exists — but the pinned digest is wrong (the
  // migration plane pins what it fetched; a mismatch means the replica
  // the target holds is not the bytes the coordinator validated).
  const std::vector<std::uint8_t> payload(512, 0x11);
  ASSERT_TRUE(cc.store().put(core::makeCkptName("ghost-1", 3), payload).ok());
  const std::uint64_t badPin = core::ckptDigest(payload) + 1;

  telemetry::AlertEngineOptions alertOptions;
  alertOptions.evaluateInterval = sim::Duration::millis(500);
  telemetry::AlertEngine alerts(sim, alertOptions);
  alerts.setValueSource([&cc] {
    return std::map<std::string, double>{
        {"ckpt/restore_failures",
         static_cast<double>(cc.gateway().counters().ckptRestoreFailures)}};
  });
  alerts.addThresholdRule("ckpt-restore-failures", "ckpt/restore_failures",
                          telemetry::AlertComparison::kAbove, 1.0,
                          /*forCount=*/2);
  alerts.start();

  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    // Distinct canonical names per attempt — no result-cache/dedup hits.
    request.params["attempt"] = std::to_string(i);
    request.params["ckpt"] = "ghost-1/3";
    request.params["ckpt_digest"] = std::to_string(badPin);
    request.params["ckpt_from"] = "west";
    client.runToCompletion(request, [&completed](Result<core::JobOutcome> r) {
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->finalStatus.state, k8s::JobState::kCompleted);
      ++completed;
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(10));
  }
  alerts.stop();
  sim.run();

  EXPECT_EQ(completed, 3);
  // Every attempt fell back to a cold start — no bogus restores.
  EXPECT_EQ(cc.gateway().counters().ckptRestoreFailures, 3u);
  EXPECT_EQ(cc.gateway().counters().ckptRestores, 0u);
  EXPECT_GE(alerts.firedTotal(), 1u);
}

}  // namespace
}  // namespace lidc
