// Robustness over lossy WANs: the full compute workflow (submit, poll,
// retrieve) completing despite packet loss, via client retransmission
// and per-segment retries.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class LossyNetworkTest : public ::testing::Test {
 protected:
  void buildWorld(double lossRate) {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "cluster";
    cluster_ = &overlay_->addCluster(config);
    cluster_->cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(30);
      result.resultPath = "/ndn/k8s/data/results/r";
      return result;
    });
    cluster_->gateway().jobs().mapAppToImage("sleep", "sleeper");
    (void)cluster_->store().putText(ndn::Name("/ndn/k8s/data/results/r"),
                                    std::string(20'000, 'z'));
    overlay_->connect("client-host", "cluster",
                      net::LinkParams{sim::Duration::millis(10), 0.0, lossRate});
    overlay_->announceCluster("cluster");

    core::ClientOptions options;
    options.maxSubmitRetries = 8;
    options.interestLifetime = sim::Duration::millis(500);
    client_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("client-host"), "user", options);
  }

  core::ComputeRequest sleepRequest() {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  core::ComputeCluster* cluster_ = nullptr;
  std::unique_ptr<core::LidcClient> client_;
};

TEST_F(LossyNetworkTest, WorkflowSurvivesTwentyPercentLoss) {
  buildWorld(0.20);
  std::optional<core::JobOutcome> outcome;
  client_->runToCompletion(sleepRequest(), [&](Result<core::JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    outcome = *r;
  });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
  // Loss actually happened (otherwise the test proves nothing).
  EXPECT_GT(overlay_->topology().linkBetween("client-host", "cluster")
                ->packetsDropped(),
            0u);
}

TEST_F(LossyNetworkTest, ResultRetrievalSurvivesLoss) {
  buildWorld(0.15);
  datalake::RetrieveOptions options;
  options.maxRetriesPerSegment = 12;
  options.interestLifetime = sim::Duration::millis(300);
  // Use a dedicated retriever with aggressive retries for the large
  // multi-segment result.
  auto face = std::make_shared<ndn::AppFace>(
      "app://fetch", sim_, 99);
  overlay_->topology().node("client-host")->addFace(face);
  datalake::Retriever retriever(*face, options);

  std::optional<std::size_t> size;
  retriever.fetch(ndn::Name("/ndn/k8s/data/results/r"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    size = r->size();
                  });
  sim_.run();
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 20'000u);
}

TEST_F(LossyNetworkTest, SubmitGivesUpAfterRetryBudget) {
  buildWorld(1.0);  // total blackout
  std::optional<Status> failure;
  client_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace lidc
