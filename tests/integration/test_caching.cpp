// Result caching end-to-end (paper SVII): identical canonical requests
// from multiple clients are answered without re-running the job — by
// the gateway's result cache, and within the ack freshness window, by
// NDN Content Stores along the path.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class CachingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    overlay_->addNode("router");
    overlay_->addNode("alice-host");
    overlay_->addNode("bob-host");

    core::ComputeClusterConfig config;
    config.name = "cluster";
    auto& cluster = overlay_->addCluster(config);
    cluster.cluster().registerApp("sleeper", [this](k8s::AppContext&) {
      ++jobRuns_;
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(60);
      result.resultPath = "/ndn/k8s/data/results/r";
      result.outputBytes = 7;
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");

    overlay_->connect("alice-host", "router",
                      net::LinkParams{sim::Duration::millis(5)});
    overlay_->connect("bob-host", "router",
                      net::LinkParams{sim::Duration::millis(5)});
    overlay_->connect("router", "cluster",
                      net::LinkParams{sim::Duration::millis(20)});
    overlay_->announceCluster("cluster");

    core::ClientOptions cached;
    cached.bypassCache = false;  // canonical names
    alice_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("alice-host"), "alice", cached, 1);
    bob_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("bob-host"), "bob", cached, 2);
  }

  core::ComputeRequest sleepRequest() {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  std::unique_ptr<core::LidcClient> alice_;
  std::unique_ptr<core::LidcClient> bob_;
  int jobRuns_ = 0;
};

TEST_F(CachingTest, SecondClientJoinsInFlightJob) {
  std::vector<std::string> jobIds;
  alice_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    jobIds.push_back(r->jobId);
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(10));
  bob_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    jobIds.push_back(r->jobId);
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(10));
  ASSERT_EQ(jobIds.size(), 2u);
  EXPECT_EQ(jobIds[0], jobIds[1]);
  EXPECT_EQ(jobRuns_, 1);
}

TEST_F(CachingTest, RepeatAfterCompletionServedFromResultCache) {
  std::optional<core::JobOutcome> first;
  alice_->runToCompletion(sleepRequest(), [&](Result<core::JobOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    first = *r;
  });
  sim_.run();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(jobRuns_, 1);

  std::optional<core::SubmitResult> second;
  bob_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    second = *r;
  });
  sim_.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->cached);
  EXPECT_EQ(second->resultPath, "/ndn/k8s/data/results/r");
  EXPECT_EQ(second->outputBytes, 7u);
  EXPECT_EQ(jobRuns_, 1);  // never re-ran
  // The cached answer is much faster than running a 60 s job.
  EXPECT_LT(second->placementLatency.toSeconds(), 1.0);
}

TEST_F(CachingTest, CacheBypassingClientsForceFreshRuns) {
  core::ClientOptions bypass;
  bypass.bypassCache = true;
  core::LidcClient carol(*overlay_->topology().node("alice-host"), "carol", bypass,
                         3);
  for (int i = 0; i < 2; ++i) {
    carol.submit(sleepRequest(), [](Result<core::SubmitResult> r) {
      ASSERT_TRUE(r.ok());
    });
    sim_.run();
  }
  EXPECT_EQ(jobRuns_, 2);
}

TEST_F(CachingTest, SimultaneousIdenticalRequestsAggregateInThePit) {
  // Alice and Bob express the identical canonical Interest at the same
  // instant. The router's PIT collapses them: exactly one Interest
  // crosses the router->cluster link, one job runs, both get the ack.
  int acks = 0;
  std::string jobA;
  std::string jobB;
  alice_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ++acks;
    jobA = r->jobId;
  });
  bob_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ++acks;
    jobB = r->jobId;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(acks, 2);
  EXPECT_EQ(jobA, jobB);
  auto* gw = overlay_->cluster("cluster");
  EXPECT_EQ(gw->gateway().counters().jobsLaunched, 1u);
  EXPECT_EQ(gw->gateway().counters().computeReceived, 1u);  // PIT merged them
  sim_.run();
  EXPECT_EQ(jobRuns_, 1);  // exactly one execution served both clients
}

TEST_F(CachingTest, RouterContentStoreAnswersWithinFreshnessWindow) {
  // Alice asks; within the 5 s ack freshness, Bob's identical request is
  // answered by the router's CS without touching the cluster at all.
  std::optional<core::SubmitResult> aliceAck;
  alice_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    aliceAck = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(aliceAck.has_value());

  const auto clusterInterestsBefore =
      overlay_->topology().node("cluster")->counters().nInInterests;
  std::optional<core::SubmitResult> bobAck;
  bob_->submit(sleepRequest(), [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok());
    bobAck = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(bobAck.has_value());
  EXPECT_EQ(bobAck->jobId, aliceAck->jobId);
  EXPECT_EQ(overlay_->topology().node("cluster")->counters().nInInterests,
            clusterInterestsBefore);
  // Router CS hit is visible in its counters.
  EXPECT_GE(overlay_->topology().node("router")->counters().nCsHits, 1u);
}

}  // namespace
}  // namespace lidc
