// End-to-end tests of the workflow engine: a diamond DAG of transform
// stages running across a two-cluster overlay — concurrent dispatch,
// locality-aware placement with zero intermediate movement, failure
// policies, and the chaos run where a cluster dies mid-workflow and
// lineage recovery recomputes the lost intermediate on the survivor
// with a byte-identical trace per seed.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "workflow/engine.hpp"

namespace lidc {
namespace {

const std::string kRawPath = "raw/genome";

std::vector<std::uint8_t> rawBytes() {
  std::vector<std::uint8_t> bytes(1024);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>("ACGT"[i % 4]);
  }
  return bytes;
}

core::ClientOptions workflowClientOptions() {
  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 3;
  options.maxStatusPollFailures = 3;
  options.maxFailovers = 2;
  return options;
}

/// prep -> {left, right} -> merge, all transform stages.
workflow::WorkflowSpec diamondSpec(const std::string& id) {
  workflow::WorkflowSpec spec;
  spec.id = id;

  workflow::StageSpec prep;
  prep.name = "prep";
  prep.app = "transform";
  prep.cpu = MilliCpu::fromCores(1);
  prep.memory = ByteSize::fromGiB(1);
  prep.lakeInputs = {kRawPath};
  spec.addStage(prep);

  for (const std::string& side : {std::string("left"), std::string("right")}) {
    workflow::StageSpec stage;
    stage.name = side;
    stage.app = "transform";
    stage.cpu = MilliCpu::fromCores(1);
    stage.memory = ByteSize::fromGiB(1);
    stage.params["tag"] = side;
    stage.stageInputs = {{"prep", "input"}};
    spec.addStage(stage);
  }

  workflow::StageSpec merge;
  merge.name = "merge";
  merge.app = "transform";
  merge.cpu = MilliCpu::fromCores(1);
  merge.memory = ByteSize::fromGiB(1);
  merge.stageInputs = {{"left", ""}, {"right", ""}};
  spec.addStage(merge);
  return spec;
}

std::vector<std::uint8_t> expectedMergeBytes() {
  const auto raw = rawBytes();
  auto tagged = [&raw](const std::string& tag) {
    std::vector<std::uint8_t> out(tag.begin(), tag.end());
    out.push_back('\n');
    out.insert(out.end(), raw.begin(), raw.end());
    return out;
  };
  auto combined = tagged("left");
  const auto right = tagged("right");
  combined.insert(combined.end(), right.begin(), right.end());
  return combined;
}

/// Two clusters ("east" near, "west" far), the raw input in both lakes,
/// and a deliberately slow transform app (~10 s per stage) so stage
/// overlap and mid-stage faults are observable.
struct WorkflowScenario {
  explicit WorkflowScenario(workflow::WorkflowOptions engineOptions = {}) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    east = &addTransformCluster("east");
    west = &addTransformCluster("west");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->connect("client-host", "west",
                     net::LinkParams{sim::Duration::millis(40)});
    overlay->announceCluster("east");
    overlay->announceCluster("west");

    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "wf-user",
        workflowClientOptions(), /*seed=*/777);
    engine = std::make_unique<workflow::WorkflowEngine>(*client, engineOptions);
  }

  core::ComputeCluster& addTransformCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    auto& cc = overlay->addCluster(config);
    // Slow the stock transform down to ~10 s per KiB stage.
    apps::TransformConfig slow;
    slow.bytesPerSecondPerCore = 100.0;
    slow.scalingEfficiency = 0.0;
    apps::installTransformApp(cc.cluster(), cc.store(), slow);
    ndn::Name rawName = core::kDataPrefix;
    rawName.append("raw").append("genome");
    (void)cc.store().put(rawName, rawBytes());
    return cc;
  }

  /// Runs the spec to quiescence.
  void run(workflow::WorkflowSpec spec) {
    engine->run(std::move(spec), [this](Result<workflow::WorkflowOutcome> r) {
      outcome = std::move(r);
    });
    sim.run();
  }

  [[nodiscard]] std::vector<std::uint8_t> fetchIntermediate(
      const std::string& wfId, const std::string& stage) {
    std::vector<std::uint8_t> bytes;
    client->fetchData(workflow::intermediateName(wfId, stage),
                      [&bytes](Result<std::vector<std::uint8_t>> r) {
                        ASSERT_TRUE(r.ok()) << r.status();
                        bytes = std::move(r).value();
                      });
    sim.run();
    return bytes;
  }

  sim::Simulator sim;
  std::unique_ptr<core::ClusterOverlay> overlay;
  core::ComputeCluster* east = nullptr;
  core::ComputeCluster* west = nullptr;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<workflow::WorkflowEngine> engine;
  std::optional<Result<workflow::WorkflowOutcome>> outcome;
};

TEST(WorkflowEngineTest, DiamondCompletesWithConcurrentBranchesAndNoDataMovement) {
  WorkflowScenario scenario;
  scenario.run(diamondSpec("wf1"));

  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_TRUE(outcome.succeeded);
  ASSERT_EQ(outcome.stages.size(), 4u);
  for (const auto& [name, st] : outcome.stages) {
    EXPECT_EQ(st.state, workflow::StageState::kCompleted) << name;
    EXPECT_EQ(st.outputName,
              workflow::intermediateName("wf1", name).toUri());
  }

  // Fan-out branches were dispatched together, not serialized.
  EXPECT_EQ(outcome.stages.at("left").dispatchedAt,
            outcome.stages.at("right").dispatchedAt);
  // The merge stage waited for both.
  EXPECT_GE(outcome.stages.at("merge").dispatchedAt.toNanos(),
            outcome.stages.at("left").finishedAt.toNanos());

  // Locality-aware placement: intermediates were written in place and
  // consumers pulled to the cluster holding them — nothing was staged.
  EXPECT_EQ(scenario.engine->bytesMoved(), 0u);
  EXPECT_EQ(outcome.intermediateBytesMoved, 0u);
  // All four stages ran on the near cluster that held prep's output.
  for (const auto& [name, st] : outcome.stages) {
    EXPECT_EQ(st.cluster, "east") << name;
  }

  // The merge output is retrievable by name and byte-correct.
  EXPECT_EQ(scenario.fetchIntermediate("wf1", "merge"), expectedMergeBytes());
}

TEST(WorkflowEngineTest, LocalityOffStagesIntermediatesAndCountsBytes) {
  workflow::WorkflowOptions options;
  options.localityAware = false;
  WorkflowScenario scenario(options);
  scenario.run(diamondSpec("wf2"));

  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_TRUE(outcome.succeeded);

  // Every stage output crossed the overlay twice (fetch + republish).
  std::uint64_t totalOutput = 0;
  for (const auto& [name, st] : outcome.stages) totalOutput += st.outputBytes;
  EXPECT_EQ(outcome.intermediateBytesMoved, 2 * totalOutput);
  EXPECT_GT(outcome.intermediateBytesMoved, 0u);

  // The pipeline still produces the same bytes.
  EXPECT_EQ(scenario.fetchIntermediate("wf2", "merge"), expectedMergeBytes());
}

TEST(WorkflowEngineTest, SequentialModeIsSlowerThanDagConcurrent) {
  WorkflowScenario concurrent;
  concurrent.run(diamondSpec("wfc"));
  ASSERT_TRUE(concurrent.outcome->ok());

  workflow::WorkflowOptions sequentialOptions;
  sequentialOptions.maxConcurrentStages = 1;
  WorkflowScenario sequential(sequentialOptions);
  sequential.run(diamondSpec("wfs"));
  ASSERT_TRUE(sequential.outcome->ok());
  EXPECT_TRUE(sequential.outcome->value().succeeded);

  // The diamond has 3 levels but 4 stages: running left/right together
  // must beat running them back to back.
  EXPECT_LT(concurrent.outcome->value().makespan.toSeconds(),
            sequential.outcome->value().makespan.toSeconds());
}

TEST(WorkflowEngineTest, InvalidSpecFailsWithoutDispatching) {
  WorkflowScenario scenario;
  workflow::WorkflowSpec bad;
  bad.id = "bad";
  workflow::StageSpec a;
  a.name = "a";
  a.app = "transform";
  a.stageInputs = {{"ghost", ""}};
  bad.addStage(a);
  scenario.run(std::move(bad));

  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_FALSE(scenario.outcome->ok());
  EXPECT_EQ(scenario.outcome->status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scenario.engine->stagesDispatched(), 0u);
}

/// A broken stage (its input exists in no lake), an independent stage,
/// and a dependent of the broken one — dispatched one at a time so the
/// independent stage is still pending when the failure lands.
workflow::WorkflowSpec failureSpec(const std::string& id) {
  workflow::WorkflowSpec spec;
  spec.id = id;
  workflow::StageSpec broken;
  broken.name = "broken";
  broken.app = "transform";
  broken.cpu = MilliCpu::fromCores(1);
  broken.memory = ByteSize::fromGiB(1);
  broken.lakeInputs = {"missing/object"};
  spec.addStage(broken);

  workflow::StageSpec solo;
  solo.name = "solo";
  solo.app = "transform";
  solo.cpu = MilliCpu::fromCores(1);
  solo.memory = ByteSize::fromGiB(1);
  solo.lakeInputs = {kRawPath};
  spec.addStage(solo);

  workflow::StageSpec child;
  child.name = "child";
  child.app = "transform";
  child.cpu = MilliCpu::fromCores(1);
  child.memory = ByteSize::fromGiB(1);
  child.stageInputs = {{"broken", "input"}};
  spec.addStage(child);
  return spec;
}

TEST(WorkflowEngineTest, FailFastSkipsEverythingStillPending) {
  workflow::WorkflowOptions options;
  options.failurePolicy = workflow::FailurePolicy::kFailFast;
  options.maxConcurrentStages = 1;
  options.maxStageRetries = 0;
  WorkflowScenario scenario(options);
  scenario.run(failureSpec("wff"));

  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.stages.at("broken").state, workflow::StageState::kFailed);
  EXPECT_EQ(outcome.stages.at("solo").state, workflow::StageState::kSkipped);
  EXPECT_EQ(outcome.stages.at("child").state, workflow::StageState::kSkipped);
  EXPECT_NE(outcome.stages.at("child").error.find("fail-fast"),
            std::string::npos);
}

TEST(WorkflowEngineTest, ContinueIndependentRunsUnrelatedBranches) {
  workflow::WorkflowOptions options;
  options.failurePolicy = workflow::FailurePolicy::kContinueIndependent;
  options.maxConcurrentStages = 1;
  options.maxStageRetries = 0;
  WorkflowScenario scenario(options);
  scenario.run(failureSpec("wfi"));

  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.stages.at("broken").state, workflow::StageState::kFailed);
  // Only the transitive dependent is skipped; the independent branch ran.
  EXPECT_EQ(outcome.stages.at("solo").state, workflow::StageState::kCompleted);
  EXPECT_EQ(outcome.stages.at("child").state, workflow::StageState::kSkipped);
  EXPECT_NE(outcome.stages.at("child").error.find("'broken' failed"),
            std::string::npos);
}

/// The chaos scenario: east (near) takes the whole workflow, then dies
/// mid-branch — after prep's intermediate landed in its lake, while
/// left/right are running on it. Lineage recovery must recompute prep
/// on west and finish every stage there.
struct WorkflowChaosScenario : WorkflowScenario {
  explicit WorkflowChaosScenario(std::uint64_t chaosSeed) {
    chaos = std::make_unique<sim::ChaosEngine>(sim, chaosSeed);
    chaos->custom("east-dies",
                  sim::Time::fromNanos(0) + sim::Duration::seconds(16),
                  [this] { overlay->failCluster("east"); });
  }

  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    if (!outcome.has_value()) return "<no outcome>";
    if (!outcome->ok()) return outcome->status().toString();
    const auto& o = outcome->value();
    for (const auto& [name, st] : o.stages) {
      out << name << ": state=" << workflow::stageStateName(st.state)
          << " cluster=" << st.cluster << " retries=" << st.retries
          << " done_ns=" << st.finishedAt.toNanos() << "\n";
    }
    out << "makespan_ns=" << o.makespan.toNanos() << "\n";
    out << "recoveries=" << o.lineageRecoveries << "\n";
    out << o.trace;
    out << chaos->traceString();
    return out.str();
  }

  std::unique_ptr<sim::ChaosEngine> chaos;
};

TEST(WorkflowEngineTest, ClusterDeathMidWorkflowRecoversLineageOnSurvivor) {
  WorkflowChaosScenario scenario(/*chaosSeed=*/4242);
  scenario.run(diamondSpec("wfx"));

  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_TRUE(outcome.succeeded) << outcome.trace;

  // prep completed on east before the crash; its intermediate died with
  // the lake, so it was recomputed — and everything finished on west.
  EXPECT_GE(outcome.lineageRecoveries, 1);
  EXPECT_GE(outcome.stages.at("prep").retries, 1);
  for (const auto& stage : {"prep", "left", "right", "merge"}) {
    EXPECT_EQ(outcome.stages.at(stage).state, workflow::StageState::kCompleted)
        << stage;
    EXPECT_EQ(outcome.stages.at(stage).cluster, "west") << stage;
  }

  // The final output is still byte-correct, served by the survivor.
  EXPECT_EQ(scenario.fetchIntermediate("wfx", "merge"), expectedMergeBytes());
}

TEST(WorkflowEngineTest, FleetHealthGateDefersDispatchUntilRecovery) {
  WorkflowScenario scenario;
  // Rebuild the engine with the health gate wired to a fleet that reads
  // degraded for the first 5 simulated seconds (e.g. max collector
  // healthScore over the candidate clusters), then recovers.
  workflow::WorkflowOptions gated;
  gated.fleetHealth = [&scenario] {
    return scenario.sim.now() < sim::Time::fromNanos(0) + sim::Duration::seconds(5)
               ? 0.2
               : 1.0;
  };
  gated.minFleetHealth = 0.5;
  gated.healthRecheckInterval = sim::Duration::millis(500);
  scenario.engine =
      std::make_unique<workflow::WorkflowEngine>(*scenario.client, gated);

  scenario.run(diamondSpec("wfh"));
  ASSERT_TRUE(scenario.outcome.has_value());
  ASSERT_TRUE(scenario.outcome->ok()) << scenario.outcome->status();
  const auto& outcome = scenario.outcome->value();
  EXPECT_TRUE(outcome.succeeded);

  // The gate held the first dispatch back (one defer line, not one per
  // recheck) and nothing launched until the fleet read healthy again.
  const std::size_t defer = outcome.trace.find("defer dispatch fleet-health=0.20");
  const std::size_t dispatch = outcome.trace.find("dispatch prep");
  ASSERT_NE(defer, std::string::npos) << outcome.trace;
  ASSERT_NE(dispatch, std::string::npos) << outcome.trace;
  EXPECT_LT(defer, dispatch);
  EXPECT_EQ(outcome.trace.find("defer dispatch", defer + 1), std::string::npos)
      << outcome.trace;
  EXPECT_NE(outcome.trace.find("t=5.000000s dispatch prep"), std::string::npos)
      << outcome.trace;
}

TEST(WorkflowEngineTest, ChaosRunIsByteIdenticalPerSeed) {
  WorkflowChaosScenario first(/*chaosSeed=*/4242);
  first.run(diamondSpec("wfx"));
  WorkflowChaosScenario second(/*chaosSeed=*/4242);
  second.run(diamondSpec("wfx"));
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  EXPECT_NE(first.fingerprint(), "<no outcome>");
}

// Straggler hedging: a stage whose job lands on a limping node would
// stretch the makespan by minutes; with hedging on, the engine
// relaunches the stage after the hedge delay and the faster leg wins
// the race while the straggler loses quietly (no retry burned, no
// double completion).
TEST(WorkflowEngineTest, StragglerStageIsRescuedByHedgeLeg) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "solo";
  config.nodeCount = 2;
  config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
  auto& cc = overlay.addCluster(config);
  int invocations = 0;
  cc.cluster().registerApp("racer", [&invocations](k8s::AppContext&) {
    k8s::AppResult result;
    // The first launch is the straggler (think slow-node gray failure);
    // the hedge's relaunch runs at normal speed.
    result.runtime = invocations++ == 0 ? sim::Duration::minutes(10)
                                        : sim::Duration::seconds(2);
    return result;
  });
  cc.gateway().jobs().mapAppToImage("race", "racer");
  overlay.connect("client-host", "solo", net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("solo");
  core::LidcClient client(*overlay.topology().node("client-host"), "wf-user",
                          workflowClientOptions(), /*seed=*/777);

  workflow::WorkflowOptions engineOptions;
  engineOptions.enableHedging = true;
  engineOptions.hedgeFloor = sim::Duration::seconds(10);
  workflow::WorkflowEngine engine(client, engineOptions);

  workflow::WorkflowSpec spec;
  spec.id = "hedged";
  workflow::StageSpec stage;
  stage.name = "only";
  stage.app = "race";
  stage.cpu = MilliCpu::fromCores(1);
  stage.memory = ByteSize::fromGiB(1);
  spec.addStage(stage);

  std::optional<Result<workflow::WorkflowOutcome>> outcome;
  sim::Time settledAt;
  engine.run(std::move(spec), [&](Result<workflow::WorkflowOutcome> r) {
    outcome = std::move(r);
    settledAt = sim.now();
  });
  sim.run();

  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok()) << outcome->status();
  EXPECT_TRUE((*outcome)->succeeded);
  EXPECT_EQ((*outcome)->stages.at("only").state,
            workflow::StageState::kCompleted);
  EXPECT_EQ((*outcome)->stages.at("only").retries, 0);
  EXPECT_EQ(engine.stageHedges(), 1u);
  EXPECT_EQ(engine.stageHedgesWon(), 1u);
  EXPECT_EQ(invocations, 2);
  // The workflow settled on the hedge's timescale (~12 s), not the
  // straggler's 10 minutes.
  EXPECT_LE(settledAt.toNanos(),
            (sim::Time::fromNanos(0) + sim::Duration::minutes(1)).toNanos());
}

TEST(WorkflowEngineTest, HedgingOffLetsTheStragglerRun) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "solo";
  config.nodeCount = 2;
  config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
  auto& cc = overlay.addCluster(config);
  cc.cluster().registerApp("slowpoke", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::minutes(2);
    return result;
  });
  cc.gateway().jobs().mapAppToImage("race", "slowpoke");
  overlay.connect("client-host", "solo", net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("solo");
  core::LidcClient client(*overlay.topology().node("client-host"), "wf-user",
                          workflowClientOptions(), /*seed=*/777);
  workflow::WorkflowEngine engine(client);  // hedging off by default

  workflow::WorkflowSpec spec;
  spec.id = "unhedged";
  workflow::StageSpec stage;
  stage.name = "only";
  stage.app = "race";
  stage.cpu = MilliCpu::fromCores(1);
  stage.memory = ByteSize::fromGiB(1);
  spec.addStage(stage);

  std::optional<Result<workflow::WorkflowOutcome>> outcome;
  engine.run(std::move(spec), [&](Result<workflow::WorkflowOutcome> r) {
    outcome = std::move(r);
  });
  sim.run();
  ASSERT_TRUE(outcome.has_value() && outcome->ok());
  EXPECT_TRUE((*outcome)->succeeded);
  EXPECT_EQ(engine.stageHedges(), 0u);
}

}  // namespace
}  // namespace lidc
