// End-to-end integration tests of the Fig. 5 workflow: a client on one
// side of the network submits a semantically named BLAST job; the
// gateway validates, launches a K8s Job against the data lake; the
// client polls /ndn/k8s/status until Completed and retrieves the result
// from the data lake — all through NDN names, never a cluster address.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    overlay_->addNode("client-host");

    core::ComputeClusterConfig config;
    config.name = "cluster-a";
    auto& cluster = overlay_->addCluster(config);
    catalog_ = std::make_unique<genomics::DatasetCatalog>(/*scale=*/0.2);
    cluster.loadGenomicsDatasets(*catalog_);

    overlay_->connect("client-host", "cluster-a",
                      net::LinkParams{sim::Duration::millis(10), 0.0, 0.0});
    overlay_->announceCluster("cluster-a");

    client_ = std::make_unique<core::LidcClient>(*overlay_->topology().node("client-host"),
                                                 "alice");
  }

  core::ComputeRequest blastRequest(const std::string& srrId) {
    core::ComputeRequest request;
    request.app = "BLAST";
    request.cpu = MilliCpu::fromCores(2);
    request.memory = ByteSize::fromGiB(4);
    request.params["srr_id"] = srrId;
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  std::unique_ptr<genomics::DatasetCatalog> catalog_;
  std::unique_ptr<core::LidcClient> client_;
};

TEST_F(WorkflowTest, SubmitReturnsJobIdAndStatusName) {
  std::optional<core::SubmitResult> ack;
  client_->submit(blastRequest("SRR2931415"),
                  [&](Result<core::SubmitResult> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    ack = *r;
                  });
  sim_.run();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->cluster, "cluster-a");
  EXPECT_FALSE(ack->jobId.empty());
  EXPECT_NE(ack->statusName.find("/ndn/k8s/status/cluster-a/"), std::string::npos);
  // Round trip over a 10 ms link: at least 20 ms of placement latency.
  EXPECT_GE(ack->placementLatency.toMillis(), 20.0);
}

TEST_F(WorkflowTest, FullLifecycleReachesCompletedWithResult) {
  std::optional<core::JobOutcome> outcome;
  client_->runToCompletion(blastRequest("SRR2931415"),
                           [&](Result<core::JobOutcome> r) {
                             ASSERT_TRUE(r.ok()) << r.status();
                             outcome = *r;
                           });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);
  EXPECT_FALSE(outcome->finalStatus.resultPath.empty());
  EXPECT_GT(outcome->finalStatus.outputBytes, 0u);
  // The testbed-scale runtime should be hours (Table I scale).
  EXPECT_GT(outcome->finalStatus.runtime.toSeconds(), 3600.0);
}

TEST_F(WorkflowTest, ResultIsRetrievableFromDataLake) {
  std::optional<core::JobOutcome> outcome;
  client_->runToCompletion(blastRequest("SRR2931415"),
                           [&](Result<core::JobOutcome> r) {
                             ASSERT_TRUE(r.ok()) << r.status();
                             outcome = *r;
                           });
  sim_.run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->finalStatus.state, k8s::JobState::kCompleted);

  std::optional<std::size_t> fetchedSize;
  client_->fetchData(ndn::Name(outcome->finalStatus.resultPath),
                     [&](Result<std::vector<std::uint8_t>> bytes) {
                       ASSERT_TRUE(bytes.ok()) << bytes.status();
                       fetchedSize = bytes->size();
                     });
  sim_.run();
  ASSERT_TRUE(fetchedSize.has_value());
  EXPECT_GT(*fetchedSize, 0u);
}

TEST_F(WorkflowTest, InvalidSrrIdIsRejectedByValidator) {
  std::optional<Status> failure;
  client_->submit(blastRequest("NOT_AN_SRR"),
                  [&](Result<core::SubmitResult> r) {
                    ASSERT_FALSE(r.ok());
                    failure = r.status();
                  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->message().find("SRR"), std::string::npos);
}

TEST_F(WorkflowTest, UnknownApplicationIsRejected) {
  core::ComputeRequest request;
  request.app = "NO_SUCH_APP";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  std::optional<Status> failure;
  client_->submit(std::move(request), [&](Result<core::SubmitResult> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
}

TEST_F(WorkflowTest, StatusProgressesThroughRunning) {
  // Submit, then immediately query status: the job should be Pending or
  // Running long before its hours-long completion.
  std::optional<core::SubmitResult> ack;
  client_->submit(blastRequest("SRR2931415"),
                  [&](Result<core::SubmitResult> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    ack = *r;
                  });
  sim_.runUntil(sim::Time::fromNanos(
      sim::Duration::seconds(5).toNanos()));
  ASSERT_TRUE(ack.has_value());

  std::optional<core::JobStatusSnapshot> snapshot;
  client_->queryStatus(ndn::Name(ack->statusName),
                       [&](Result<core::JobStatusSnapshot> r) {
                         ASSERT_TRUE(r.ok()) << r.status();
                         snapshot = *r;
                       });
  sim_.runUntil(sim::Time::fromNanos(sim::Duration::seconds(10).toNanos()));
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(snapshot->state == k8s::JobState::kRunning ||
              snapshot->state == k8s::JobState::kPending);
}

}  // namespace
}  // namespace lidc
