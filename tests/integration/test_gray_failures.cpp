// End-to-end gray-failure resilience: the failures here are NOT
// fail-stop — a link quietly flips payload bits, a node limps at 10x
// while reporting Ready, and the nearest gateway admits every job but
// never runs one. The defenses under test: on-path integrity drops
// (corrupt Data never reaches an app), the client's progress watchdog
// (Pending-forever becomes a failure), per-cluster circuit breakers
// wired into adaptive placement (post-trip submissions steer away from
// the gray cluster), and the retriever's verified transfers (fetched
// bytes are exactly the published bytes). All of it deterministic: the
// same chaos seed reproduces the run byte-for-byte.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/metrics.hpp"

namespace lidc {
namespace {

core::ClientOptions defendedOptions() {
  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 8;
  options.maxStatusPollFailures = 4;
  options.maxFailovers = 4;
  options.deadline = sim::Duration::minutes(10);
  // Gray-failure defenses. The watchdog TTL is comfortably above the
  // worst-case honest queueing delay (a 5 s sleeper slot turning over),
  // so only the gray gateway's Pending-forever fabrications trip it.
  options.pendingProgressTtl = sim::Duration::seconds(8);
  options.enableHedging = true;
  options.hedgeDelayFloor = sim::Duration::millis(500);
  options.enableCircuitBreaker = true;
  options.breaker.failureThreshold = 2;
  // Long open window: the gray gateway stays gray for the whole run,
  // so there is nothing useful for half-open probes to discover.
  options.breaker.openDuration = sim::Duration::seconds(120);
  return options;
}

/// Three clusters behind one client. "gray" is nearest (best-route
/// bait) and goes gray; "beta" hides a 10x slow node; "alpha" is
/// healthy. Every access link corrupts ~1% of Data payloads.
struct GrayScenario {
  explicit GrayScenario(std::uint64_t chaosSeed) {
    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");
    gray = &addSleeperCluster("gray");
    beta = &addSleeperCluster("beta");
    alpha = &addSleeperCluster("alpha");
    overlay->connect("client-host", "gray",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->connect("client-host", "beta",
                     net::LinkParams{sim::Duration::millis(15)});
    overlay->connect("client-host", "alpha",
                     net::LinkParams{sim::Duration::millis(30)});
    for (const char* name : {"gray", "beta", "alpha"}) {
      overlay->announceCluster(name);
    }

    placement = std::make_unique<core::AdaptivePlacement>(*overlay);
    core::ClientOptions options = defendedOptions();
    options.breakerListener = [this](const std::string& cluster,
                                     core::BreakerState state) {
      placement->observeBreaker(cluster, state == core::BreakerState::kOpen);
      placement->tick();
      if (cluster == "gray" && state == core::BreakerState::kOpen &&
          submitsAtTrip == 0) {
        // First trip of the gray breaker: snapshot for the avoidance
        // assertion below.
        submitsAtTrip = client->submitAttemptLog().size();
        grayComputeAtTrip = gray->gateway().counters().computeReceived;
      }
    };
    client = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "gray-user", options,
        /*seed=*/777);
    overlay->topology().node("client-host")->attachTelemetry(registry);

    chaos = std::make_unique<sim::ChaosEngine>(sim, chaosSeed);
    const sim::Time start = sim::Time::fromNanos(0) + sim::Duration::seconds(1);
    const sim::Duration window = sim::Duration::minutes(10);
    for (const char* name : {"gray", "beta", "alpha"}) {
      chaos->corruption(std::string(name) + "-link-corruption",
                        *overlay->topology().linkBetween("client-host", name),
                        start, window, /*corruptRate=*/0.01);
    }
    chaos->slowNode("beta-limps", beta->cluster(), "beta-node-0", start, window,
                    /*factor=*/10.0);
    chaos->grayGateway("gray-gw-gray", start, window,
                       [this](bool on) { gray->gateway().setGrayFailure(on); });
  }

  core::ComputeCluster& addSleeperCluster(const std::string& name) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 2;
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    auto& cc = overlay->addCluster(config);
    cc.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(5);
      return result;
    });
    cc.gateway().jobs().mapAppToImage("sleep", "sleeper");
    return cc;
  }

  /// Publishes a dataset before the chaos window opens, launches
  /// `count` jobs 1.5 s apart, fetches the dataset back mid-chaos, and
  /// runs the world to quiescence.
  void run(int count) {
    published.resize(16 * 1024);
    for (std::size_t i = 0; i < published.size(); ++i) {
      published[i] = static_cast<std::uint8_t>((i * 131) & 0xff);
    }
    client->publishData("gray-test/input", published,
                        [this](Result<ndn::Name> r) {
                          ASSERT_TRUE(r.ok()) << r.status();
                          publishedName = *r;
                        });
    outcomes.resize(static_cast<std::size_t>(count));
    // Jobs start at t=2 s — after every chaos fault is live at t=1 s —
    // so no job slips into the gray gateway before it turns gray.
    for (int i = 0; i < count; ++i) {
      sim.scheduleAt(
          sim::Time::fromNanos(0) + sim::Duration::millis(2000 + 1500 * i),
          [this, i] {
            core::ComputeRequest request;
            request.app = "sleep";
            request.cpu = MilliCpu::fromCores(2);
            request.memory = ByteSize::fromGiB(1);
            client->runToCompletion(request, [this, i](Result<core::JobOutcome> r) {
              outcomes[static_cast<std::size_t>(i)] = std::move(r);
            });
          });
    }
    // Fetch the published object back through the corrupting links:
    // the verified transfer must deliver the exact published bytes.
    sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(20), [this] {
      client->fetchData(publishedName, [this](Result<std::vector<std::uint8_t>> r) {
        ASSERT_TRUE(r.ok()) << r.status();
        fetched = *r;
      });
    });
    sim.run();
  }

  [[nodiscard]] std::uint64_t totalCorrupted() const {
    std::uint64_t total = 0;
    for (const char* name : {"gray", "beta", "alpha"}) {
      total += const_cast<net::Topology&>(overlay->topology())
                   .linkBetween("client-host", name)
                   ->packetsCorrupted();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t totalIntegrityDrops() const {
    std::uint64_t total = 0;
    for (const char* name : {"client-host", "gray", "beta", "alpha"}) {
      total += const_cast<net::Topology&>(overlay->topology())
                   .node(name)
                   ->counters()
                   .nIntegrityDrops;
    }
    return total;
  }

  /// Every observable that must be reproducible, as one string.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& r = outcomes[i];
      out << "job" << i << ": ";
      if (!r.has_value()) {
        out << "<no outcome>\n";
        continue;
      }
      if (!r->ok()) {
        out << r->status() << "\n";
        continue;
      }
      out << "cluster=" << (*r)->finalStatus.cluster
          << " state=" << k8s::jobStateName((*r)->finalStatus.state)
          << " failovers=" << (*r)->failovers << "\n";
    }
    out << "corrupted=" << totalCorrupted()
        << " integrity_drops=" << totalIntegrityDrops()
        << " watchdog=" << client->watchdogTimeouts()
        << " trips=" << client->breakerTrips()
        << " hedges=" << client->hedgesIssued() << "/" << client->hedgesWon()
        << "/" << client->hedgesCancelled() << "\n";
    out << chaos->traceString();
    for (const auto t : client->submitAttemptLog()) {
      out << "submit_ns=" << t.toNanos() << "\n";
    }
    return out.str();
  }

  sim::Simulator sim;
  std::unique_ptr<core::ClusterOverlay> overlay;
  core::ComputeCluster* gray = nullptr;
  core::ComputeCluster* beta = nullptr;
  core::ComputeCluster* alpha = nullptr;
  std::unique_ptr<core::AdaptivePlacement> placement;
  std::unique_ptr<core::LidcClient> client;
  std::unique_ptr<sim::ChaosEngine> chaos;
  telemetry::MetricsRegistry registry;
  std::vector<std::optional<Result<core::JobOutcome>>> outcomes;
  std::vector<std::uint8_t> published;
  std::vector<std::uint8_t> fetched;
  ndn::Name publishedName;
  std::size_t submitsAtTrip = 0;
  std::uint64_t grayComputeAtTrip = 0;
};

TEST(GrayFailuresTest, AllJobsCompleteWithZeroCorruptResultsDelivered) {
  GrayScenario scenario(/*chaosSeed=*/2024);
  scenario.run(/*count=*/10);

  // Every job completed despite the corruption + slow node + gray
  // gateway cocktail — and none of them "completed" on the gray
  // cluster, whose admissions were fabrications.
  for (std::size_t i = 0; i < scenario.outcomes.size(); ++i) {
    const auto& r = scenario.outcomes[i];
    ASSERT_TRUE(r.has_value()) << "job " << i << " never finished";
    ASSERT_TRUE((*r).ok()) << "job " << i << ": " << (*r).status();
    EXPECT_EQ((**r).finalStatus.state, k8s::JobState::kCompleted) << "job " << i;
    EXPECT_NE((**r).finalStatus.cluster, "gray") << "job " << i;
  }

  // The gray gateway really did bait jobs, and the watchdog + breaker
  // machinery caught it.
  EXPECT_GE(scenario.gray->gateway().counters().grayAdmitted, 1u);
  EXPECT_GE(scenario.client->watchdogTimeouts(), 1u);
  EXPECT_GE(scenario.client->breakerTrips(), 1u);
  ASSERT_GT(scenario.submitsAtTrip, 0u) << "gray breaker never tripped";

  // Post-trip, >= 90% of new submissions avoid the gray cluster (the
  // breaker cost steers the compute anycast to beta/alpha).
  const std::size_t submitsAfter =
      scenario.client->submitAttemptLog().size() - scenario.submitsAtTrip;
  const std::uint64_t grayAfter =
      scenario.gray->gateway().counters().computeReceived -
      scenario.grayComputeAtTrip;
  ASSERT_GT(submitsAfter, 0u);
  EXPECT_LE(static_cast<double>(grayAfter),
            0.10 * static_cast<double>(submitsAfter))
      << grayAfter << " of " << submitsAfter
      << " post-trip submissions still reached the gray cluster";

  // The data plane corrupted packets, every one was caught on-path
  // (corruption preserves the stale signature, so verification cannot
  // miss), and the retrieved object is byte-identical to the published
  // one: zero corrupt results delivered.
  EXPECT_GE(scenario.totalCorrupted(), 1u);
  EXPECT_EQ(scenario.totalIntegrityDrops(), scenario.totalCorrupted());
  ASSERT_FALSE(scenario.fetched.empty()) << "fetch never completed";
  EXPECT_EQ(scenario.fetched, scenario.published);

  // The alert plane sees the same story: integrity drops at the client
  // host cross the threshold rule.
  telemetry::AlertEngine alerts(scenario.sim);
  alerts.setValueSource([&] { return scenario.registry.flatten(); });
  alerts.addThresholdRule("integrity-drops", R"(lidc_integrity_drops_total{node="client-host"})",
                          telemetry::AlertComparison::kAbove, 0.0);
  alerts.evaluate();
  EXPECT_GE(alerts.firedTotal(), 1u);
}

TEST(GrayFailuresTest, StaleReplayWindowTogglesCacheAndIsTraced) {
  sim::Simulator sim;
  ndn::ContentStore cs;
  ndn::Data data((ndn::Name("/ndn/k8s/data/stale/v1")));
  data.setContent("old bytes");
  data.setFreshnessPeriod(sim::Duration::millis(100));
  data.sign();
  cs.insert(data, sim.now());

  ndn::Interest fresh((ndn::Name("/ndn/k8s/data/stale/v1")));
  fresh.setMustBeFresh(true);

  sim::ChaosEngine chaos(sim, /*seed=*/7);
  chaos.staleReplay("cache-replays", sim::Time::fromNanos(0) + sim::Duration::seconds(1),
                    sim::Duration::seconds(2),
                    [&cs](bool on) { cs.setServeStale(on); });

  bool beforeServed = true, duringServed = false, afterServed = true;
  sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::millis(500),
                 [&] { beforeServed = cs.find(fresh, sim.now()).has_value(); });
  sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(2),
                 [&] { duringServed = cs.find(fresh, sim.now()).has_value(); });
  sim.scheduleAt(sim::Time::fromNanos(0) + sim::Duration::seconds(4),
                 [&] { afterServed = cs.find(fresh, sim.now()).has_value(); });
  sim.run();

  // Entry expired at t=100 ms: a healthy cache misses, the gray window
  // re-serves the stale bytes, recovery restores freshness semantics.
  EXPECT_FALSE(beforeServed);
  EXPECT_TRUE(duringServed);
  EXPECT_FALSE(afterServed);
  EXPECT_NE(chaos.traceString().find("inject cache-replays"), std::string::npos);
  EXPECT_NE(chaos.traceString().find("recover cache-replays"), std::string::npos);
}

TEST(GrayFailuresTest, SameSeedGivesByteIdenticalRuns) {
  GrayScenario first(/*chaosSeed=*/2024);
  first.run(10);
  GrayScenario second(/*chaosSeed=*/2024);
  second.run(10);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());

  // The corruption draws really are seed-dependent.
  GrayScenario reseeded(/*chaosSeed=*/9090);
  reseeded.run(10);
  EXPECT_NE(first.fingerprint(), reseeded.fingerprint());
}

}  // namespace
}  // namespace lidc
