// End-to-end noisy-neighbor isolation (ISSUE 7 acceptance): three
// tenants share one saturated cluster through the QoS admission plane.
// A chaos-driven aggressor submits at ~10x its fair rate while two
// well-behaved tenants submit steadily. The claims: every well-behaved
// job completes; the DRR drain splits admitted work per the configured
// weights (within 15%) while all tenants stay saturated; the aggressor
// sees RESOURCE_EXHAUSTED (quota nacks with backoff), never hard
// failures; the sustained-rejection alert fires with a non-empty
// flight-recorder window; and the whole run is byte-identical per seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "qos/admission.hpp"
#include "qos/tenant.hpp"
#include "sim/chaos.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"

namespace lidc {
namespace {

/// One 4-core sleeper cluster behind the QoS admission plane; tenants
/// acme / blue (well-behaved) and noisy (the aggressor), equal weights.
struct QosScenario {
  QosScenario() {
    auto makeTenant = [](const std::string& id) {
      qos::TenantSpec spec;
      spec.id = id;
      spec.weight = 1.0;
      return spec;
    };
    EXPECT_TRUE(tenants.registerTenant(makeTenant("acme")).ok());
    EXPECT_TRUE(tenants.registerTenant(makeTenant("blue")).ok());
    qos::TenantSpec aggressor = makeTenant("noisy");
    // A modest submit-rate bucket so the 10x drive also exercises the
    // rate gate (the queue cap sheds the rest).
    aggressor.quota.submitRatePerSec = 2.0;
    aggressor.quota.submitBurst = 4.0;
    EXPECT_TRUE(tenants.registerTenant(aggressor).ok());

    overlay = std::make_unique<core::ClusterOverlay>(sim);
    overlay->addNode("client-host");

    core::ComputeClusterConfig config;
    config.name = "east";
    config.nodeCount = 1;
    config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
    config.tenants = &tenants;
    config.admission.maxQueuePerTenant = 8;
    auto& east = overlay->addCluster(config);
    east.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(5);
      return result;
    });
    east.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay->connect("client-host", "east",
                     net::LinkParams{sim::Duration::millis(5)});
    overlay->announceCluster("east");

    overlay->attachTelemetry(registry);
    recorder = std::make_unique<telemetry::FlightRecorder>(sim, 4096);
    overlay->attachFlightRecorder(recorder.get());

    // Sustained quota rejection on the aggressor drives the alert.
    telemetry::AlertEngineOptions alertOptions;
    alertOptions.eventWindow = 16;
    alertOptions.evaluateInterval = sim::Duration::seconds(1);
    alerts = std::make_unique<telemetry::AlertEngine>(sim, alertOptions);
    alerts->setValueSource([this] { return registry.flatten("lidc_qos"); });
    alerts->setFlightRecorder(recorder.get());
    alerts->addThresholdRule(
        "noisy-quota-rejects",
        "lidc_qos_rejected_total{cluster=\"east\",reason=\"queue-full\","
        "tenant=\"noisy\"}",
        telemetry::AlertComparison::kAbove, 10.0, /*forCount=*/2);

    acme = makeClient("acme", 101);
    blue = makeClient("blue", 202);
    // The aggressor gives up fast; its work is disposable.
    core::ClientOptions aggressorOptions = clientOptions("noisy");
    aggressorOptions.maxSubmitRetries = 2;
    noisy = std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), "noisy-user",
        aggressorOptions, /*seed=*/303);

    chaos = std::make_unique<sim::ChaosEngine>(sim, /*seed=*/7);
    chaos->setFlightRecorder(recorder.get());
  }

  [[nodiscard]] core::ClientOptions clientOptions(
      const std::string& tenant) const {
    core::ClientOptions options;
    options.tenant = tenant;
    // Queue waits under saturation reach tens of seconds; the Interest
    // must outlive them or queued work expires into churn.
    options.interestLifetime = sim::Duration::seconds(60);
    options.statusPollInterval = sim::Duration::seconds(2);
    options.maxSubmitRetries = 12;
    options.backoffMax = sim::Duration::seconds(8);
    return options;
  }

  std::unique_ptr<core::LidcClient> makeClient(const std::string& tenant,
                                               std::uint64_t seed) {
    return std::make_unique<core::LidcClient>(
        *overlay->topology().node("client-host"), tenant + "-user",
        clientOptions(tenant), seed);
  }

  static core::ComputeRequest sleepRequest() {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    return request;
  }

  void submitTracked(core::LidcClient& client,
                     std::vector<std::optional<Result<core::JobOutcome>>>& out) {
    out.emplace_back();
    const std::size_t slot = out.size() - 1;
    client.runToCompletion(sleepRequest(),
                           [&out, slot](Result<core::JobOutcome> r) {
                             out[slot] = std::move(r);
                           });
  }

  /// Well-behaved tenants submit every 2s through t=38s (saturating:
  /// offered rate > fair drain rate); the aggressor floods at 10x fair
  /// rate over t=[0.5s, 38s). Admitted counts snapshot at t=40s, while
  /// every tenant is still saturated.
  void run() {
    alerts->start();
    for (int i = 0; i < 20; ++i) {
      sim.scheduleAt(sim::Time() + sim::Duration::seconds(2 * i), [this] {
        submitTracked(*acme, acmeOutcomes);
        submitTracked(*blue, blueOutcomes);
      });
    }
    // Fair per-tenant drain is ~0.23 jobs/s (4 cores / ~5.8s per job,
    // three ways); 10x that is one submit every ~0.43s.
    chaos->noisyNeighbor("noisy-flood", sim::Time() + sim::Duration::millis(500),
                         sim::Time() + sim::Duration::seconds(38),
                         sim::Duration::millis(430),
                         [this] { submitTracked(*noisy, noisyOutcomes); });

    sim.scheduleAt(sim::Time() + sim::Duration::seconds(40), [this] {
      const auto* admission =
          overlay->cluster("east")->gateway().admission();
      for (const std::string tenant : {"acme", "blue", "noisy"}) {
        admittedAt40[tenant] = admission->admitted(tenant);
      }
    });
    sim.scheduleAt(sim::Time() + sim::Duration::seconds(120),
                   [this] { alerts->stop(); });
    sim.run();
  }

  [[nodiscard]] const qos::AdmissionController& admission() const {
    return *overlay->cluster("east")->gateway().admission();
  }

  /// Every reproducible observable in one string.
  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    out << "--- chaos ---\n" << chaos->traceString();
    out << "--- admission ---\n" << admission().decisionLog();
    auto dumpOutcomes =
        [&out](const std::string& who,
               const std::vector<std::optional<Result<core::JobOutcome>>>& v) {
          out << "--- " << who << " ---\n";
          for (std::size_t i = 0; i < v.size(); ++i) {
            out << i << ": ";
            if (!v[i].has_value()) {
              out << "<pending>\n";
            } else if (!(*v[i]).ok()) {
              out << (*v[i]).status() << "\n";
            } else {
              out << k8s::jobStateName((**v[i]).finalStatus.state) << "\n";
            }
          }
        };
    dumpOutcomes("acme", acmeOutcomes);
    dumpOutcomes("blue", blueOutcomes);
    dumpOutcomes("noisy", noisyOutcomes);
    out << "--- alerts ---\n" << alerts->serializedLog();
    return out.str();
  }

  sim::Simulator sim;
  telemetry::MetricsRegistry registry;
  qos::TenantRegistry tenants;  // outlives the overlay's gateways
  std::unique_ptr<core::ClusterOverlay> overlay;
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  std::unique_ptr<telemetry::AlertEngine> alerts;
  std::unique_ptr<core::LidcClient> acme;
  std::unique_ptr<core::LidcClient> blue;
  std::unique_ptr<core::LidcClient> noisy;
  std::unique_ptr<sim::ChaosEngine> chaos;
  std::vector<std::optional<Result<core::JobOutcome>>> acmeOutcomes;
  std::vector<std::optional<Result<core::JobOutcome>>> blueOutcomes;
  std::vector<std::optional<Result<core::JobOutcome>>> noisyOutcomes;
  std::map<std::string, std::uint64_t> admittedAt40;
};

TEST(QosIsolationTest, WellBehavedTenantsCompleteDespiteAggressor) {
  QosScenario scenario;
  scenario.run();

  // Every well-behaved job reached Completed; the aggressor's flood
  // never turned into hard failures for its neighbors.
  ASSERT_EQ(scenario.acmeOutcomes.size(), 20u);
  ASSERT_EQ(scenario.blueOutcomes.size(), 20u);
  for (const auto* outcomes : {&scenario.acmeOutcomes, &scenario.blueOutcomes}) {
    for (std::size_t i = 0; i < outcomes->size(); ++i) {
      const auto& slot = (*outcomes)[i];
      ASSERT_TRUE(slot.has_value()) << "job " << i << " never finished";
      ASSERT_TRUE((*slot).ok()) << "job " << i << ": " << (*slot).status();
      EXPECT_EQ((**slot).finalStatus.state, k8s::JobState::kCompleted);
    }
  }

  // Admitted-work split at t=40s (all tenants saturated): within 15%
  // of the configured equal weights.
  std::uint64_t total = 0;
  for (const auto& [tenant, count] : scenario.admittedAt40) total += count;
  ASSERT_GT(total, 0u);
  for (const auto& [tenant, count] : scenario.admittedAt40) {
    const double share = static_cast<double>(count) / static_cast<double>(total);
    EXPECT_NEAR(share, 1.0 / 3.0, 0.15 / 3.0) << tenant << " admitted " << count
                                              << " of " << total;
  }

  // The aggressor was throttled, not crashed: rejects happened, and
  // every terminal failure it saw is RESOURCE_EXHAUSTED.
  EXPECT_GT(scenario.admission().rejected("noisy"), 0u);
  int aggressorFailures = 0;
  for (const auto& slot : scenario.noisyOutcomes) {
    if (!slot.has_value() || (*slot).ok()) continue;
    ++aggressorFailures;
    EXPECT_EQ((*slot).status().code(), StatusCode::kResourceExhausted)
        << (*slot).status();
  }
  EXPECT_GT(aggressorFailures, 0) << "the 10x flood should exceed the quota";
}

TEST(QosIsolationTest, SustainedRejectionFiresAlertWithFlightWindow) {
  QosScenario scenario;
  scenario.run();

  ASSERT_GE(scenario.alerts->firedTotal(), 1u);
  const telemetry::Alert& first = scenario.alerts->alerts()[0];
  EXPECT_EQ(first.rule, "noisy-quota-rejects");
  // The post-mortem window holds the actual QoS reject events.
  ASSERT_FALSE(first.events.empty());
  bool sawQosReject = false;
  for (const auto& event : first.events) {
    if (event.component == "qos" &&
        event.message.find("tenant=noisy") != std::string::npos) {
      sawQosReject = true;
    }
  }
  EXPECT_TRUE(sawQosReject);
}

TEST(QosIsolationTest, RunsAreByteIdenticalPerSeed) {
  const auto run = [] {
    QosScenario scenario;
    scenario.run();
    return scenario.fingerprint();
  };
  const std::string first = run();
  EXPECT_NE(first.find("reject"), std::string::npos);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace lidc
