// Cross-cluster data retrieval: /ndn/k8s/data is anycast to every
// cluster's data lake, but an object produced on one cluster lives only
// there. The best-route strategy fails over on the nearer lake's
// NoRoute nack until it reaches the lake that actually holds the
// object — decentralized data location, no catalog needed.
// Also: gateway-side dataset-existence validation.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

class CrossClusterDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    overlay_ = std::make_unique<core::ClusterOverlay>(sim_);
    overlay_->addNode("client-host");
    near_ = &addCluster("near", 5);
    far_ = &addCluster("far", 50);
    client_ = std::make_unique<core::LidcClient>(
        *overlay_->topology().node("client-host"), "user");
  }

  core::ComputeCluster& addCluster(const std::string& name, int linkMs) {
    core::ComputeClusterConfig config;
    config.name = name;
    auto& cluster = overlay_->addCluster(config);
    overlay_->connect("client-host", name,
                      net::LinkParams{sim::Duration::millis(linkMs)});
    overlay_->announceCluster(name);
    return cluster;
  }

  sim::Simulator sim_;
  std::unique_ptr<core::ClusterOverlay> overlay_;
  core::ComputeCluster* near_ = nullptr;
  core::ComputeCluster* far_ = nullptr;
  std::unique_ptr<core::LidcClient> client_;
};

TEST_F(CrossClusterDataTest, FetchFailsOverToTheLakeHoldingTheObject) {
  // Object exists only on the *far* cluster's data lake.
  ASSERT_TRUE(far_->store()
                  .putText(ndn::Name("/ndn/k8s/data/results/unique-obj"),
                           "only on far")
                  .ok());

  std::optional<std::string> fetched;
  client_->fetchData(ndn::Name("/ndn/k8s/data/results/unique-obj"),
                     [&](Result<std::vector<std::uint8_t>> r) {
                       ASSERT_TRUE(r.ok()) << r.status();
                       fetched = std::string(r->begin(), r->end());
                     });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "only on far");
  // The near lake was asked first and rejected.
  EXPECT_GE(near_->fileServer().interestsRejected(), 1u);
  EXPECT_GE(far_->fileServer().interestsServed(), 1u);
}

TEST_F(CrossClusterDataTest, ObjectNowhereFailsCleanly) {
  std::optional<Status> failure;
  client_->fetchData(ndn::Name("/ndn/k8s/data/ghost"),
                     [&](Result<std::vector<std::uint8_t>> r) {
                       ASSERT_FALSE(r.ok());
                       failure = r.status();
                     });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kNotFound);
}

TEST_F(CrossClusterDataTest, GatewayRejectsJobsForMissingDatasets) {
  // Datasets were never loaded on these clusters, so a well-formed BLAST
  // request must be rejected by the data-lake existence validator
  // before any job launches.
  core::ComputeRequest request;
  request.app = "BLAST";
  request.cpu = MilliCpu::fromCores(2);
  request.memory = ByteSize::fromGiB(4);
  request.params["srr_id"] = "SRR2931415";

  std::optional<Status> failure;
  client_->submit(request, [&](Result<core::SubmitResult> r) {
    ASSERT_FALSE(r.ok());
    failure = r.status();
  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  // Dataset-missing is a cluster-local condition: each gateway nacks so
  // the network can try elsewhere; with no lake holding the data the
  // client sees the placement as unavailable.
  EXPECT_EQ(failure->code(), StatusCode::kUnavailable);
  EXPECT_EQ(near_->gateway().counters().jobsLaunched, 0u);
  EXPECT_EQ(far_->gateway().counters().jobsLaunched, 0u);
  EXPECT_GE(near_->gateway().counters().computeRejected +
                far_->gateway().counters().computeRejected,
            2u);

  // After loading datasets the same request passes validation.
  genomics::DatasetCatalog catalog(0.05);
  near_->loadGenomicsDatasets(catalog);
  far_->loadGenomicsDatasets(catalog);
  std::optional<core::SubmitResult> ack;
  client_->submit(request, [&](Result<core::SubmitResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ack = *r;
  });
  sim_.runUntil(sim_.now() + sim::Duration::seconds(5));
  EXPECT_TRUE(ack.has_value());
}

}  // namespace
}  // namespace lidc
