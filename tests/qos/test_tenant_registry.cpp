// TenantRegistry: registration rules, publish-byte budgets, telemetry
// mirror parity.
#include "qos/tenant.hpp"

#include <gtest/gtest.h>

namespace lidc::qos {
namespace {

TenantSpec spec(const std::string& id, double weight = 1.0) {
  TenantSpec s;
  s.id = id;
  s.weight = weight;
  return s;
}

TEST(TenantIdTest, ValidatesNdnAndNamespaceSafety) {
  EXPECT_TRUE(isValidTenantId("astro"));
  EXPECT_TRUE(isValidTenantId("genomics-2"));
  EXPECT_TRUE(isValidTenantId("a"));
  EXPECT_FALSE(isValidTenantId(""));
  EXPECT_FALSE(isValidTenantId("Upper"));
  EXPECT_FALSE(isValidTenantId("has space"));
  EXPECT_FALSE(isValidTenantId("slash/y"));
  EXPECT_FALSE(isValidTenantId("dot.ted"));
  EXPECT_FALSE(isValidTenantId(std::string(49, 'a')));
  EXPECT_TRUE(isValidTenantId(std::string(48, 'a')));
}

TEST(TenantRegistryTest, RegistrationRules) {
  TenantRegistry registry;
  EXPECT_TRUE(registry.registerTenant(spec("astro")).ok());
  EXPECT_EQ(registry.registerTenant(spec("astro")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.registerTenant(spec("BAD")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.registerTenant(spec("weightless", 0.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.registerTenant(spec("geo", 2.0)).ok());

  ASSERT_NE(registry.find("astro"), nullptr);
  EXPECT_EQ(registry.find("ghost"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.ids(), (std::vector<std::string>{"astro", "geo"}));
}

TEST(TenantRegistryTest, PublishBudgetIsCumulative) {
  TenantRegistry registry;
  TenantSpec capped = spec("astro");
  capped.quota.maxPublishBytes = 100;
  ASSERT_TRUE(registry.registerTenant(capped).ok());
  ASSERT_TRUE(registry.registerTenant(spec("unmetered")).ok());

  EXPECT_TRUE(registry.chargePublish("astro", 60).ok());
  EXPECT_TRUE(registry.chargePublish("astro", 40).ok());
  // Budget exhausted: the charge is refused and NOT applied.
  EXPECT_EQ(registry.chargePublish("astro", 1).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(registry.publishedBytes("astro"), 100u);
  EXPECT_EQ(registry.publishRejects("astro"), 1u);

  // Zero quota = unlimited.
  EXPECT_TRUE(registry.chargePublish("unmetered", 1u << 30).ok());
  // Unknown tenants never accrue state.
  EXPECT_EQ(registry.chargePublish("ghost", 1).code(), StatusCode::kNotFound);
}

TEST(TenantRegistryTest, TelemetryMirrorsPublishAccounting) {
  TenantRegistry registry;
  TenantSpec capped = spec("astro");
  capped.quota.maxPublishBytes = 10;
  ASSERT_TRUE(registry.registerTenant(capped).ok());
  telemetry::MetricsRegistry metrics;
  registry.attachTelemetry(metrics);

  ASSERT_TRUE(registry.chargePublish("astro", 10).ok());
  ASSERT_FALSE(registry.chargePublish("astro", 5).ok());

  const auto flat = metrics.flatten("lidc_qos");
  EXPECT_EQ(flat.at("lidc_qos_publish_bytes{tenant=\"astro\"}"), 10.0);
  EXPECT_EQ(flat.at("lidc_qos_publish_rejected_total{tenant=\"astro\"}"), 1.0);
}

}  // namespace
}  // namespace lidc::qos
