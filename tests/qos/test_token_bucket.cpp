// Token bucket on simulated time: lazy refill, burst cap, unlimited mode.
#include "qos/token_bucket.hpp"

#include <gtest/gtest.h>

namespace lidc::qos {
namespace {

sim::Time at(double seconds) {
  return sim::Time() + sim::Duration::seconds(seconds);
}

TEST(TokenBucketTest, BurstThenRefusal) {
  TokenBucket bucket(1.0, 3.0);
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_FALSE(bucket.tryTake(at(0)));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(2.0, 2.0);
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_FALSE(bucket.tryTake(at(0)));
  // 0.5 s at 2 tokens/s = exactly one token; the epsilon admits the
  // exact-rate submitter.
  EXPECT_TRUE(bucket.tryTake(at(0.5)));
  EXPECT_FALSE(bucket.tryTake(at(0.5)));
}

TEST(TokenBucketTest, RefillCappedAtBurst) {
  TokenBucket bucket(100.0, 2.0);
  EXPECT_TRUE(bucket.tryTake(at(0)));
  EXPECT_TRUE(bucket.tryTake(at(0)));
  // A long idle period banks at most `burst` tokens.
  EXPECT_NEAR(bucket.tokens(at(1000)), 2.0, 1e-9);
  EXPECT_TRUE(bucket.tryTake(at(1000)));
  EXPECT_TRUE(bucket.tryTake(at(1000)));
  EXPECT_FALSE(bucket.tryTake(at(1000)));
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.tryTake(at(0)));
}

TEST(TokenBucketTest, TimeNeverRunsBackwards) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.tryTake(at(10)));
  // A stale timestamp neither refills nor crashes.
  EXPECT_FALSE(bucket.tryTake(at(5)));
  EXPECT_TRUE(bucket.tryTake(at(11)));
}

}  // namespace
}  // namespace lidc::qos
