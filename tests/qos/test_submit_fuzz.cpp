// Seeded fuzzing of the tenant-scoped submit path: malformed and
// missing tenant components, garbage job descriptions, random bytes.
// The invariants: the parser never crashes (ASan/UBSan clean in CI),
// unknown or malformed tenants are rejected cleanly — exactly one
// terminal reply per Interest — and the gateway keeps serving valid
// work afterwards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/gateway.hpp"
#include "core/wire_format.hpp"
#include "ndn/app_face.hpp"
#include "qos/tenant.hpp"

namespace lidc::core {
namespace {

class SubmitFuzzTest : public ::testing::Test {
 protected:
  SubmitFuzzTest() : forwarder_("gw-node", sim_), cluster_("cluster-x", sim_) {
    cluster_.addNode("n0", k8s::Resources{MilliCpu::fromCores(8),
                                          ByteSize::fromGiB(16)});
    (void)cluster_.createPvc("datalake-pvc", ByteSize::fromGiB(1));
    cluster_.registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(1);
      result.resultPath = "/ndn/k8s/data/results/out";
      return result;
    });

    qos::TenantSpec good;
    good.id = "good";
    EXPECT_TRUE(tenants_.registerTenant(good).ok());

    gateway_ = std::make_unique<Gateway>(forwarder_, cluster_,
                                         ValidatorRegistry{}, options_);
    gateway_->jobs().mapAppToImage("sleep", "sleeper");
    gateway_->enableQos(tenants_);

    client_ = std::make_shared<ndn::AppFace>("app://fuzzer", sim_, 99);
    forwarder_.addFace(client_);
    forwarder_.cs().setCapacity(0);
  }

  ComputeRequest sleepRequest() {
    ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    request.params["duration_s"] = "1";
    return request;
  }

  sim::Simulator sim_;
  ndn::Forwarder forwarder_;
  k8s::Cluster cluster_;
  qos::TenantRegistry tenants_;
  GatewayOptions options_;
  std::unique_ptr<Gateway> gateway_;
  std::shared_ptr<ndn::AppFace> client_;
};

/// One random name component: printable garbage, raw bytes, separators,
/// oversized runs — whatever the wire could carry.
std::string fuzzComponent(Rng& rng) {
  const std::uint64_t shape = rng.uniform(5);
  std::string out;
  const std::size_t len = static_cast<std::size_t>(rng.uniform(65));
  switch (shape) {
    case 0:  // lowercase-ish, sometimes a valid tenant id
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<char>('a' + rng.uniform(26)));
      }
      break;
    case 1:  // raw bytes, including NUL and high bit
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<char>(rng.uniform(256)));
      }
      break;
    case 2:  // k=v-shaped garbage aimed at the job-description parser
      out = "app=";
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<char>('!' + rng.uniform(94)));
      }
      break;
    case 3:  // separator soup
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back("&=%/ "[rng.uniform(5)]);
      }
      break;
    default:  // oversized single-char run (bounded-log check)
      out.assign(len * 8, 'x');
      break;
  }
  return out;
}

TEST_F(SubmitFuzzTest, ParserNeverCrashesOnRandomNames) {
  Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    ndn::Name name = kSubmitPrefix;
    const std::uint64_t extra = rng.uniform(4);
    for (std::uint64_t c = 0; c < extra; ++c) name.append(fuzzComponent(rng));
    const auto parsed = parseSubmitName(name);
    if (parsed.ok()) {
      // Anything that parses must carry a non-empty tenant and a
      // round-trippable request.
      EXPECT_FALSE(parsed->first.empty());
      EXPECT_FALSE(parsed->second.app.empty());
    }
  }
  // Truncated names and foreign prefixes are errors, not crashes.
  EXPECT_FALSE(parseSubmitName(kSubmitPrefix).ok());
  EXPECT_FALSE(parseSubmitName(ndn::Name("/ndn/k8s/compute/x")).ok());
  ndn::Name emptyTenant = kSubmitPrefix;
  emptyTenant.append(std::string_view{});
  emptyTenant.append("app=sleep");
  EXPECT_FALSE(parseSubmitName(emptyTenant).ok());
}

TEST_F(SubmitFuzzTest, GatewaySurvivesMalformedSubmitStorm) {
  Rng rng(4242);
  const ndn::Name validTemplate = makeSubmitName("good", sleepRequest());

  int replies = 0;
  int nacks = 0;
  int timeouts = 0;
  int sent = 0;
  auto express = [&](const ndn::Name& name) {
    ++sent;
    ndn::Interest interest(name);
    client_->expressInterest(
        interest, [&](const ndn::Interest&, const ndn::Data&) { ++replies; },
        [&](const ndn::Interest&, const ndn::Nack&) { ++nacks; },
        [&](const ndn::Interest&) { ++timeouts; });
  };

  for (int i = 0; i < 300; ++i) {
    ndn::Name name = kSubmitPrefix;
    // Paced so the occasional fuzz input that parses into a runnable
    // job cannot pile up queue waits past the Interest lifetime — the
    // storm probes robustness, not capacity.
    const sim::Time sendAt = sim_.now() + sim::Duration::millis(50 * i);
    switch (rng.uniform(4)) {
      case 0:  // missing tenant: job description where the tenant goes
        name.append("app=sleep&cpu_m=1000&mem_b=1073741824");
        break;
      case 1: {  // unknown tenant, valid job description
        name = makeSubmitName("evil" + std::to_string(rng.uniform(10)),
                              sleepRequest());
        break;
      }
      case 2: {  // valid tenant, mangled job description
        name.append("good");
        name.append(fuzzComponent(rng));
        break;
      }
      default: {  // random component soup
        const std::uint64_t extra = rng.uniform(4);
        for (std::uint64_t c = 0; c < extra; ++c) {
          name.append(fuzzComponent(rng));
        }
        break;
      }
    }
    sim_.scheduleAt(sendAt, [&express, name] { express(name); });
  }
  sim_.run();

  // Every malformed Interest got exactly one terminal signal — reject
  // Data or nack — and none brought the gateway down.
  EXPECT_EQ(replies + nacks + timeouts, sent);
  EXPECT_EQ(timeouts, 0);
  EXPECT_GT(gateway_->admission()->rejectedUnknownTenant(), 0u);

  // The gateway still serves a clean tenant-scoped submit.
  KvMap ack;
  client_->expressInterest(ndn::Interest(validTemplate),
                           [&](const ndn::Interest&, const ndn::Data& data) {
                             ack = decodeKv(data.contentAsString());
                           });
  sim_.run();
  ASSERT_TRUE(ack.count("job_id")) << "valid submit must still be admitted";
  EXPECT_EQ(ack.at("cluster"), "cluster-x");
}

}  // namespace
}  // namespace lidc::core
