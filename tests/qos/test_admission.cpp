// AdmissionController in isolation: DRR fairness, strict FIFO within a
// tenant, rate/quota/queue gates, priority preemption, expiry, and the
// byte-identical decision log the determinism suite pins.
#include "qos/admission.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace lidc::qos {
namespace {

TenantSpec makeSpec(const std::string& id, double weight = 1.0,
                    int priorityClass = 0) {
  TenantSpec spec;
  spec.id = id;
  spec.weight = weight;
  spec.priorityClass = priorityClass;
  return spec;
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionController& controller(AdmissionOptions options = {}) {
    controller_ = std::make_unique<AdmissionController>(sim_, tenants_,
                                                        "cluster-x", options);
    controller_->setCapacityProbe(
        [this](const AdmissionJob&) { return allow_; });
    return *controller_;
  }

  AdmissionJob job(const std::string& tenant, const std::string& tag,
                   std::uint64_t cpu = 100, std::uint64_t mem = 1 << 20) {
    AdmissionJob j;
    j.tenant = tenant;
    j.cpuMillicores = cpu;
    j.memoryBytes = mem;
    j.tag = tag;
    j.launch = [this, tag] { launches_.push_back(tag); };
    j.evict = [this, tag](const std::string& reason) {
      evictions_.push_back(tag + ":" + reason);
    };
    return j;
  }

  sim::Simulator sim_;
  TenantRegistry tenants_;
  std::unique_ptr<AdmissionController> controller_;
  bool allow_ = true;
  std::vector<std::string> launches_;
  std::vector<std::string> evictions_;
};

TEST_F(AdmissionTest, DrrHonorsWeightsWithFifoWithinTenant) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("alpha", 1.0)).ok());
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("bravo", 2.0)).ok());
  // deficitCap=1 so blocked tenants cannot bank bursts: the post-open
  // drain order is the per-round weighted interleave.
  AdmissionOptions options;
  options.deficitCap = 1.0;
  auto& ctl = controller(options);

  // Queue everything while downstream is blocked, then open the gate:
  // the drain order is pure DRR.
  allow_ = false;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(ctl.offer(job("alpha", "a" + std::to_string(i))),
              AdmitDecision::kQueued);
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(ctl.offer(job("bravo", "b" + std::to_string(i))),
              AdmitDecision::kQueued);
  }
  EXPECT_TRUE(launches_.empty());
  EXPECT_EQ(ctl.queueDepth(), 12u);

  allow_ = true;
  ctl.drain();

  // weight 2 drains two jobs per round to alpha's one; once bravo
  // empties, alpha continues alone. FIFO within each tenant throughout.
  const std::vector<std::string> expected{"a0", "b0", "b1", "a1", "b2", "b3",
                                          "a2", "b4", "b5", "a3", "a4", "a5"};
  EXPECT_EQ(launches_, expected);
  EXPECT_EQ(ctl.admitted("alpha"), 6u);
  EXPECT_EQ(ctl.admitted("bravo"), 6u);
  EXPECT_EQ(ctl.queueDepth(), 0u);
}

TEST_F(AdmissionTest, TokenBucketRejectsBurstOverRate) {
  TenantSpec spec = makeSpec("metered");
  spec.quota.submitRatePerSec = 1.0;
  spec.quota.submitBurst = 2.0;
  ASSERT_TRUE(tenants_.registerTenant(spec).ok());
  auto& ctl = controller();

  EXPECT_EQ(ctl.offer(job("metered", "j0")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("metered", "j1")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("metered", "j2")), AdmitDecision::kRejectedRate);
  EXPECT_EQ(ctl.rejected("metered", "rate"), 1u);
  EXPECT_EQ(ctl.rejected("metered"), 1u);

  // Tokens refill on simulated time.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  EXPECT_EQ(ctl.offer(job("metered", "j3")), AdmitDecision::kQueued);
}

TEST_F(AdmissionTest, QuotaCountsQueuedPlusInFlight) {
  TenantSpec spec = makeSpec("capped");
  spec.quota.maxJobsInFlight = 2;
  ASSERT_TRUE(tenants_.registerTenant(spec).ok());
  auto& ctl = controller();

  // Both admitted jobs launch immediately and stay in flight.
  EXPECT_EQ(ctl.offer(job("capped", "j0")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("capped", "j1")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.jobsInFlight("capped"), 2u);
  EXPECT_EQ(ctl.offer(job("capped", "j2")), AdmitDecision::kRejectedQuota);
  EXPECT_EQ(ctl.rejected("capped", "quota"), 1u);

  // Releasing an in-flight job frees quota for the next offer.
  ctl.releaseJob("capped", 100, 1 << 20);
  EXPECT_EQ(ctl.offer(job("capped", "j3")), AdmitDecision::kQueued);
}

TEST_F(AdmissionTest, CpuQuotaGatesProjectedUsage) {
  TenantSpec spec = makeSpec("cpu-capped");
  spec.quota.maxCpuMillicores = 250;
  ASSERT_TRUE(tenants_.registerTenant(spec).ok());
  auto& ctl = controller();

  EXPECT_EQ(ctl.offer(job("cpu-capped", "j0", 100)), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("cpu-capped", "j1", 100)), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("cpu-capped", "j2", 100)),
            AdmitDecision::kRejectedQuota);
}

TEST_F(AdmissionTest, PerTenantQueueCap) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("busy")).ok());
  AdmissionOptions options;
  options.maxQueuePerTenant = 2;
  auto& ctl = controller(options);

  allow_ = false;
  EXPECT_EQ(ctl.offer(job("busy", "j0")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("busy", "j1")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("busy", "j2")), AdmitDecision::kRejectedQueueFull);
  EXPECT_EQ(ctl.rejected("busy", "queue-full"), 1u);
}

TEST_F(AdmissionTest, HighPriorityPreemptsLowestQueuedWhenSaturated) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("low", 1.0, 0)).ok());
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("mid", 1.0, 1)).ok());
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("high", 1.0, 2)).ok());
  AdmissionOptions options;
  options.maxQueueTotal = 2;
  auto& ctl = controller(options);

  allow_ = false;
  ASSERT_EQ(ctl.offer(job("low", "l0")), AdmitDecision::kQueued);
  ASSERT_EQ(ctl.offer(job("low", "l1")), AdmitDecision::kQueued);

  // Same priority cannot preempt: the queue is simply full.
  EXPECT_EQ(ctl.offer(job("mid", "m0")), AdmitDecision::kQueued)
      << "mid outranks low, so it preempts";
  // l1 (the newest queued entry of the lowest class) was evicted.
  EXPECT_EQ(evictions_, (std::vector<std::string>{"l1:preempted"}));
  EXPECT_EQ(ctl.preempted("low"), 1u);

  // A second same-priority offer from `low` cannot preempt anyone.
  EXPECT_EQ(ctl.offer(job("low", "l2")), AdmitDecision::kRejectedQueueFull);

  // high preempts again — the remaining low entry goes first.
  EXPECT_EQ(ctl.offer(job("high", "h0")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.preempted("low"), 2u);
  EXPECT_EQ(ctl.queueDepth("low"), 0u);
  EXPECT_EQ(ctl.queueDepth("mid"), 1u);
  EXPECT_EQ(ctl.queueDepth("high"), 1u);

  const std::string& log = ctl.decisionLog();
  EXPECT_NE(log.find("preempt tenant=low by=mid tag=l1"), std::string::npos);
  EXPECT_NE(log.find("preempt tenant=low by=high tag=l0"), std::string::npos);
}

TEST_F(AdmissionTest, QueuedEntriesExpire) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("slow")).ok());
  auto& ctl = controller();

  allow_ = false;
  AdmissionJob j = job("slow", "stale");
  j.expiresAt = sim_.now() + sim::Duration::millis(150);
  ASSERT_EQ(ctl.offer(std::move(j)), AdmitDecision::kQueued);

  // The backstop timer keeps draining while work is queued; once past
  // the deadline the entry is dropped and the sim goes idle.
  sim_.run();
  EXPECT_EQ(ctl.expired("slow"), 1u);
  EXPECT_EQ(ctl.queueDepth(), 0u);
  EXPECT_EQ(evictions_, (std::vector<std::string>{"stale:expired"}));
  EXPECT_TRUE(launches_.empty());
}

TEST_F(AdmissionTest, UnknownTenantGetsNoState) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("real")).ok());
  auto& ctl = controller();

  EXPECT_EQ(ctl.offer(job("ghost", "g0")),
            AdmitDecision::kRejectedUnknownTenant);
  const std::string flood(4096, 'x');
  EXPECT_EQ(ctl.offer(job(flood, "g1")), AdmitDecision::kRejectedUnknownTenant);
  EXPECT_EQ(ctl.rejectedUnknownTenant(), 2u);
  // No per-tenant state accrued, and the log line is bounded.
  EXPECT_EQ(ctl.admitted("ghost"), 0u);
  EXPECT_EQ(ctl.decisionLog().find(flood), std::string::npos);
}

TEST_F(AdmissionTest, TelemetryMirrorsCounters) {
  ASSERT_TRUE(tenants_.registerTenant(makeSpec("alpha")).ok());
  auto& ctl = controller();
  telemetry::MetricsRegistry metrics;
  ctl.attachTelemetry(metrics);

  EXPECT_EQ(ctl.offer(job("alpha", "j0")), AdmitDecision::kQueued);
  EXPECT_EQ(ctl.offer(job("ghost", "g0")),
            AdmitDecision::kRejectedUnknownTenant);

  const auto flat = metrics.flatten("lidc_qos");
  EXPECT_EQ(
      flat.at("lidc_qos_admitted_total{cluster=\"cluster-x\",tenant=\"alpha\"}"),
      1.0);
  EXPECT_EQ(flat.at("lidc_qos_rejected_total{cluster=\"cluster-x\","
                    "reason=\"unknown-tenant\",tenant=\"unknown\"}"),
            1.0);
  EXPECT_EQ(flat.at("lidc_qos_queue_depth{cluster=\"cluster-x\"}"), 0.0);
  // The queue-wait histogram fed one sample at zero wait.
  EXPECT_EQ(flat.at("lidc_qos_queue_wait_us_count{cluster=\"cluster-x\","
                    "tenant=\"alpha\"}"),
            1.0);
}

// Two identical runs — same seed-free deterministic schedule — must
// produce byte-identical decision logs (the admission half of the
// end-to-end determinism pin).
TEST_F(AdmissionTest, DecisionLogIsByteIdenticalAcrossRuns) {
  auto runOnce = [](std::string& logOut) {
    sim::Simulator sim;
    TenantRegistry tenants;
    ASSERT_TRUE(tenants.registerTenant(makeSpec("alpha", 1.0, 0)).ok());
    ASSERT_TRUE(tenants.registerTenant(makeSpec("bravo", 2.0, 1)).ok());
    AdmissionOptions options;
    options.maxQueueTotal = 6;
    AdmissionController ctl(sim, tenants, "cluster-x", options);
    // Downstream admits at most two jobs at a time; each launch
    // schedules its own release, so the backstop timer paces the rest.
    std::size_t inflight = 0;
    ctl.setCapacityProbe(
        [&inflight](const AdmissionJob&) { return inflight < 2; });

    auto offerJob = [&](const std::string& tenant, const std::string& tag) {
      AdmissionJob j;
      j.tenant = tenant;
      j.cpuMillicores = 100;
      j.memoryBytes = 1 << 20;
      j.tag = tag;
      j.launch = [&sim, &ctl, &inflight, tenant] {
        ++inflight;
        sim.scheduleAfter(sim::Duration::millis(250),
                          [&ctl, &inflight, tenant] {
                            --inflight;
                            ctl.releaseJob(tenant, 100, 1 << 20);
                          });
      };
      j.evict = [](const std::string&) {};
      (void)ctl.offer(std::move(j));
    };

    for (int i = 0; i < 4; ++i) {
      sim.scheduleAt(sim::Time() + sim::Duration::millis(10 * i), [&, i] {
        offerJob("alpha", "a" + std::to_string(i));
        offerJob("bravo", "b" + std::to_string(i));
      });
    }
    // A late high-priority burst that saturates the queue and preempts.
    sim.scheduleAt(sim::Time() + sim::Duration::millis(45), [&] {
      for (int i = 0; i < 4; ++i) offerJob("bravo", "hot" + std::to_string(i));
    });
    sim.run();
    logOut = ctl.decisionLog();
  };

  std::string first;
  std::string second;
  runOnce(first);
  runOnce(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Sanity: the scenario exercised queueing (non-zero waits), not just
  // immediate launches.
  EXPECT_NE(first.find("wait_us="), std::string::npos);
}

}  // namespace
}  // namespace lidc::qos
