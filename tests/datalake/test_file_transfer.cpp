// FileServer + Retriever over a real two-node topology: segmentation,
// reassembly, caching of segments, loss recovery, and error paths.
#include <gtest/gtest.h>

#include "datalake/file_server.hpp"
#include "datalake/retriever.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

class FileTransferTest : public ::testing::Test {
 protected:
  FileTransferTest()
      : client_("client", sim_),
        server_("server", sim_),
        pvc_("p", ByteSize::fromMiB(16)),
        store_(pvc_) {}

  void wire(net::LinkParams params, std::size_t segmentSize = 1024) {
    auto [clientToServer, serverToClient] =
        net::Link::connect(sim_, client_, server_, params, &link_);
    client_.registerPrefix(ndn::Name("/ndn/k8s/data"), clientToServer);
    fileServer_ = std::make_unique<FileServer>(server_, store_,
                                               ndn::Name("/ndn/k8s/data"),
                                               segmentSize);
    clientApp_ = std::make_shared<ndn::AppFace>("app://client", sim_, 5);
    client_.addFace(clientApp_);
  }

  std::vector<std::uint8_t> makeBlob(std::size_t size) {
    std::vector<std::uint8_t> blob(size);
    for (std::size_t i = 0; i < size; ++i) blob[i] = static_cast<std::uint8_t>(i * 7);
    return blob;
  }

  sim::Simulator sim_;
  ndn::Forwarder client_;
  ndn::Forwarder server_;
  std::shared_ptr<net::Link> link_;
  k8s::PersistentVolumeClaim pvc_;
  ObjectStore store_;
  std::unique_ptr<FileServer> fileServer_;
  std::shared_ptr<ndn::AppFace> clientApp_;
};

TEST_F(FileTransferTest, MultiSegmentObjectReassembles) {
  wire(net::LinkParams{sim::Duration::millis(2)}, /*segmentSize=*/1024);
  const auto blob = makeBlob(10'000);  // 10 segments
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/blob"), blob).ok());

  Retriever retriever(*clientApp_);
  std::optional<std::vector<std::uint8_t>> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/blob"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::move(*r);
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, blob);
  EXPECT_GE(fileServer_->interestsServed(), 11u);  // meta + 10 segments
}

TEST_F(FileTransferTest, ExactSegmentBoundary) {
  wire(net::LinkParams{sim::Duration::millis(1)}, 1024);
  const auto blob = makeBlob(2048);  // exactly 2 segments
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/blob"), blob).ok());
  Retriever retriever(*clientApp_);
  std::optional<std::vector<std::uint8_t>> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/blob"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    fetched = std::move(*r);
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->size(), 2048u);
}

TEST_F(FileTransferTest, EmptyObjectFetchesAsEmpty) {
  wire(net::LinkParams{sim::Duration::millis(1)});
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/empty"), {}).ok());
  Retriever retriever(*clientApp_);
  bool done = false;
  retriever.fetch(ndn::Name("/ndn/k8s/data/empty"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    EXPECT_TRUE(r->empty());
                    done = true;
                  });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(FileTransferTest, MissingObjectFailsWithNotFound) {
  wire(net::LinkParams{sim::Duration::millis(1)});
  Retriever retriever(*clientApp_);
  std::optional<Status> failure;
  retriever.fetch(ndn::Name("/ndn/k8s/data/ghost"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_FALSE(r.ok());
                    failure = r.status();
                  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kNotFound);
  EXPECT_GE(fileServer_->interestsRejected(), 1u);
}

TEST_F(FileTransferTest, LossRecoveredByRetries) {
  wire(net::LinkParams{sim::Duration::millis(1), 0.0, /*loss=*/0.2}, 512);
  const auto blob = makeBlob(8192);  // 16 segments
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/lossy"), blob).ok());
  RetrieveOptions options;
  options.maxRetriesPerSegment = 10;
  options.interestLifetime = sim::Duration::millis(200);
  Retriever retriever(*clientApp_, options);
  std::optional<std::vector<std::uint8_t>> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/lossy"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::move(*r);
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, blob);
}

TEST_F(FileTransferTest, SecondFetchHitsContentStore) {
  wire(net::LinkParams{sim::Duration::millis(2)}, 1024);
  const auto blob = makeBlob(4096);
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/cached"), blob).ok());
  Retriever retriever(*clientApp_);
  int done = 0;
  retriever.fetch(ndn::Name("/ndn/k8s/data/cached"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    ++done;
                  });
  sim_.run();
  const auto servedAfterFirst = fileServer_->interestsServed();
  retriever.fetch(ndn::Name("/ndn/k8s/data/cached"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    EXPECT_EQ(*r, blob);
                    ++done;
                  });
  sim_.run();
  EXPECT_EQ(done, 2);
  // All of the second transfer came from the client node's CS.
  EXPECT_EQ(fileServer_->interestsServed(), servedAfterFirst);
}

TEST_F(FileTransferTest, SegmentBeyondEndIsNacked) {
  wire(net::LinkParams{sim::Duration::millis(1)}, 1024);
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/blob"), makeBlob(100)).ok());
  int nacks = 0;
  clientApp_->expressInterest(
      ndn::Interest(ndn::Name("/ndn/k8s/data/blob/seg=5")),
      [](const ndn::Interest&, const ndn::Data&) { FAIL(); },
      [&](const ndn::Interest&, const ndn::Nack&) { ++nacks; });
  sim_.run();
  EXPECT_EQ(nacks, 1);
}

TEST_F(FileTransferTest, MalformedSegmentNumberIsNacked) {
  wire(net::LinkParams{sim::Duration::millis(1)}, 1024);
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/blob"), makeBlob(100)).ok());
  int nacks = 0;
  clientApp_->expressInterest(
      ndn::Interest(ndn::Name("/ndn/k8s/data/blob/seg=abc")),
      [](const ndn::Interest&, const ndn::Data&) { FAIL(); },
      [&](const ndn::Interest&, const ndn::Nack&) { ++nacks; });
  sim_.run();
  EXPECT_EQ(nacks, 1);
}

/// Builds a fresh two-node world and times one fetch of `blob` using the
/// given pipeline window.
double timedFetchSeconds(const std::vector<std::uint8_t>& blob, std::size_t window) {
  sim::Simulator sim;
  ndn::Forwarder client("client", sim);
  ndn::Forwarder server("server", sim);
  auto [clientToServer, serverToClient] = net::Link::connect(
      sim, client, server, net::LinkParams{sim::Duration::millis(10)});
  client.registerPrefix(ndn::Name("/ndn/k8s/data"), clientToServer);
  k8s::PersistentVolumeClaim pvc("p", ByteSize::fromMiB(16));
  ObjectStore store(pvc);
  FileServer fileServer(server, store, ndn::Name("/ndn/k8s/data"), 512);
  EXPECT_TRUE(store.put(ndn::Name("/ndn/k8s/data/win"), blob).ok());
  auto clientApp = std::make_shared<ndn::AppFace>("app://client", sim, 5);
  client.addFace(clientApp);
  RetrieveOptions options;
  options.window = window;
  Retriever retriever(*clientApp, options);
  bool ok = false;
  retriever.fetch(ndn::Name("/ndn/k8s/data/win"),
                  [&](Result<std::vector<std::uint8_t>> r) { ok = r.ok(); });
  sim.run();
  EXPECT_TRUE(ok);
  return sim.now().toSeconds();
}

TEST(FileTransferPipelineTest, WindowPipeliningIsFasterThanSequential) {
  // 20 segments over a 10 ms link: window 1 needs ~2*10ms*21 = 420 ms;
  // window 8 should finish far sooner.
  std::vector<std::uint8_t> blob(20 * 512);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 7);
  }
  const double sequential = timedFetchSeconds(blob, 1);
  const double pipelined = timedFetchSeconds(blob, 8);
  EXPECT_LT(pipelined * 3, sequential);
}

}  // namespace
}  // namespace lidc::datalake
