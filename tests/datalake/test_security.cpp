// Data authentication (paper SVII): the retriever rejects Data failing
// signature verification — a malicious or corrupted producer cannot
// feed clients bad bytes silently.
#include <gtest/gtest.h>

#include "datalake/retriever.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest() : client_("client", sim_), server_("server", sim_) {
    auto [toServer, toClient] = net::Link::connect(
        sim_, client_, server_, net::LinkParams{sim::Duration::millis(1)});
    client_.registerPrefix(ndn::Name("/ndn/k8s/data"), toServer);
    // No verification in the CS path: disable caches so the malicious
    // producer is always consulted.
    client_.cs().setCapacity(0);
    server_.cs().setCapacity(0);

    producer_ = std::make_shared<ndn::AppFace>("app://evil", sim_, 66);
    server_.addFace(producer_);
    server_.registerPrefix(ndn::Name("/ndn/k8s/data"), producer_->id());

    clientApp_ = std::make_shared<ndn::AppFace>("app://c", sim_, 5);
    client_.addFace(clientApp_);
  }

  /// Producer serving a 1-segment object; `tamper` breaks the segment's
  /// signature.
  void serveObject(bool tamperSegment) {
    producer_->setInterestHandler([this, tamperSegment](const ndn::Interest& i) {
      const std::string last = i.name()[i.name().size() - 1].toString();
      ndn::Data data(i.name());
      if (last == "meta") {
        data.setContent("segments=1;size=5;segment_size=1024");
        data.sign();
      } else {
        data.setContent("hello");
        data.sign();
        if (tamperSegment) {
          // Flip content after signing: signature no longer matches.
          auto bytes = data.content();
          bytes[0] ^= 0xFF;
          data.setContent(std::move(bytes));
        }
      }
      // Bypass putData's auto-signing: inject the packet as-is.
      producer_->receiveData(data);
    });
  }

  sim::Simulator sim_;
  ndn::Forwarder client_;
  ndn::Forwarder server_;
  std::shared_ptr<ndn::AppFace> producer_;
  std::shared_ptr<ndn::AppFace> clientApp_;
};

TEST_F(SecurityTest, ValidSignaturesPass) {
  serveObject(false);
  Retriever retriever(*clientApp_);
  std::optional<std::string> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::string(r->begin(), r->end());
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "hello");
}

TEST_F(SecurityTest, TamperedSegmentRejected) {
  serveObject(true);
  Retriever retriever(*clientApp_);
  std::optional<Status> failure;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_FALSE(r.ok());
                    failure = r.status();
                  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kPermissionDenied);
}

TEST_F(SecurityTest, VerificationCanBeDisabled) {
  serveObject(true);
  RetrieveOptions lax;
  lax.verifySignatures = false;
  Retriever retriever(*clientApp_, lax);
  bool fetched = false;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    fetched = r.ok();
                  });
  sim_.run();
  EXPECT_TRUE(fetched);  // caller opted out of authentication
}

}  // namespace
}  // namespace lidc::datalake
