// Data authentication (paper SVII): the retriever rejects Data failing
// signature verification — a malicious or corrupted producer cannot
// feed clients bad bytes silently.
#include <gtest/gtest.h>

#include "datalake/retriever.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest() : client_("client", sim_), server_("server", sim_) {
    auto [toServer, toClient] = net::Link::connect(
        sim_, client_, server_, net::LinkParams{sim::Duration::millis(1)});
    client_.registerPrefix(ndn::Name("/ndn/k8s/data"), toServer);
    // No verification in the CS path: disable caches so the malicious
    // producer is always consulted.
    client_.cs().setCapacity(0);
    server_.cs().setCapacity(0);
    // These tests exercise the retriever's own (application-layer)
    // verification, so the routers' on-path integrity filter — which
    // would otherwise drop the tampered Data before the app sees it
    // (test_forwarder covers that) — is switched off.
    client_.setDataVerification(false);
    server_.setDataVerification(false);

    producer_ = std::make_shared<ndn::AppFace>("app://evil", sim_, 66);
    server_.addFace(producer_);
    server_.registerPrefix(ndn::Name("/ndn/k8s/data"), producer_->id());

    clientApp_ = std::make_shared<ndn::AppFace>("app://c", sim_, 5);
    client_.addFace(clientApp_);
  }

  /// Producer serving a 1-segment object; `tamper` breaks the segment's
  /// signature.
  void serveObject(bool tamperSegment) {
    producer_->setInterestHandler([this, tamperSegment](const ndn::Interest& i) {
      const std::string last = i.name()[i.name().size() - 1].toString();
      ndn::Data data(i.name());
      if (last == "meta") {
        data.setContent("segments=1;size=5;segment_size=1024");
        data.sign();
      } else {
        data.setContent("hello");
        data.sign();
        if (tamperSegment) {
          // Flip content after signing: signature no longer matches.
          auto bytes = data.content();
          bytes[0] ^= 0xFF;
          data.setContent(std::move(bytes));
        }
      }
      // Bypass putData's auto-signing: inject the packet as-is.
      producer_->receiveData(data);
    });
  }

  sim::Simulator sim_;
  ndn::Forwarder client_;
  ndn::Forwarder server_;
  std::shared_ptr<ndn::AppFace> producer_;
  std::shared_ptr<ndn::AppFace> clientApp_;
};

TEST_F(SecurityTest, ValidSignaturesPass) {
  serveObject(false);
  Retriever retriever(*clientApp_);
  std::optional<std::string> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::string(r->begin(), r->end());
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "hello");
}

TEST_F(SecurityTest, TamperedSegmentRejected) {
  serveObject(true);
  Retriever retriever(*clientApp_);
  std::optional<Status> failure;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_FALSE(r.ok());
                    failure = r.status();
                  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kPermissionDenied);
}

TEST_F(SecurityTest, VerificationCanBeDisabled) {
  serveObject(true);
  RetrieveOptions lax;
  lax.verifySignatures = false;
  Retriever retriever(*clientApp_, lax);
  bool fetched = false;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    fetched = r.ok();
                  });
  sim_.run();
  EXPECT_TRUE(fetched);  // caller opted out of authentication
}

// A poisoned cache entry must not wedge the transfer: the retriever's
// re-fetch carries the bad payload's digest as an exclusion hint (plus
// MustBeFresh), so the content store skips the poisoned entry and the
// Interest reaches the producer, which now serves good bytes.
TEST_F(SecurityTest, IntegrityRetryWithExclusionRecoversPoisonedCacheEntry) {
  // Re-enable the client-side CS and let it cache without verifying —
  // the worst case: a poisoned entry is already inside a cache that
  // will happily re-serve it.
  client_.cs().setCapacity(64);
  client_.cs().setVerification(false);

  int segmentServes = 0;
  producer_->setInterestHandler([this, &segmentServes](const ndn::Interest& i) {
    const std::string last = i.name()[i.name().size() - 1].toString();
    ndn::Data data(i.name());
    // Long freshness: MustBeFresh alone would NOT skip the cached
    // poison; only the exclusion hint can.
    data.setFreshnessPeriod(sim::Duration::seconds(30));
    if (last == "meta") {
      data.setContent("segments=1;size=5;segment_size=1024");
      data.sign();
    } else {
      data.setContent("hello");
      data.sign();
      if (segmentServes++ == 0) {
        // First serve is corrupted in the producer's buffer; later
        // serves are clean.
        auto bytes = data.content();
        bytes[0] ^= 0xFF;
        data.setContent(std::move(bytes));
      }
    }
    producer_->receiveData(data);
  });

  Retriever retriever(*clientApp_);
  std::optional<std::string> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::string(r->begin(), r->end());
                  });
  sim_.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, "hello");
  EXPECT_EQ(retriever.integrityRetries(), 1u);
  EXPECT_EQ(segmentServes, 2);  // poisoned serve + the recovering one
}

// Bounded attempts: a producer that only ever serves poison exhausts
// maxIntegrityRetries and the transfer fails PERMISSION_DENIED instead
// of looping forever.
TEST_F(SecurityTest, IntegrityRetriesAreBounded) {
  serveObject(/*tamperSegment=*/true);
  RetrieveOptions options;
  options.maxIntegrityRetries = 2;
  Retriever retriever(*clientApp_, options);
  std::optional<Status> failure;
  retriever.fetch(ndn::Name("/ndn/k8s/data/obj"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_FALSE(r.ok());
                    failure = r.status();
                  });
  sim_.run();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(retriever.integrityRetries(), 2u);
}

}  // namespace
}  // namespace lidc::datalake
