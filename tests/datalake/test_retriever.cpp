// Retriever hardening against a misbehaving file server: meta that
// disagrees with itself, per-segment sizes that contradict the
// advertised segment_size (including compensating errors whose total
// still matches), and truncated reassembly — all must fail loudly with
// Internal instead of silently accepting corrupt bytes.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "datalake/retriever.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

/// A file server under our control: serves a fixed meta string and a
/// fixed byte vector per segment index, properly signed so only the
/// advertised/actual size disagreement is under test.
class LyingFileServer {
 public:
  LyingFileServer(sim::Simulator& sim, ndn::Forwarder& forwarder) {
    face_ = std::make_shared<ndn::AppFace>("app://lying-server", sim);
    const auto faceId = forwarder.addFace(face_);
    forwarder.registerPrefix(ndn::Name("/ndn/k8s/data"), faceId, /*cost=*/0);
    face_->setInterestHandler([this](const ndn::Interest& interest) {
      const ndn::Name& name = interest.name();
      const std::string last = name[name.size() - 1].toString();
      if (last == "meta") {
        ndn::Data data(name);
        data.setContent(meta);
        data.sign();
        face_->putData(std::move(data));
        return;
      }
      if (strings::startsWith(last, "seg=")) {
        const auto index = strings::parseUint(std::string_view(last).substr(4));
        if (index && *index < segments.size()) {
          ndn::Data data(name);
          data.setContent(segments[*index]);
          data.sign();
          face_->putData(std::move(data));
          return;
        }
      }
      face_->putNack(interest, ndn::NackReason::kNoRoute);
    });
  }

  std::string meta;
  std::vector<std::vector<std::uint8_t>> segments;

 private:
  std::shared_ptr<ndn::AppFace> face_;
};

class RetrieverHardeningTest : public ::testing::Test {
 protected:
  RetrieverHardeningTest() : client_("client", sim_), server_("server", sim_) {
    auto [clientToServer, serverToClient] = net::Link::connect(
        sim_, client_, server_, net::LinkParams{sim::Duration::millis(2)});
    client_.registerPrefix(ndn::Name("/ndn/k8s/data"), clientToServer);
    liar_ = std::make_unique<LyingFileServer>(sim_, server_);
    clientApp_ = std::make_shared<ndn::AppFace>("app://client", sim_, 5);
    client_.addFace(clientApp_);
    retriever_ = std::make_unique<Retriever>(*clientApp_);
  }

  static std::vector<std::uint8_t> bytesOf(std::size_t size) {
    return std::vector<std::uint8_t>(size, 0x5a);
  }

  /// Runs one fetch to quiescence and returns its result.
  Result<std::vector<std::uint8_t>> fetch() {
    std::optional<Result<std::vector<std::uint8_t>>> result;
    retriever_->fetch(ndn::Name("/ndn/k8s/data/object"),
                      [&result](Result<std::vector<std::uint8_t>> r) {
                        result = std::move(r);
                      });
    sim_.run();
    if (!result.has_value()) return Status::Internal("fetch never completed");
    return *result;
  }

  sim::Simulator sim_;
  ndn::Forwarder client_;
  ndn::Forwarder server_;
  std::unique_ptr<LyingFileServer> liar_;
  std::shared_ptr<ndn::AppFace> clientApp_;
  std::unique_ptr<Retriever> retriever_;
};

TEST_F(RetrieverHardeningTest, HonestServerStillPasses) {
  liar_->meta = "segments=2;size=1536;segment_size=1024";
  liar_->segments = {bytesOf(1024), bytesOf(512)};
  auto result = fetch();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1536u);
}

TEST_F(RetrieverHardeningTest, SegmentCountContradictingSegmentSizeIsRejected) {
  // 1000 bytes at segment_size 1024 implies 1 segment, not 3.
  liar_->meta = "segments=3;size=1000;segment_size=1024";
  liar_->segments = {bytesOf(400), bytesOf(400), bytesOf(200)};
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("implies"), std::string::npos);
}

TEST_F(RetrieverHardeningTest, CompensatingSegmentSizesAreRejected) {
  // Totals match the advertised size, but segment 0 is short and
  // segment 1 long — a corruption a total-size check alone would accept.
  liar_->meta = "segments=2;size=2048;segment_size=1024";
  liar_->segments = {bytesOf(1000), bytesOf(1048)};
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("carries"), std::string::npos);
}

TEST_F(RetrieverHardeningTest, TruncatedFinalSegmentIsRejected) {
  liar_->meta = "segments=2;size=2048;segment_size=1024";
  liar_->segments = {bytesOf(1024), bytesOf(512)};
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(RetrieverHardeningTest, LegacyMetaWithoutSegmentSizeStillWorks) {
  liar_->meta = "segments=2;size=2048";
  liar_->segments = {bytesOf(1024), bytesOf(1024)};
  auto result = fetch();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2048u);
}

TEST_F(RetrieverHardeningTest, LegacyMetaSizeMismatchIsRejectedAtReassembly) {
  liar_->meta = "segments=2;size=2048";
  liar_->segments = {bytesOf(1024), bytesOf(512)};  // 1536 != 2048
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("advertised"), std::string::npos);
}

TEST_F(RetrieverHardeningTest, ZeroSegmentsWithNonZeroSizeIsMalformed) {
  liar_->meta = "segments=0;size=100;segment_size=64";
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("malformed"), std::string::npos);
}

TEST_F(RetrieverHardeningTest, SegmentsWithZeroSizeIsMalformed) {
  liar_->meta = "segments=2;size=0;segment_size=1024";
  liar_->segments = {bytesOf(1024), bytesOf(1024)};
  auto result = fetch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace lidc::datalake
