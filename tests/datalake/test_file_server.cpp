// File server tests: the lake's producer application serving
// meta/segment Data for stored objects — correct segmentation math,
// nacks for missing objects and malformed names (instead of silence
// that would wedge consumers into timeouts), and overwrite visibility.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datalake/file_server.hpp"
#include "datalake/retriever.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

const ndn::Name kPrefix("/ndn/k8s/data");

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest()
      : client_("client", sim_),
        server_("server", sim_),
        pvc_("lake", ByteSize::fromMiB(4)),
        store_(pvc_) {
    auto [clientToServer, serverToClient] = net::Link::connect(
        sim_, client_, server_, net::LinkParams{sim::Duration::millis(2)});
    (void)serverToClient;
    client_.registerPrefix(kPrefix, clientToServer);
    fileServer_ = std::make_unique<FileServer>(server_, store_, kPrefix,
                                               /*segmentSize=*/1024);
    clientApp_ = std::make_shared<ndn::AppFace>("app://client", sim_, 5);
    client_.addFace(clientApp_);
    retriever_ = std::make_unique<Retriever>(*clientApp_);
  }

  struct Reply {
    bool data = false;
    bool nack = false;
    bool timeout = false;
    std::string content;
  };

  /// One raw Interest, run to quiescence.
  Reply express(const ndn::Name& name, bool mustBeFresh = false) {
    Reply reply;
    ndn::Interest interest(name);
    interest.setMustBeFresh(mustBeFresh).setLifetime(sim::Duration::seconds(1));
    clientApp_->expressInterest(
        std::move(interest),
        [&reply](const ndn::Interest&, const ndn::Data& data) {
          reply.data = true;
          reply.content = data.contentAsString();
        },
        [&reply](const ndn::Interest&, const ndn::Nack&) { reply.nack = true; },
        [&reply](const ndn::Interest&) { reply.timeout = true; });
    sim_.run();
    return reply;
  }

  /// Full object retrieval through the segment protocol.
  Result<std::vector<std::uint8_t>> fetch(const ndn::Name& name) {
    std::optional<Result<std::vector<std::uint8_t>>> result;
    retriever_->fetch(name, [&result](Result<std::vector<std::uint8_t>> r) {
      result = std::move(r);
    });
    sim_.run();
    if (!result.has_value()) return Status::Internal("fetch never completed");
    return *result;
  }

  sim::Simulator sim_;
  ndn::Forwarder client_;
  ndn::Forwarder server_;
  k8s::PersistentVolumeClaim pvc_;
  ObjectStore store_;
  std::unique_ptr<FileServer> fileServer_;
  std::shared_ptr<ndn::AppFace> clientApp_;
  std::unique_ptr<Retriever> retriever_;
};

TEST_F(FileServerTest, ServesMetaAndSegmentsForStoredObject) {
  // 2.5 segments at segmentSize 1024.
  std::vector<std::uint8_t> bytes(2560);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(store_.put(ndn::Name("/ndn/k8s/data/obj"), bytes).ok());

  const Reply meta = express(ndn::Name("/ndn/k8s/data/obj/meta"));
  ASSERT_TRUE(meta.data);
  EXPECT_EQ(meta.content, "segments=3;size=2560;segment_size=1024");

  // The bare object name aliases meta, so prefix discovery works.
  const Reply bare = express(ndn::Name("/ndn/k8s/data/obj"));
  ASSERT_TRUE(bare.data);
  EXPECT_EQ(bare.content, meta.content);

  // End-to-end reassembly returns the exact bytes.
  auto fetched = fetch(ndn::Name("/ndn/k8s/data/obj"));
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(*fetched, bytes);
  EXPECT_GE(fileServer_->interestsServed(), 5u);  // 2x meta + 3 segments
  EXPECT_EQ(fileServer_->interestsRejected(), 0u);
}

TEST_F(FileServerTest, MissingObjectIsNackedNotSilent) {
  EXPECT_TRUE(express(ndn::Name("/ndn/k8s/data/ghost/meta")).nack);
  EXPECT_TRUE(express(ndn::Name("/ndn/k8s/data/ghost/seg=0")).nack);
  EXPECT_EQ(fileServer_->interestsRejected(), 2u);

  auto fetched = fetch(ndn::Name("/ndn/k8s/data/ghost"));
  EXPECT_FALSE(fetched.ok());
}

TEST_F(FileServerTest, MalformedNamesAreRejected) {
  ASSERT_TRUE(store_.putText(ndn::Name("/ndn/k8s/data/obj"), "payload").ok());

  // The bare served prefix names no object.
  EXPECT_TRUE(express(kPrefix).nack);
  // Unparseable and out-of-range segment indices.
  EXPECT_TRUE(express(ndn::Name("/ndn/k8s/data/obj/seg=abc")).nack);
  EXPECT_TRUE(express(ndn::Name("/ndn/k8s/data/obj/seg=99")).nack);
  EXPECT_EQ(fileServer_->interestsRejected(), 3u);
  EXPECT_EQ(fileServer_->interestsServed(), 0u);
}

TEST_F(FileServerTest, OverwriteServesNewBytesToFreshConsumers) {
  const ndn::Name name("/ndn/k8s/data/obj");
  ASSERT_TRUE(store_.putText(name, "version-one").ok());
  auto first = fetch(name);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(std::string(first->begin(), first->end()), "version-one");

  // Overwrite with a different size. Plain Interests may keep riding
  // the cached copies (NDN names are immutable as far as Content
  // Stores care), but MustBeFresh consumers see the replacement once
  // the cached Data ages out of freshness.
  ASSERT_TRUE(store_.putText(name, "v2").ok());
  const Reply cached = express(ndn::Name("/ndn/k8s/data/obj/meta"));
  ASSERT_TRUE(cached.data);
  EXPECT_EQ(cached.content, "segments=1;size=11;segment_size=1024");

  sim_.runUntil(sim_.now() + sim::Duration::seconds(11));
  const Reply meta =
      express(ndn::Name("/ndn/k8s/data/obj/meta"), /*mustBeFresh=*/true);
  ASSERT_TRUE(meta.data);
  EXPECT_EQ(meta.content, "segments=1;size=2;segment_size=1024");
  const Reply segment =
      express(ndn::Name("/ndn/k8s/data/obj/seg=0"), /*mustBeFresh=*/true);
  ASSERT_TRUE(segment.data);
  EXPECT_EQ(segment.content, "v2");
}

TEST_F(FileServerTest, EmptyObjectRoundTrips) {
  const ndn::Name name("/ndn/k8s/data/empty");
  ASSERT_TRUE(store_.put(name, std::vector<std::uint8_t>{}).ok());
  const Reply meta = express(ndn::Name("/ndn/k8s/data/empty/meta"));
  ASSERT_TRUE(meta.data);
  EXPECT_EQ(meta.content, "segments=0;size=0;segment_size=1024");

  auto fetched = fetch(name);
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_TRUE(fetched->empty());
}

}  // namespace
}  // namespace lidc::datalake
