#include "datalake/object_store.hpp"

#include <gtest/gtest.h>

namespace lidc::datalake {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : pvc_("p", ByteSize::fromMiB(4)), store_(pvc_) {}

  k8s::PersistentVolumeClaim pvc_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, PutGetRoundTrip) {
  const ndn::Name name("/ndn/k8s/data/human-ref");
  ASSERT_TRUE(store_.putText(name, "ACGT").ok());
  auto bytes = store_.get(name);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "ACGT");
  EXPECT_TRUE(store_.contains(name));
  EXPECT_EQ(store_.sizeOf(name), 4u);
}

TEST_F(ObjectStoreTest, MissingObject) {
  EXPECT_FALSE(store_.get(ndn::Name("/none")).has_value());
  EXPECT_FALSE(store_.contains(ndn::Name("/none")));
  EXPECT_FALSE(store_.remove(ndn::Name("/none")).ok());
}

TEST_F(ObjectStoreTest, EmptyNameRejected) {
  EXPECT_EQ(store_.put(ndn::Name(), {}).code(), StatusCode::kInvalidArgument);
}

TEST_F(ObjectStoreTest, OverwriteReplaces) {
  const ndn::Name name("/obj");
  ASSERT_TRUE(store_.putText(name, "v1").ok());
  ASSERT_TRUE(store_.putText(name, "version2").ok());
  EXPECT_EQ(store_.sizeOf(name), 8u);
}

TEST_F(ObjectStoreTest, ListUnderPrefix) {
  ASSERT_TRUE(store_.putText(ndn::Name("/ndn/k8s/data/a"), "1").ok());
  ASSERT_TRUE(store_.putText(ndn::Name("/ndn/k8s/data/b"), "2").ok());
  ASSERT_TRUE(store_.putText(ndn::Name("/ndn/k8s/data/results/c"), "3").ok());
  ASSERT_TRUE(store_.putText(ndn::Name("/other/x"), "4").ok());

  const auto all = store_.list(ndn::Name("/ndn/k8s/data"));
  EXPECT_EQ(all.size(), 3u);
  const auto results = store_.list(ndn::Name("/ndn/k8s/data/results"));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], ndn::Name("/ndn/k8s/data/results/c"));
  EXPECT_EQ(store_.list(ndn::Name()).size(), 4u);
}

TEST_F(ObjectStoreTest, RemoveFreesPvcSpace) {
  const ndn::Name name("/big");
  ASSERT_TRUE(store_.put(name, std::vector<std::uint8_t>(1024, 0)).ok());
  const auto before = pvc_.used();
  ASSERT_TRUE(store_.remove(name).ok());
  EXPECT_LT(pvc_.used().bytes(), before.bytes());
}

TEST_F(ObjectStoreTest, PropagatesCapacityError) {
  k8s::PersistentVolumeClaim tiny("t", ByteSize(4));
  ObjectStore small(tiny);
  EXPECT_EQ(small.putText(ndn::Name("/x"), "too large").code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lidc::datalake
