#include "genomics/kmer_index.hpp"

#include <gtest/gtest.h>

#include "genomics/sequence.hpp"

namespace lidc::genomics {
namespace {

TEST(KmerIndexTest, PackRejectsNonAcgtAndOutOfRange) {
  std::uint64_t packed = 0;
  EXPECT_TRUE(KmerIndex::pack("ACGTACGT", 0, 4, packed));
  EXPECT_FALSE(KmerIndex::pack("ACNT", 0, 4, packed));
  EXPECT_FALSE(KmerIndex::pack("ACG", 0, 4, packed));  // too short
  EXPECT_TRUE(KmerIndex::pack("ACGT", 0, 4, packed));
}

TEST(KmerIndexTest, PackIsPositional) {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(KmerIndex::pack("ACGTAAAA", 0, 4, a));  // ACGT
  ASSERT_TRUE(KmerIndex::pack("AAAAACGT", 4, 4, b));  // ACGT
  EXPECT_EQ(a, b);
  std::uint64_t c = 0;
  ASSERT_TRUE(KmerIndex::pack("TGCA", 0, 4, c));
  EXPECT_NE(a, c);
}

TEST(KmerIndexTest, FindsAllOccurrences) {
  // "ACGT" occurs at 0 and 8.
  KmerIndex index("ACGTTTTTACGT", 4, 64);
  std::uint64_t packed = 0;
  ASSERT_TRUE(KmerIndex::pack("ACGT", 0, 4, packed));
  const auto* hits = index.find(packed);
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, (std::vector<std::uint32_t>{0, 8}));
}

TEST(KmerIndexTest, AbsentKmerReturnsNull) {
  KmerIndex index("AAAAAAAA", 4, 64);
  std::uint64_t packed = 0;
  ASSERT_TRUE(KmerIndex::pack("CCCC", 0, 4, packed));
  EXPECT_EQ(index.find(packed), nullptr);
}

TEST(KmerIndexTest, RepeatMaskingDropsFrequentKmers) {
  // Poly-A: the AAAA k-mer occurs length-3 times.
  const std::string polyA(100, 'A');
  KmerIndex masked(polyA, 4, /*maxOccurrences=*/10);
  std::uint64_t packed = 0;
  ASSERT_TRUE(KmerIndex::pack("AAAA", 0, 4, packed));
  EXPECT_EQ(masked.find(packed), nullptr);
  EXPECT_EQ(masked.maskedKmers(), 1u);

  KmerIndex unmasked(polyA, 4, /*maxOccurrences=*/1000);
  EXPECT_NE(unmasked.find(packed), nullptr);
}

TEST(KmerIndexTest, ShortReferenceYieldsEmptyIndex) {
  KmerIndex index("ACG", 11, 64);
  EXPECT_EQ(index.distinctKmers(), 0u);
}

TEST(KmerIndexTest, DistinctCountMatchesRandomSequenceScale) {
  Rng rng(3);
  const std::string reference = randomBases(rng, 10'000);
  KmerIndex index(reference, 11, 64);
  // With 4^11 ~ 4M possible k-mers and 10k positions, nearly all distinct.
  EXPECT_GT(index.distinctKmers(), 9'500u);
}

}  // namespace
}  // namespace lidc::genomics
