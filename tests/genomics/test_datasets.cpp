#include "genomics/datasets.hpp"

#include <gtest/gtest.h>

namespace lidc::genomics {
namespace {

TEST(DatasetCatalogTest, SamplesMatchPaperAccessions) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.riceSample().srrId, "SRR2931415");
  EXPECT_EQ(catalog.riceSample().genomeType, "RICE");
  EXPECT_EQ(catalog.kidneySample().srrId, "SRR5139395");
  EXPECT_EQ(catalog.kidneySample().genomeType, "KIDNEY");
}

TEST(DatasetCatalogTest, KidneyIsRoughlyThreeTimesRice) {
  // Table I: kidney runtime ~ 3x rice; our read counts and testbed input
  // sizes carry that ratio.
  DatasetCatalog catalog;
  const auto rice = catalog.riceSample();
  const auto kidney = catalog.kidneySample();
  EXPECT_NEAR(static_cast<double>(kidney.readCount) / rice.readCount, 3.0, 0.01);
  EXPECT_NEAR(static_cast<double>(kidney.testbedBytes) / rice.testbedBytes, 3.0,
              0.01);
}

TEST(DatasetCatalogTest, LookupBySrrId) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.bySrrId("SRR2931415").genomeType, "RICE");
  EXPECT_EQ(catalog.bySrrId("SRR5139395").genomeType, "KIDNEY");
  EXPECT_TRUE(catalog.bySrrId("SRR0000000").srrId.empty());
  EXPECT_EQ(catalog.allSamples().size(), 2u);
}

TEST(DatasetCatalogTest, ScaleMultipliesSizes) {
  DatasetCatalog full(1.0);
  DatasetCatalog half(0.5);
  EXPECT_NEAR(static_cast<double>(half.riceSample().readCount),
              full.riceSample().readCount * 0.5, 1.0);
  EXPECT_NEAR(static_cast<double>(half.referenceLength()),
              full.referenceLength() * 0.5, 1.0);
  // Testbed sizes are real-world constants, not scaled.
  EXPECT_EQ(half.riceSample().testbedBytes, full.riceSample().testbedBytes);
}

TEST(DatasetCatalogTest, GenerationIsDeterministic) {
  DatasetCatalog a(0.1, 99);
  DatasetCatalog b(0.1, 99);
  EXPECT_EQ(a.generateReference().bases, b.generateReference().bases);
  const auto readsA = a.generateSample(a.riceSample(), a.generateReference().bases);
  const auto readsB = b.generateSample(b.riceSample(), b.generateReference().bases);
  ASSERT_EQ(readsA.size(), readsB.size());
  EXPECT_EQ(readsA[0].bases, readsB[0].bases);
}

TEST(DatasetCatalogTest, SamplesDifferFromEachOther) {
  DatasetCatalog catalog(0.1);
  const auto reference = catalog.generateReference();
  const auto rice = catalog.generateSample(catalog.riceSample(), reference.bases);
  const auto kidney =
      catalog.generateSample(catalog.kidneySample(), reference.bases);
  EXPECT_NE(rice[0].bases, kidney[0].bases);
  EXPECT_EQ(rice[0].id.substr(0, 10), "SRR2931415");
  EXPECT_EQ(kidney[0].id.substr(0, 10), "SRR5139395");
}

TEST(DatasetCatalogTest, MinimumSizesAtTinyScale) {
  DatasetCatalog tiny(1e-9);
  EXPECT_GE(tiny.riceSample().readCount, 1u);
  EXPECT_GE(tiny.referenceLength(), 1000u);
}

}  // namespace
}  // namespace lidc::genomics
