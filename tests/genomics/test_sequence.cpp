#include "genomics/sequence.hpp"

#include <gtest/gtest.h>

namespace lidc::genomics {
namespace {

TEST(SequenceTest, BaseCodeRoundTrip) {
  for (char base : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(codeBase(baseCode(base)), base);
  }
  EXPECT_EQ(baseCode('N'), 4);
  EXPECT_EQ(codeBase(9), 'N');
}

TEST(SequenceTest, ReverseComplement) {
  EXPECT_EQ(reverseComplement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverseComplement("AACC"), "GGTT");
  EXPECT_EQ(reverseComplement(""), "");
  EXPECT_EQ(reverseComplement("N"), "N");
}

TEST(SequenceTest, ReverseComplementIsInvolution) {
  Rng rng(1);
  const std::string s = randomBases(rng, 500);
  EXPECT_EQ(reverseComplement(reverseComplement(s)), s);
}

TEST(SequenceTest, RandomBasesAreValidAndDeterministic) {
  Rng a(7);
  Rng b(7);
  const std::string s1 = randomBases(a, 1000);
  const std::string s2 = randomBases(b, 1000);
  EXPECT_EQ(s1, s2);
  for (char c : s1) EXPECT_LT(baseCode(c), 4);
}

TEST(SequenceTest, MutatedFragmentLengthAndDivergence) {
  Rng rng(3);
  const std::string reference = randomBases(rng, 10'000);
  const std::string fragment = mutatedFragment(rng, reference, 100, 0.05);
  EXPECT_EQ(fragment.size(), 100u);
  // A 5%-mutated fragment must be mostly but not wholly unlike random.
  // (We can't locate it directly here, but all bases must be valid.)
  for (char c : fragment) EXPECT_LT(baseCode(c), 4);
}

TEST(SequenceTest, MutationRateZeroCopiesExactly) {
  Rng rng(5);
  const std::string reference = randomBases(rng, 1'000);
  const std::string fragment = mutatedFragment(rng, reference, 200, 0.0);
  EXPECT_NE(reference.find(fragment), std::string::npos);
}

TEST(SequenceTest, FragmentLongerThanReferenceClamps) {
  Rng rng(5);
  const std::string reference = "ACGTACGT";
  const std::string fragment = mutatedFragment(rng, reference, 100, 0.0);
  EXPECT_EQ(fragment.size(), reference.size());
}

TEST(SequenceTest, GenerateReadsCountsAndIds) {
  Rng rng(11);
  const std::string reference = randomBases(rng, 5'000);
  const auto reads = generateReads(rng, reference, 50, 80, 0.5, 0.02, "SRRTEST");
  ASSERT_EQ(reads.size(), 50u);
  EXPECT_EQ(reads[0].id, "SRRTEST.1");
  EXPECT_EQ(reads[49].id, "SRRTEST.50");
  for (const auto& read : reads) EXPECT_EQ(read.length(), 80u);
}

TEST(SequenceTest, DerivedFractionZeroAndOne) {
  Rng rng(13);
  const std::string reference = randomBases(rng, 5'000);
  // All derived (mutation 0): every read is a substring of ref or its RC.
  auto derived = generateReads(rng, reference, 20, 50, 1.0, 0.0, "D");
  const std::string rc = reverseComplement(reference);
  for (const auto& read : derived) {
    const bool forward = reference.find(read.bases) != std::string::npos;
    const bool reverse = rc.find(read.bases) != std::string::npos;
    EXPECT_TRUE(forward || reverse) << read.id;
  }
}

}  // namespace
}  // namespace lidc::genomics
