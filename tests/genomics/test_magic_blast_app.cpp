// The magic-blast application runner: data-lake I/O, the testbed-scale
// runtime model, and the Table I invariances (cpu/mem barely matter;
// input size dominates).
#include "genomics/magic_blast_app.hpp"

#include <gtest/gtest.h>

#include "k8s/cluster.hpp"
#include "genomics/fasta.hpp"

namespace lidc::genomics {
namespace {

class MagicBlastAppTest : public ::testing::Test {
 protected:
  MagicBlastAppTest()
      : pvc_("datalake-pvc", ByteSize::fromGiB(1)), store_(pvc_), catalog_(0.1) {
    const auto reference = catalog_.generateReference();
    EXPECT_TRUE(
        store_.put(ndn::Name("/ndn/k8s/data/human-ref"), toFasta({reference})).ok());
    for (const auto& spec : catalog_.allSamples()) {
      const auto reads = catalog_.generateSample(spec, reference.bases);
      EXPECT_TRUE(store_
                      .put(ndn::Name("/ndn/k8s/data").append(spec.srrId),
                           toFasta(reads))
                      .ok());
    }
    runner_ = makeMagicBlastRunner(store_, catalog_);
  }

  k8s::AppResult run(const std::string& srrId, std::uint64_t cores,
                     std::uint64_t memGib,
                     std::map<std::string, std::string> extraArgs = {}) {
    k8s::JobSpec spec;
    spec.app = "magic-blast";
    spec.requests =
        k8s::Resources{MilliCpu::fromCores(cores), ByteSize::fromGiB(memGib)};
    spec.args = std::move(extraArgs);
    if (!srrId.empty()) spec.args["srr_id"] = srrId;
    k8s::AppContext context{spec, &pvc_, rng_};
    return runner_(context);
  }

  k8s::PersistentVolumeClaim pvc_;
  datalake::ObjectStore store_;
  DatasetCatalog catalog_;
  Rng rng_{1};
  k8s::AppRunner runner_;
};

TEST_F(MagicBlastAppTest, SuccessfulRunWritesResult) {
  const auto result = run("SRR2931415", 2, 4);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_FALSE(result.resultPath.empty());
  EXPECT_TRUE(store_.contains(ndn::Name(result.resultPath)));
  EXPECT_GT(result.outputBytes, 0u);
  EXPECT_GT(result.runtime.toSeconds(), 0.0);
}

TEST_F(MagicBlastAppTest, MissingSrrIdFails) {
  const auto result = run("", 2, 4);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(MagicBlastAppTest, UnknownSampleFailsNotFound) {
  const auto result = run("SRR9999999", 2, 4);
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST_F(MagicBlastAppTest, MissingReferenceFails) {
  const auto result = run("SRR2931415", 2, 4, {{"ref", "no-such-ref"}});
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST_F(MagicBlastAppTest, CustomOutputPathRespected) {
  const auto result = run("SRR2931415", 2, 4, {{"out", "results/custom-42"}});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.resultPath, "/ndn/k8s/data/results/custom-42");
  EXPECT_TRUE(store_.contains(ndn::Name("/ndn/k8s/data/results/custom-42")));
}

TEST_F(MagicBlastAppTest, RuntimeInsensitiveToCpuAndMemory) {
  // The Table I takeaway: "a variance of CPU and memory sizes is not
  // showing any significant changes in the run time."
  const double base = run("SRR2931415", 2, 4).runtime.toSeconds();
  const double moreCpu = run("SRR2931415", 4, 4).runtime.toSeconds();
  const double moreMem = run("SRR2931415", 2, 6).runtime.toSeconds();
  EXPECT_NEAR(moreCpu / base, 1.0, 0.05);
  EXPECT_NEAR(moreMem / base, 1.0, 0.05);
  // More CPU helps slightly (never hurts).
  EXPECT_LE(moreCpu, base);
}

TEST_F(MagicBlastAppTest, KidneyTakesRoughlyThreeTimesLongerThanRice) {
  const double rice = run("SRR2931415", 2, 4).runtime.toSeconds();
  const double kidney = run("SRR5139395", 2, 4).runtime.toSeconds();
  EXPECT_NEAR(kidney / rice, 3.0, 0.6);
}

TEST_F(MagicBlastAppTest, RuntimeIsTableOneScale) {
  // Rice @ 4GB/2cpu in Table I: 8h09m. Accept a generous band: the
  // simulated aligner's work ratio modulates the model.
  const double riceHours = run("SRR2931415", 2, 4).runtime.toSeconds() / 3600.0;
  EXPECT_GT(riceHours, 4.0);
  EXPECT_LT(riceHours, 16.0);
}

TEST_F(MagicBlastAppTest, StarvedMemoryThrashes) {
  // Below the working set (3 GiB), the runtime model applies the
  // thrashing penalty — the one regime where memory *does* matter.
  const double normal = run("SRR2931415", 2, 4).runtime.toSeconds();
  const double starved = run("SRR2931415", 2, 1).runtime.toSeconds();
  EXPECT_GT(starved / normal, 2.0);
}

TEST_F(MagicBlastAppTest, OutputSizeShapeMatchesTableOne) {
  // Table I: rice output 941MB, kidney 2.71GB (ratio ~2.9).
  const auto rice = run("SRR2931415", 2, 4);
  const auto kidney = run("SRR5139395", 2, 2 + 4);
  ASSERT_TRUE(rice.status.ok());
  ASSERT_TRUE(kidney.status.ok());
  const double ratio = static_cast<double>(kidney.outputBytes) /
                       static_cast<double>(rice.outputBytes);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 4.5);
  // Absolute scale: hundreds of MB to a few GB.
  EXPECT_GT(rice.outputBytes, 100'000'000u);
  EXPECT_LT(rice.outputBytes, 4'000'000'000u);
}

}  // namespace
}  // namespace lidc::genomics
