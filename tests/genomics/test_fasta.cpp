#include "genomics/fasta.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lidc::genomics {
namespace {

TEST(FastaTest, RoundTrip) {
  std::vector<Sequence> sequences{{"seq1", "ACGTACGT"},
                                  {"seq2", std::string(200, 'A')}};
  const auto bytes = toFasta(sequences);
  auto parsed = fromFasta(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].id, "seq1");
  EXPECT_EQ((*parsed)[0].bases, "ACGTACGT");
  EXPECT_EQ((*parsed)[1].bases, std::string(200, 'A'));
}

TEST(FastaTest, LongSequencesWrapAt70Columns) {
  const auto bytes = toFasta({{"x", std::string(150, 'G')}});
  const std::string text(bytes.begin(), bytes.end());
  // Header + 3 sequence lines (70+70+10).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(FastaTest, ParsesArbitraryLineWidthsAndBlankLines) {
  const std::string text = ">a\nACG\nT\n\n>b\n\nGG\nCC\n";
  auto parsed = fromFasta(std::vector<std::uint8_t>(text.begin(), text.end()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].bases, "ACGT");
  EXPECT_EQ((*parsed)[1].bases, "GGCC");
}

TEST(FastaTest, DataBeforeHeaderIsError) {
  const std::string text = "ACGT\n>late\nAC\n";
  EXPECT_FALSE(
      fromFasta(std::vector<std::uint8_t>(text.begin(), text.end())).ok());
}

TEST(FastaTest, EmptyInputYieldsNoSequences) {
  auto parsed = fromFasta({});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(FastaTest, HeaderOnlySequenceAllowed) {
  const std::string text = ">empty\n>nonempty\nAC\n";
  auto parsed = fromFasta(std::vector<std::uint8_t>(text.begin(), text.end()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE((*parsed)[0].bases.empty());
}

TEST(FastaTest, WindowsLineEndingsTolerated) {
  const std::string text = ">a\r\nACGT\r\n";
  auto parsed = fromFasta(std::vector<std::uint8_t>(text.begin(), text.end()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].bases, "ACGT");
}

}  // namespace
}  // namespace lidc::genomics
