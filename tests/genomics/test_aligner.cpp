#include "genomics/aligner.hpp"

#include <gtest/gtest.h>

#include "genomics/sequence.hpp"

namespace lidc::genomics {
namespace {

class AlignerTest : public ::testing::Test {
 protected:
  AlignerTest() {
    Rng rng(42);
    reference_ = randomBases(rng, 20'000);
  }

  std::string reference_;
};

TEST_F(AlignerTest, ExactFragmentAlignsPerfectly) {
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  const Sequence read{"exact", reference_.substr(5'000, 100)};
  const auto alignments = aligner.alignRead(read, stats);
  ASSERT_FALSE(alignments.empty());
  const auto& best = alignments.front();
  EXPECT_EQ(best.refStart, 5'000u);
  EXPECT_EQ(best.length, 100u);
  EXPECT_EQ(best.mismatches, 0u);
  EXPECT_DOUBLE_EQ(best.identity(), 1.0);
  EXPECT_FALSE(best.reverseStrand);
}

TEST_F(AlignerTest, ReverseStrandFragmentFound) {
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  const Sequence read{"rc", reverseComplement(reference_.substr(3'000, 100))};
  const auto alignments = aligner.alignRead(read, stats);
  ASSERT_FALSE(alignments.empty());
  EXPECT_TRUE(alignments.front().reverseStrand);
  EXPECT_EQ(alignments.front().refStart, 3'000u);
}

TEST_F(AlignerTest, MutatedFragmentStillAlignsWithMismatches) {
  Rng rng(7);
  std::string fragment = reference_.substr(8'000, 100);
  // Introduce 5 spread-out substitutions.
  for (std::size_t pos : {10u, 30u, 50u, 70u, 90u}) {
    fragment[pos] = fragment[pos] == 'A' ? 'C' : 'A';
  }
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  const auto alignments = aligner.alignRead({"mut", fragment}, stats);
  ASSERT_FALSE(alignments.empty());
  EXPECT_GT(alignments.front().mismatches, 0u);
  EXPECT_GE(alignments.front().identity(), 0.9);
}

TEST_F(AlignerTest, RandomReadDoesNotAlign) {
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  Rng rng(999);
  int aligned = 0;
  for (int i = 0; i < 20; ++i) {
    const Sequence read{"rand", randomBases(rng, 100)};
    if (!aligner.alignRead(read, stats).empty()) ++aligned;
  }
  // Random 100-mers against a 20 kb random reference: essentially never.
  EXPECT_LE(aligned, 1);
}

TEST_F(AlignerTest, ShortReadBelowKIsSkipped) {
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  EXPECT_TRUE(aligner.alignRead({"tiny", "ACGT"}, stats).empty());
}

TEST_F(AlignerTest, StatsAccumulate) {
  MiniBlastAligner aligner(reference_);
  AlignerStats stats;
  (void)aligner.alignRead({"a", reference_.substr(0, 100)}, stats);
  (void)aligner.alignRead({"b", reference_.substr(500, 100)}, stats);
  EXPECT_EQ(stats.readsProcessed, 2u);
  EXPECT_EQ(stats.readsAligned, 2u);
  EXPECT_GT(stats.seedHits, 0u);
  EXPECT_GT(stats.basesExamined, 0u);
}

TEST_F(AlignerTest, AlignAllMatchesPerReadResults) {
  Rng rng(5);
  const auto reads = generateReads(rng, reference_, 100, 100, 0.5, 0.03, "R");
  MiniBlastAligner aligner(reference_);
  std::vector<Alignment> out;
  const auto stats = aligner.alignAll(reads, out);
  EXPECT_EQ(stats.readsProcessed, 100u);
  EXPECT_EQ(out.size(), stats.alignmentsReported);
  // About half the reads are reference-derived.
  EXPECT_GT(stats.readsAligned, 30u);
  EXPECT_LT(stats.readsAligned, 70u);
}

TEST_F(AlignerTest, ParallelAndSerialAgree) {
  Rng rng(5);
  const auto reads = generateReads(rng, reference_, 200, 100, 0.5, 0.03, "R");

  AlignerOptions serialOptions;
  serialOptions.threads = 1;
  MiniBlastAligner serialAligner(reference_, serialOptions);
  std::vector<Alignment> serialOut;
  const auto serialStats = serialAligner.alignAll(reads, serialOut);

  AlignerOptions parallelOptions;
  parallelOptions.threads = 4;
  MiniBlastAligner parallelAligner(reference_, parallelOptions);
  std::vector<Alignment> parallelOut;
  const auto parallelStats = parallelAligner.alignAll(reads, parallelOut);

  EXPECT_EQ(serialStats.readsAligned, parallelStats.readsAligned);
  EXPECT_EQ(serialStats.alignmentsReported, parallelStats.alignmentsReported);
  EXPECT_EQ(serialStats.basesExamined, parallelStats.basesExamined);
  ASSERT_EQ(serialOut.size(), parallelOut.size());
  // alignAll sorts deterministically; records must match field-by-field.
  for (std::size_t i = 0; i < serialOut.size(); ++i) {
    EXPECT_EQ(serialOut[i].toRecord(), parallelOut[i].toRecord());
  }
}

TEST_F(AlignerTest, RecordFormatIsTabular) {
  Alignment alignment;
  alignment.readId = "SRR.1";
  alignment.refStart = 10;
  alignment.length = 100;
  alignment.matches = 95;
  alignment.mismatches = 5;
  alignment.score = 80;
  const std::string record = alignment.toRecord();
  EXPECT_NE(record.find("SRR.1\t10"), std::string::npos);
  EXPECT_NE(record.find("0.9500"), std::string::npos);
}

TEST_F(AlignerTest, CompressedReportScalesWithAlignments) {
  Rng rng(5);
  const auto fewReads = generateReads(rng, reference_, 50, 100, 0.8, 0.02, "F");
  const auto manyReads = generateReads(rng, reference_, 500, 100, 0.8, 0.02, "M");
  MiniBlastAligner aligner(reference_);
  std::vector<Alignment> fewOut;
  std::vector<Alignment> manyOut;
  (void)aligner.alignAll(fewReads, fewOut);
  (void)aligner.alignAll(manyReads, manyOut);
  const auto fewBytes = encodeCompressedReport(fewOut);
  const auto manyBytes = encodeCompressedReport(manyOut);
  EXPECT_GT(manyBytes.size(), fewBytes.size() * 5);
}

TEST_F(AlignerTest, EmptyReportCompressesToEmpty) {
  EXPECT_TRUE(encodeCompressedReport({}).empty());
}

TEST_F(AlignerTest, IdentityThresholdFiltersJunk) {
  AlignerOptions strict;
  strict.minIdentity = 0.99;
  MiniBlastAligner aligner(reference_, strict);
  std::string fragment = reference_.substr(1'000, 100);
  for (std::size_t pos = 5; pos < 100; pos += 10) {
    fragment[pos] = fragment[pos] == 'A' ? 'C' : 'A';  // 10% divergence
  }
  AlignerStats stats;
  EXPECT_TRUE(aligner.alignRead({"junk", fragment}, stats).empty());
}

}  // namespace
}  // namespace lidc::genomics
