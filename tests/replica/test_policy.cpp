// Placement policy tests: access heat raising replication targets,
// plan() diffing desired state against a scraped directory view with
// health/capacity-filtered destinations, and the byte-identical
// planLog() decision record.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "replica/policy.hpp"

namespace lidc::replica {
namespace {

const ndn::Name kDataset("/ndn/k8s/data/human-ref");

/// Three catalogs ("east" holds the dataset, "west"/"south" are empty
/// lakes) scraped into one directory on the ops host.
class PlacementPolicyTest : public ::testing::Test {
 protected:
  PlacementPolicyTest() : topology_(sim_) {
    topology_.addNode("ops");
    for (const std::string& cluster : {std::string("east"), std::string("west"),
                                       std::string("south")}) {
      ndn::Forwarder& node = topology_.addNode(cluster);
      topology_.connect("ops", cluster,
                        net::LinkParams{sim::Duration::millis(5)});
      catalogs_[cluster] = std::make_unique<ReplicaCatalog>(node, cluster);
      ndn::Name prefix = kReplicaPrefix;
      prefix.append(cluster);
      topology_.installRoutesTo(prefix, cluster);
    }
    catalogs_["east"]->markReady(kDataset, 1000);

    directory_ = std::make_unique<ReplicaDirectory>(*topology_.node("ops"));
    for (const auto& [cluster, catalog] : catalogs_) {
      directory_->watchCluster(cluster);
    }
  }

  void scrape() {
    directory_->scrapeOnce();
    sim_.run();
  }

  sim::Simulator sim_;
  net::Topology topology_;
  std::map<std::string, std::unique_ptr<ReplicaCatalog>> catalogs_;
  std::unique_ptr<ReplicaDirectory> directory_;
};

TEST(PolicyHeatTest, AccessHeatRaisesTargetReplicas) {
  PlacementPolicy policy;  // base 1, hot 2 at weighted heat >= 3.0
  EXPECT_EQ(policy.targetReplicas(kDataset), 1u);
  policy.recordAccess(kDataset);
  policy.recordAccess(kDataset);
  EXPECT_DOUBLE_EQ(policy.heat(kDataset), 2.0);
  EXPECT_EQ(policy.targetReplicas(kDataset), 1u);

  // A heavy-share tenant's access tips it over the threshold.
  policy.recordAccess(kDataset, /*weight=*/1.5);
  EXPECT_EQ(policy.targetReplicas(kDataset), 2u);
}

TEST_F(PlacementPolicyTest, SatisfiedDatasetPlansNothing) {
  scrape();
  PlacementPolicy policy;
  EXPECT_TRUE(policy.plan(*directory_).empty());
  EXPECT_EQ(policy.lastUnderReplicated(), 0u);
  EXPECT_EQ(policy.planLog(), "plan#1\n");
}

TEST_F(PlacementPolicyTest, HotDatasetGetsSecondReplicaOnHealthiestCluster) {
  scrape();
  PlacementPolicy policy;
  for (int i = 0; i < 3; ++i) policy.recordAccess(kDataset);
  policy.observeHealth("west", 0.9);
  policy.observeHealth("south", 0.8);

  const auto actions = policy.plan(*directory_);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].dataset, kDataset);
  EXPECT_EQ(actions[0].destination, "west");
  EXPECT_EQ(actions[0].priority, 2);  // hot datasets repair first
  EXPECT_EQ(policy.lastUnderReplicated(), 1u);
  EXPECT_EQ(policy.planLog(),
            "plan#1\n"
            "  /ndn/k8s/data/human-ref have=1 want=2 dest=west\n");
}

TEST_F(PlacementPolicyTest, UnhealthyAndFullClustersAreNotDestinations) {
  scrape();
  PlacementPolicy policy;
  for (int i = 0; i < 3; ++i) policy.recordAccess(kDataset);
  // West is below the health bar; south is healthy but its lake cannot
  // fit the 1000-byte dataset.
  policy.observeHealth("west", 0.3);
  policy.observeHealth("south", 0.9);
  policy.observeFreeBytes("south", 500);

  const auto actions = policy.plan(*directory_);
  EXPECT_TRUE(actions.empty());
  EXPECT_EQ(policy.lastUnderReplicated(), 1u);
  EXPECT_EQ(policy.planLog(),
            "plan#1\n"
            "  /ndn/k8s/data/human-ref have=1 want=2 dest=<none>\n");

  // With room, south becomes the destination despite west's seniority
  // in name order.
  policy.observeFreeBytes("south", 4096);
  const auto retry = policy.plan(*directory_);
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0].destination, "south");
}

TEST_F(PlacementPolicyTest, LostReplicaTriggersRepairActions) {
  scrape();
  PlacementPolicy policy;
  // Baseline: satisfied.
  ASSERT_TRUE(policy.plan(*directory_).empty());

  // East's lake dies with the bytes; the directory observes the lost
  // state on the next scrape.
  catalogs_["east"]->markLost(kDataset);
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  scrape();
  ASSERT_TRUE(directory_->holders(kDataset).empty());

  const auto actions = policy.plan(*directory_);
  ASSERT_EQ(actions.size(), 1u);
  // Unobserved clusters default to healthy with unknown capacity; the
  // name-order tiebreak picks deterministically.
  EXPECT_EQ(actions[0].destination, "east");
  EXPECT_EQ(policy.lastUnderReplicated(), 1u);
}

TEST_F(PlacementPolicyTest, PlanLogIsByteIdenticalAcrossIdenticalRuns) {
  scrape();
  auto runPolicy = [this] {
    PlacementPolicy policy;
    for (int i = 0; i < 4; ++i) policy.recordAccess(kDataset);
    policy.observeHealth("west", 0.7);
    policy.observeHealth("south", 0.7);
    (void)policy.plan(*directory_);
    (void)policy.plan(*directory_);
    return policy.planLog();
  };
  const std::string first = runPolicy();
  const std::string second = runPolicy();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("plan#2\n"), std::string::npos);
}

}  // namespace
}  // namespace lidc::replica
