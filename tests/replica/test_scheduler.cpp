// Transfer scheduler tests: priority-ordered staging with FIFO within
// a level, join-dedup of concurrent requests, cancellation of queued
// and in-flight transfers, capacity rejection surfaced as
// ResourceExhausted, tenant attribution through the store's quota
// charger, and the bandwidth budget serializing starts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datalake/file_server.hpp"
#include "k8s/pvc.hpp"
#include "net/topology.hpp"
#include "replica/scheduler.hpp"

namespace lidc::replica {
namespace {

const ndn::Name kDataPrefix("/ndn/k8s/data");

std::vector<std::uint8_t> payload(std::size_t size) {
  return std::vector<std::uint8_t>(size, 0x5a);
}

/// A source lake on "src" serving /ndn/k8s/data, and a destination
/// cluster "dst" staging into its own (small, configurable) lake.
class TransferSchedulerTest : public ::testing::Test {
 protected:
  TransferSchedulerTest()
      : topology_(sim_),
        srcPvc_("src-lake", ByteSize::fromMiB(8)),
        srcStore_(srcPvc_) {
    ndn::Forwarder& src = topology_.addNode("src");
    topology_.addNode("dst");
    topology_.connect("src", "dst", net::LinkParams{sim::Duration::millis(10)});
    server_ = std::make_unique<datalake::FileServer>(src, srcStore_, kDataPrefix);
    topology_.installRoutesTo(kDataPrefix, "src");

    (void)srcStore_.put(ndn::Name("/ndn/k8s/data/a"), payload(2048));
    (void)srcStore_.put(ndn::Name("/ndn/k8s/data/b"), payload(2048));
    (void)srcStore_.put(ndn::Name("/ndn/k8s/data/c"), payload(2048));
  }

  /// Builds the destination-side store and scheduler. Kept out of the
  /// constructor so tests can size the lake and tune options first.
  void makeScheduler(TransferOptions options = {},
                     ByteSize capacity = ByteSize::fromMiB(8),
                     ReplicaCatalog* catalog = nullptr) {
    dstPvc_ = std::make_unique<k8s::PersistentVolumeClaim>("dst-lake", capacity);
    dstStore_ = std::make_unique<datalake::ObjectStore>(*dstPvc_);
    scheduler_ = std::make_unique<TransferScheduler>(
        *topology_.node("dst"), *dstStore_, "dst", options, catalog);
  }

  /// Stages /a then /b back to back and returns the gap in seconds
  /// between their completion times.
  double spreadOfTwoTransfers() {
    std::vector<double> doneAt;
    auto stamp = [this, &doneAt](Status s, std::uint64_t) {
      EXPECT_TRUE(s.ok()) << s;
      doneAt.push_back(sim_.now().toSeconds());
    };
    scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"), {}, stamp);
    scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), {}, stamp);
    sim_.run();
    EXPECT_EQ(doneAt.size(), 2u);
    return doneAt.size() == 2 ? doneAt[1] - doneAt[0] : 0.0;
  }

  sim::Simulator sim_;
  net::Topology topology_;
  k8s::PersistentVolumeClaim srcPvc_;
  datalake::ObjectStore srcStore_;
  std::unique_ptr<datalake::FileServer> server_;
  std::unique_ptr<k8s::PersistentVolumeClaim> dstPvc_;
  std::unique_ptr<datalake::ObjectStore> dstStore_;
  std::unique_ptr<TransferScheduler> scheduler_;
};

TEST_F(TransferSchedulerTest, StagesAndSyncsCatalog) {
  ndn::Forwarder& dst = *topology_.node("dst");
  ReplicaCatalog catalog(dst, "dst");
  makeScheduler({}, ByteSize::fromMiB(8), &catalog);

  std::optional<Status> status;
  std::uint64_t bytes = 0;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"), {},
                      [&](Status s, std::uint64_t b) {
                        status = s;
                        bytes = b;
                      });
  // Enqueued but not landed: the catalog already announces staging.
  ASSERT_NE(catalog.entry(ndn::Name("/ndn/k8s/data/a")), nullptr);
  EXPECT_EQ(catalog.entry(ndn::Name("/ndn/k8s/data/a"))->state,
            ReplicaState::kStaging);

  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << *status;
  EXPECT_EQ(bytes, 2048u);
  EXPECT_EQ(scheduler_->staged(), 1u);
  EXPECT_EQ(scheduler_->bytesMoved(), 2048u);
  EXPECT_TRUE(dstStore_->contains(ndn::Name("/ndn/k8s/data/a")));
  EXPECT_EQ(catalog.entry(ndn::Name("/ndn/k8s/data/a"))->state,
            ReplicaState::kReady);
  EXPECT_EQ(catalog.entry(ndn::Name("/ndn/k8s/data/a"))->bytes, 2048u);
}

TEST_F(TransferSchedulerTest, LocalHitShortCircuits) {
  makeScheduler();
  ASSERT_TRUE(dstStore_->put(ndn::Name("/ndn/k8s/data/a"), payload(2048)).ok());

  std::uint64_t bytes = 99;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"), {},
                      [&bytes](Status, std::uint64_t b) { bytes = b; });
  EXPECT_EQ(scheduler_->localHits(), 1u);
  EXPECT_EQ(bytes, 0u);  // fired synchronously, nothing moved
  EXPECT_EQ(scheduler_->bytesMoved(), 0u);
}

TEST_F(TransferSchedulerTest, PriorityBeatsFifoAndFifoBreaksTies) {
  TransferOptions options;
  options.maxConcurrent = 1;
  makeScheduler(options);

  // `a` starts immediately (the lane is free); `b` and `c` queue behind
  // it, and the higher-priority `c` overtakes `b`.
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"));
  TransferRequest urgent;
  urgent.priority = 5;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"));
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/c"), urgent);
  EXPECT_EQ(scheduler_->queuedCount(), 2u);
  sim_.run();

  const std::string& log = scheduler_->eventLog();
  const auto startA = log.find("start /ndn/k8s/data/a");
  const auto startB = log.find("start /ndn/k8s/data/b");
  const auto startC = log.find("start /ndn/k8s/data/c");
  ASSERT_NE(startA, std::string::npos);
  ASSERT_NE(startB, std::string::npos);
  ASSERT_NE(startC, std::string::npos);
  EXPECT_LT(startA, startC);
  EXPECT_LT(startC, startB);
  EXPECT_EQ(scheduler_->staged(), 3u);
}

TEST_F(TransferSchedulerTest, SecondRequestJoinsInsteadOfRefetching) {
  TransferOptions options;
  options.maxConcurrent = 1;
  makeScheduler(options);

  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"));
  int firings = 0;
  std::uint64_t firstBytes = 0;
  std::uint64_t secondBytes = 0;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), {},
                      [&](Status, std::uint64_t b) {
                        ++firings;
                        firstBytes = b;
                      });
  // The join lends its higher priority to the queued transfer.
  TransferRequest boost;
  boost.priority = 7;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), boost,
                      [&](Status, std::uint64_t b) {
                        ++firings;
                        secondBytes = b;
                      });
  sim_.run();

  EXPECT_EQ(scheduler_->joined(), 1u);
  EXPECT_EQ(scheduler_->staged(), 2u);  // a and b, b fetched once
  EXPECT_EQ(firings, 2);
  EXPECT_EQ(firstBytes, 2048u);
  EXPECT_EQ(secondBytes, 2048u);
  EXPECT_NE(scheduler_->eventLog().find("join /ndn/k8s/data/b prio=7"),
            std::string::npos);
}

TEST_F(TransferSchedulerTest, CancelAbortsQueuedTransfer) {
  TransferOptions options;
  options.maxConcurrent = 1;
  makeScheduler(options);

  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"));
  std::optional<Status> status;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), {},
                      [&status](Status s, std::uint64_t) { status = s; });
  EXPECT_TRUE(scheduler_->cancel(ndn::Name("/ndn/k8s/data/b")));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kAborted);
  // Unknown / already-started datasets are not cancellable this way.
  EXPECT_FALSE(scheduler_->cancel(ndn::Name("/ndn/k8s/data/a")));

  sim_.run();
  EXPECT_EQ(scheduler_->cancelled(), 1u);
  EXPECT_FALSE(dstStore_->contains(ndn::Name("/ndn/k8s/data/b")));
  EXPECT_TRUE(dstStore_->contains(ndn::Name("/ndn/k8s/data/a")));
}

TEST_F(TransferSchedulerTest, CancelTagSweepsQueuedAndInFlight) {
  TransferOptions options;
  options.maxConcurrent = 1;
  makeScheduler(options);

  TransferRequest plan;
  plan.tag = "plan1";
  std::map<std::string, Status> statuses;
  auto record = [&statuses](const std::string& key) {
    return [&statuses, key](Status s, std::uint64_t) { statuses[key] = s; };
  };
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"), plan, record("a"));
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), plan, record("b"));

  // `a` is already in flight, `b` still queued: both are swept, the
  // queued one aborts now, the in-flight one discards its bytes.
  EXPECT_EQ(scheduler_->cancelTag("plan1"), 2u);
  EXPECT_EQ(statuses.at("b").code(), StatusCode::kAborted);
  EXPECT_EQ(statuses.count("a"), 0u);

  sim_.run();
  ASSERT_EQ(statuses.count("a"), 1u);
  EXPECT_EQ(statuses.at("a").code(), StatusCode::kAborted);
  EXPECT_EQ(scheduler_->staged(), 0u);
  EXPECT_EQ(scheduler_->bytesMoved(), 0u);
  EXPECT_FALSE(dstStore_->contains(ndn::Name("/ndn/k8s/data/a")));
  EXPECT_FALSE(dstStore_->contains(ndn::Name("/ndn/k8s/data/b")));
}

TEST_F(TransferSchedulerTest, OverCapacityLakeRejectsWithResourceExhausted) {
  // A 1 KiB lake cannot hold a 2 KiB dataset.
  makeScheduler({}, ByteSize::fromKiB(1));

  std::optional<Status> status;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"), {},
                      [&status](Status s, std::uint64_t) { status = s; });
  sim_.run();

  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler_->capacityRejects(), 1u);
  EXPECT_EQ(scheduler_->staged(), 0u);
  EXPECT_FALSE(dstStore_->contains(ndn::Name("/ndn/k8s/data/a")));
}

TEST_F(TransferSchedulerTest, TenantChargedThroughQuotaCharger) {
  TransferOptions options;
  options.tenant = "genomics";
  makeScheduler(options);
  std::map<std::string, std::uint64_t> charged;
  dstStore_->setQuotaCharger(
      [&charged](const std::string& tenant, std::uint64_t bytes) {
        if (tenant == "over-quota") {
          return Status::ResourceExhausted("publish quota exhausted");
        }
        charged[tenant] += bytes;
        return Status::Ok();
      });

  // Default tenant from TransferOptions...
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"));
  // ...a per-request override...
  TransferRequest override_;
  override_.tenant = "astro";
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), override_);
  // ...and a tenant whose quota is gone.
  TransferRequest blocked;
  blocked.tenant = "over-quota";
  std::optional<Status> status;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/c"), blocked,
                      [&status](Status s, std::uint64_t) { status = s; });
  sim_.run();

  EXPECT_EQ(charged.at("genomics"), 2048u);
  EXPECT_EQ(charged.at("astro"), 2048u);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler_->capacityRejects(), 1u);
  EXPECT_FALSE(dstStore_->contains(ndn::Name("/ndn/k8s/data/c")));
}

TEST_F(TransferSchedulerTest, WithoutBudgetSecondTransferStartsImmediately) {
  TransferOptions options;
  options.maxConcurrent = 1;
  makeScheduler(options);
  EXPECT_LT(spreadOfTwoTransfers(), 2.0);
  EXPECT_EQ(scheduler_->staged(), 2u);
}

TEST_F(TransferSchedulerTest, BandwidthBudgetSerializesStarts) {
  // 1 KiB/s budget: landing 2 KiB holds the gate for 2 s, so the second
  // transfer cannot even start until then.
  TransferOptions options;
  options.maxConcurrent = 1;
  options.bandwidthBytesPerSec = 1024;
  makeScheduler(options);
  EXPECT_GE(spreadOfTwoTransfers(), 2.0);
  EXPECT_EQ(scheduler_->staged(), 2u);
}

TEST_F(TransferSchedulerTest, FlowLedgerMatchesBytesMovedExactly) {
  // Byte-accounting parity: every staged byte the scheduler reports via
  // bytesMoved() must appear exactly once in the flow accountant's
  // "staging" ledger — same path, no double count.
  TransferOptions options;
  options.tenant = "genomics";
  makeScheduler(options);
  telemetry::FlowAccountant flow(sim_);
  scheduler_->setFlowAccountant(&flow);

  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/a"));
  TransferRequest tagged;
  tagged.tenant = "astro";
  tagged.tag = "plan-42";
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/b"), tagged);
  // A local hit moves nothing and must not touch the ledger.
  ASSERT_TRUE(dstStore_->put(ndn::Name("/ndn/k8s/data/c"), payload(64)).ok());
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/c"));
  sim_.run();

  EXPECT_EQ(scheduler_->staged(), 2u);
  EXPECT_EQ(scheduler_->localHits(), 1u);
  EXPECT_EQ(scheduler_->bytesMoved(), 4096u);
#if !defined(LIDC_TELEMETRY_DISABLED)
  std::uint64_t ledgered = 0;
  for (const auto& [key, bytes] : flow.stagedLedger()) {
    EXPECT_EQ(key.group, "staging");
    ledgered += bytes;
  }
  EXPECT_EQ(ledgered, scheduler_->bytesMoved());
  EXPECT_EQ(flow.stagedBytes("genomics"), 2048u);
  EXPECT_EQ(flow.stagedBytes("astro"), 2048u);
  telemetry::FlowKey tagKey;
  tagKey.group = "staging";
  tagKey.tenant = "astro";
  tagKey.tag = "plan-42";
  EXPECT_EQ(flow.stagedLedger().at(tagKey), 2048u);
#endif
}

TEST_F(TransferSchedulerTest, UnreachableDatasetFailsLoudly) {
  makeScheduler();
  std::optional<Status> status;
  scheduler_->enqueue(ndn::Name("/ndn/k8s/data/ghost"), {},
                      [&status](Status s, std::uint64_t) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_FALSE(status->ok());
  EXPECT_EQ(scheduler_->failures(), 1u);
  EXPECT_NE(scheduler_->eventLog().find("fail /ndn/k8s/data/ghost"),
            std::string::npos);
}

}  // namespace
}  // namespace lidc::replica
