// Replica directory tests: scraping two cluster catalogs into a merged
// view, manifest reuse when nothing changed, staleness aging instead of
// wedging on a blacked-out cluster, periodic scraping, and the snapshot
// parser's tolerance of malformed lines.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "replica/directory.hpp"

namespace lidc::replica {
namespace {

const ndn::Name kDatasetA("/ndn/k8s/data/a");
const ndn::Name kDatasetB("/ndn/k8s/data/b");

/// Catalogs on "east" and "west", a directory on an ops host.
class ReplicaDirectoryTest : public ::testing::Test {
 protected:
  ReplicaDirectoryTest() : topology_(sim_) {
    ndn::Forwarder& east = topology_.addNode("east");
    ndn::Forwarder& west = topology_.addNode("west");
    topology_.addNode("ops");
    topology_.connect("ops", "east", net::LinkParams{sim::Duration::millis(5)});
    topology_.connect("ops", "west", net::LinkParams{sim::Duration::millis(20)});
    eastCatalog_ = std::make_unique<ReplicaCatalog>(east, "east");
    westCatalog_ = std::make_unique<ReplicaCatalog>(west, "west");
    installReplicaRoute("east");
    installReplicaRoute("west");

    directory_ = std::make_unique<ReplicaDirectory>(*topology_.node("ops"));
    directory_->watchCluster("east");
    directory_->watchCluster("west");
  }

  void installReplicaRoute(const std::string& cluster) {
    ndn::Name prefix = kReplicaPrefix;
    prefix.append(cluster);
    topology_.installRoutesTo(prefix, cluster);
  }

  void scrape() {
    directory_->scrapeOnce();
    sim_.run();
  }

  sim::Simulator sim_;
  net::Topology topology_;
  std::unique_ptr<ReplicaCatalog> eastCatalog_;
  std::unique_ptr<ReplicaCatalog> westCatalog_;
  std::unique_ptr<ReplicaDirectory> directory_;
};

TEST_F(ReplicaDirectoryTest, ScrapeMergesViewsAndAnswersHolders) {
  eastCatalog_->markReady(kDatasetA, 100);
  westCatalog_->markReady(kDatasetA, 100);
  westCatalog_->markStaging(kDatasetB);

  scrape();

  EXPECT_EQ(directory_->counters().scrapesSucceeded, 2u);
  EXPECT_EQ(directory_->counters().snapshotsFetched, 2u);
  EXPECT_EQ(directory_->holders(kDatasetA),
            (std::vector<std::string>{"east", "west"}));
  EXPECT_EQ(directory_->replicationFactor(kDatasetA), 2u);
  // Staging replicas are not servable and do not count.
  EXPECT_TRUE(directory_->holders(kDatasetB).empty());
  EXPECT_EQ(directory_->bytesOf(kDatasetA), 100u);
  EXPECT_FALSE(directory_->bytesOf(kDatasetB).has_value());
  EXPECT_EQ(directory_->knownDatasets(),
            (std::vector<std::string>{"/ndn/k8s/data/a", "/ndn/k8s/data/b"}));
}

TEST_F(ReplicaDirectoryTest, UnchangedSeqReusesManifestWithoutSnapshotRefetch) {
  eastCatalog_->markReady(kDatasetA, 100);
  westCatalog_->markReady(kDatasetA, 100);
  scrape();
  ASSERT_EQ(directory_->counters().snapshotsFetched, 2u);

  // Age the cached manifests out, then scrape a quiet plane: the seq is
  // unchanged, so the snapshot fetch is skipped entirely.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  scrape();
  EXPECT_EQ(directory_->counters().manifestReuses, 2u);
  EXPECT_EQ(directory_->counters().snapshotsFetched, 2u);
  EXPECT_EQ(directory_->counters().scrapesSucceeded, 4u);

  // A mutation on one cluster re-fetches only that cluster's snapshot.
  eastCatalog_->markReady(kDatasetB, 50);
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  scrape();
  EXPECT_EQ(directory_->counters().snapshotsFetched, 3u);
  EXPECT_EQ(directory_->holders(kDatasetB), (std::vector<std::string>{"east"}));
}

TEST_F(ReplicaDirectoryTest, SilentClusterAgesIntoStale) {
  eastCatalog_->markReady(kDatasetA, 100);
  westCatalog_->markReady(kDatasetA, 100);
  scrape();
  EXPECT_FALSE(directory_->isStale("east"));
  EXPECT_EQ(directory_->replicationFactor(kDatasetA), 2u);

  // No scrapes for longer than the freshness window: both views age out
  // and their replicas stop counting toward replication factors.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(6));
  EXPECT_TRUE(directory_->isStale("east"));
  EXPECT_TRUE(directory_->isStale("west"));
  EXPECT_TRUE(directory_->holders(kDatasetA).empty());
  EXPECT_TRUE(directory_->knownDatasets().empty());

  // One fresh scrape revives them.
  scrape();
  EXPECT_FALSE(directory_->isStale("east"));
  EXPECT_EQ(directory_->replicationFactor(kDatasetA), 2u);
}

TEST_F(ReplicaDirectoryTest, UnreachableClusterFailsScrapeOthersProceed) {
  eastCatalog_->markReady(kDatasetA, 100);
  westCatalog_->markReady(kDatasetA, 100);
  scrape();

  // West drops off the overlay; its scrape fails, east's keeps working.
  ndn::Name westPrefix = kReplicaPrefix;
  westPrefix.append("west");
  topology_.uninstallRoutesTo(westPrefix, "west");
  sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  scrape();
  EXPECT_GE(directory_->counters().scrapesFailed, 1u);
  EXPECT_FALSE(directory_->isStale("east"));

  // After the freshness window only east's replica still counts.
  sim_.runUntil(sim_.now() + sim::Duration::seconds(6));
  scrape();
  EXPECT_TRUE(directory_->isStale("west"));
  EXPECT_EQ(directory_->holders(kDatasetA), (std::vector<std::string>{"east"}));
}

TEST_F(ReplicaDirectoryTest, PeriodicScrapingTracksMutations) {
  eastCatalog_->markReady(kDatasetA, 100);
  directory_->start();
  EXPECT_TRUE(directory_->running());
  sim_.runUntil(sim_.now() + sim::Duration::seconds(3));
  EXPECT_EQ(directory_->holders(kDatasetA), (std::vector<std::string>{"east"}));

  westCatalog_->markReady(kDatasetA, 100);
  sim_.runUntil(sim_.now() + sim::Duration::seconds(3));
  EXPECT_EQ(directory_->holders(kDatasetA),
            (std::vector<std::string>{"east", "west"}));

  directory_->stop();
  sim_.run();  // must drain once the ticker is stopped
  EXPECT_FALSE(directory_->running());
}

TEST_F(ReplicaDirectoryTest, TelemetryMirrorsCounters) {
  eastCatalog_->markReady(kDatasetA, 100);
  telemetry::MetricsRegistry registry;
  directory_->attachTelemetry(registry);
  scrape();

  const auto metrics = registry.flatten("lidc_replica_directory");
  EXPECT_EQ(metrics.at("lidc_replica_directory_scrapes_total"), 2.0);
  EXPECT_EQ(metrics.at("lidc_replica_directory_snapshots_fetched_total"), 2.0);
  EXPECT_EQ(metrics.at("lidc_replica_directory_stale_clusters"), 0.0);
}

TEST(ParseReplicaMapTest, SkipsMalformedLines) {
  const auto entries = parseReplicaMap(
      "dataset=/ndn/k8s/data/a;bytes=10;version=2;state=ready\n"
      "garbage line with no fields\n"
      "dataset=/ndn/k8s/data/b;bytes=5;version=1;state=wat\n"  // bad state
      "bytes=7;version=1;state=ready\n"                        // no dataset
      "dataset=/ndn/k8s/data/c;bytes=nan;version=1;state=staging\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("/ndn/k8s/data/a").bytes, 10u);
  EXPECT_EQ(entries.at("/ndn/k8s/data/a").version, 2u);
  EXPECT_EQ(entries.at("/ndn/k8s/data/a").state, ReplicaState::kReady);
  // Unparseable bytes fall back to 0, but the entry itself survives.
  EXPECT_EQ(entries.at("/ndn/k8s/data/c").bytes, 0u);
  EXPECT_EQ(entries.at("/ndn/k8s/data/c").state, ReplicaState::kStaging);
}

}  // namespace
}  // namespace lidc::replica
