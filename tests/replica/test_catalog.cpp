// Replica catalog tests: record/version/export semantics and the named
// publish protocol on the wire — short-freshness `_map` manifests,
// immutable per-seq snapshots whose seq advances only when the map
// actually changed, retained history, and malformed names nacked
// instead of wedging a scraper.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "k8s/pvc.hpp"
#include "net/topology.hpp"
#include "replica/catalog.hpp"

namespace lidc::replica {
namespace {

TEST(ReplicaStateTest, NamesRoundTrip) {
  for (ReplicaState state : {ReplicaState::kStaging, ReplicaState::kReady,
                             ReplicaState::kStale, ReplicaState::kLost}) {
    EXPECT_EQ(parseReplicaState(replicaStateName(state)), state);
  }
  EXPECT_FALSE(parseReplicaState("bogus").has_value());
}

/// Catalog on "east", a probe host one 5 ms hop away.
class ReplicaCatalogTest : public ::testing::Test {
 protected:
  ReplicaCatalogTest() : topology_(sim_) {
    ndn::Forwarder& east = topology_.addNode("east");
    topology_.addNode("probe");
    topology_.connect("east", "probe",
                      net::LinkParams{sim::Duration::millis(5)});
    catalog_ = std::make_unique<ReplicaCatalog>(east, "east");
    ndn::Name prefix = kReplicaPrefix;
    prefix.append("east");
    topology_.installRoutesTo(prefix, "east");
    probe_ = std::make_shared<ndn::AppFace>("app://probe", sim_, /*nonceSeed=*/11);
    topology_.node("probe")->addFace(probe_);
  }

  struct Reply {
    bool data = false;
    bool nack = false;
    bool timeout = false;
    std::string content;
  };

  Reply fetch(const ndn::Name& name, bool mustBeFresh) {
    Reply reply;
    ndn::Interest interest(name);
    interest.setMustBeFresh(mustBeFresh).setLifetime(sim::Duration::seconds(1));
    probe_->expressInterest(
        std::move(interest),
        [&reply](const ndn::Interest&, const ndn::Data& data) {
          reply.data = true;
          reply.content = data.contentAsString();
        },
        [&reply](const ndn::Interest&, const ndn::Nack&) { reply.nack = true; },
        [&reply](const ndn::Interest&) { reply.timeout = true; });
    sim_.run();
    return reply;
  }

  Reply fetchManifest() {
    ndn::Name name = kReplicaPrefix;
    name.append("east").append("_map");
    return fetch(name, /*mustBeFresh=*/true);
  }

  Reply fetchSnapshot(std::uint64_t seq) {
    ndn::Name name = kReplicaPrefix;
    name.append("east").appendNumber(seq);
    return fetch(name, /*mustBeFresh=*/false);
  }

  /// Ages out every short-freshness manifest cached on the path.
  void ageOutManifests() {
    sim_.runUntil(sim_.now() + sim::Duration::seconds(1));
  }

  sim::Simulator sim_;
  net::Topology topology_;
  std::unique_ptr<ReplicaCatalog> catalog_;
  std::shared_ptr<ndn::AppFace> probe_;
};

TEST_F(ReplicaCatalogTest, RecordBumpsVersionOnlyOnChange) {
  const ndn::Name dataset("/ndn/k8s/data/human-ref");
  catalog_->record(dataset, 100, ReplicaState::kReady);
  ASSERT_NE(catalog_->entry(dataset), nullptr);
  EXPECT_EQ(catalog_->entry(dataset)->version, 1u);
  EXPECT_EQ(catalog_->revision(), 1u);

  // Identical re-record is a no-op.
  catalog_->record(dataset, 100, ReplicaState::kReady);
  EXPECT_EQ(catalog_->entry(dataset)->version, 1u);
  EXPECT_EQ(catalog_->revision(), 1u);

  catalog_->record(dataset, 200, ReplicaState::kReady);
  EXPECT_EQ(catalog_->entry(dataset)->version, 2u);
  EXPECT_EQ(catalog_->revision(), 2u);
}

TEST_F(ReplicaCatalogTest, LifecycleMarksAndErase) {
  const ndn::Name dataset("/ndn/k8s/data/SRR2931415");
  catalog_->markStaging(dataset);
  EXPECT_EQ(catalog_->entry(dataset)->state, ReplicaState::kStaging);

  catalog_->markReady(dataset, 4096);
  EXPECT_EQ(catalog_->entry(dataset)->state, ReplicaState::kReady);
  EXPECT_EQ(catalog_->entry(dataset)->bytes, 4096u);

  // Lost keeps the byte count (repair planning still needs the size).
  catalog_->markLost(dataset);
  EXPECT_EQ(catalog_->entry(dataset)->state, ReplicaState::kLost);
  EXPECT_EQ(catalog_->entry(dataset)->bytes, 4096u);

  const auto revisionBefore = catalog_->revision();
  catalog_->erase(dataset);
  EXPECT_EQ(catalog_->entry(dataset), nullptr);
  EXPECT_EQ(catalog_->size(), 0u);
  EXPECT_GT(catalog_->revision(), revisionBefore);

  // Erasing an absent dataset does not churn the revision.
  const auto revisionAfter = catalog_->revision();
  catalog_->erase(dataset);
  EXPECT_EQ(catalog_->revision(), revisionAfter);
}

TEST_F(ReplicaCatalogTest, ExportMapIsSortedAndDeterministic) {
  catalog_->markReady(ndn::Name("/ndn/k8s/data/b"), 2);
  catalog_->markReady(ndn::Name("/ndn/k8s/data/a"), 1);
  catalog_->markStaging(ndn::Name("/ndn/k8s/data/c"));
  EXPECT_EQ(catalog_->exportMap(),
            "dataset=/ndn/k8s/data/a;bytes=1;version=1;state=ready\n"
            "dataset=/ndn/k8s/data/b;bytes=2;version=1;state=ready\n"
            "dataset=/ndn/k8s/data/c;bytes=0;version=1;state=staging\n");
}

TEST_F(ReplicaCatalogTest, SyncFromStoreAnnouncesSeededLake) {
  k8s::PersistentVolumeClaim pvc("lake", ByteSize::fromMiB(4));
  datalake::ObjectStore store(pvc);
  ASSERT_TRUE(store.putText(ndn::Name("/ndn/k8s/data/a"), "aaaa").ok());
  ASSERT_TRUE(store.putText(ndn::Name("/ndn/k8s/data/b"), "bb").ok());
  ASSERT_TRUE(store.putText(ndn::Name("/other/x"), "x").ok());

  catalog_->syncFromStore(store, ndn::Name("/ndn/k8s/data"));
  EXPECT_EQ(catalog_->size(), 2u);
  ASSERT_NE(catalog_->entry(ndn::Name("/ndn/k8s/data/a")), nullptr);
  EXPECT_EQ(catalog_->entry(ndn::Name("/ndn/k8s/data/a"))->bytes, 4u);
  EXPECT_EQ(catalog_->entry(ndn::Name("/ndn/k8s/data/a"))->state,
            ReplicaState::kReady);
  EXPECT_EQ(catalog_->entry(ndn::Name("/other/x")), nullptr);
}

TEST_F(ReplicaCatalogTest, ManifestThenSnapshotServesTheMap) {
  catalog_->markReady(ndn::Name("/ndn/k8s/data/human-ref"), 1234);

  const Reply manifest = fetchManifest();
  ASSERT_TRUE(manifest.data);
  EXPECT_EQ(manifest.content.rfind("seq=1;generated=", 0), 0u) << manifest.content;

  const Reply snapshot = fetchSnapshot(1);
  ASSERT_TRUE(snapshot.data);
  EXPECT_EQ(snapshot.content,
            "dataset=/ndn/k8s/data/human-ref;bytes=1234;version=1;state=ready\n");
  EXPECT_EQ(catalog_->interestsServed(), 2u);
  EXPECT_EQ(catalog_->snapshotsGenerated(), 1u);
}

TEST_F(ReplicaCatalogTest, SeqAdvancesOnlyWhenTheMapChanges) {
  catalog_->markReady(ndn::Name("/ndn/k8s/data/a"), 1);
  ASSERT_TRUE(fetchManifest().data);
  ageOutManifests();

  // Quiet lake: same seq, no new snapshot export.
  const Reply unchanged = fetchManifest();
  ASSERT_TRUE(unchanged.data);
  EXPECT_EQ(unchanged.content.rfind("seq=1;", 0), 0u) << unchanged.content;
  EXPECT_EQ(catalog_->snapshotsGenerated(), 1u);

  catalog_->markReady(ndn::Name("/ndn/k8s/data/b"), 2);
  ageOutManifests();
  const Reply changed = fetchManifest();
  ASSERT_TRUE(changed.data);
  EXPECT_EQ(changed.content.rfind("seq=2;", 0), 0u) << changed.content;
  EXPECT_EQ(catalog_->snapshotsGenerated(), 2u);

  // The superseded snapshot stays answerable (it is immutable Data some
  // directory may still be resolving), and unknown seqs are nacked.
  EXPECT_TRUE(fetchSnapshot(1).data);
  EXPECT_TRUE(fetchSnapshot(2).data);
  EXPECT_TRUE(fetchSnapshot(99).nack);
}

TEST_F(ReplicaCatalogTest, MalformedNamesAreNacked) {
  catalog_->markReady(ndn::Name("/ndn/k8s/data/a"), 1);

  // Too short: the bare cluster prefix names no selector.
  ndn::Name bare = kReplicaPrefix;
  bare.append("east");
  EXPECT_TRUE(fetch(bare, /*mustBeFresh=*/false).nack);

  // Junk selector: neither `_map` nor a snapshot seq.
  ndn::Name junk = kReplicaPrefix;
  junk.append("east").append("bogus");
  EXPECT_TRUE(fetch(junk, /*mustBeFresh=*/false).nack);

  EXPECT_EQ(catalog_->interestsRejected(), 2u);
  EXPECT_EQ(catalog_->interestsServed(), 0u);
}

}  // namespace
}  // namespace lidc::replica
