// Determinism guard for the replica plane: a chaos run (link flaps on
// the staging path) driving periodic scraping, placement planning, and
// repair transfers must produce a byte-identical planLog() and
// scheduler event trace when repeated with the same seed, and a
// different trace under a different seed. This pins the property the
// bench and the failure-recovery experiments lean on: same-seed
// simulations replay exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datalake/file_server.hpp"
#include "k8s/pvc.hpp"
#include "net/topology.hpp"
#include "replica/directory.hpp"
#include "replica/policy.hpp"
#include "replica/repair.hpp"
#include "replica/scheduler.hpp"
#include "sim/chaos.hpp"

namespace lidc::replica {
namespace {

const ndn::Name kDataPrefix("/ndn/k8s/data");

/// One cluster site: forwarder, lake, file server, catalog, scheduler.
struct Site {
  std::unique_ptr<k8s::PersistentVolumeClaim> pvc;
  std::unique_ptr<datalake::ObjectStore> store;
  std::unique_ptr<datalake::FileServer> server;
  std::unique_ptr<ReplicaCatalog> catalog;
  std::unique_ptr<TransferScheduler> scheduler;
};

/// Runs the full replica loop (scrape -> plan -> repair transfers)
/// under seeded link flaps and returns the combined deterministic
/// signature: planLog plus every scheduler's event trace.
std::string runScenario(std::uint64_t seed) {
  sim::Simulator sim;
  net::Topology topology(sim);
  topology.addNode("ops");
  std::map<std::string, Site> sites;
  for (const std::string& name : {std::string("east"), std::string("west"),
                                  std::string("south")}) {
    ndn::Forwarder& node = topology.addNode(name);
    // Ops links are slow, so staging traffic prefers the direct
    // inter-cluster links below (the ones chaos flaps).
    topology.connect("ops", name, net::LinkParams{sim::Duration::millis(50)});
    Site& site = sites[name];
    site.pvc = std::make_unique<k8s::PersistentVolumeClaim>(
        name + "-lake", ByteSize::fromMiB(32));
    site.store = std::make_unique<datalake::ObjectStore>(*site.pvc);
    site.server = std::make_unique<datalake::FileServer>(node, *site.store,
                                                         kDataPrefix);
    site.catalog = std::make_unique<ReplicaCatalog>(node, name);
    ndn::Name prefix = kReplicaPrefix;
    prefix.append(name);
    topology.installRoutesTo(prefix, name);
  }
  // The staging path crosses the inter-cluster links.
  topology.connect("east", "west", net::LinkParams{sim::Duration::millis(15)});
  topology.connect("east", "south", net::LinkParams{sim::Duration::millis(25)});
  topology.installRoutesTo(kDataPrefix, "east");

  // East is the seeded lake holding both datasets. They are big enough
  // (512 segments each, ~2 s of windowed retrieval per transfer) that
  // staging spans several flap periods of the schedule below.
  for (const char* name : {"/ndn/k8s/data/ref", "/ndn/k8s/data/reads"}) {
    (void)sites["east"].store->put(ndn::Name(name),
                                   std::vector<std::uint8_t>(4 * 1024 * 1024, 0x5a));
  }
  sites["east"].catalog->syncFromStore(*sites["east"].store, kDataPrefix);
  for (const std::string& name : {std::string("west"), std::string("south")}) {
    sites[name].scheduler = std::make_unique<TransferScheduler>(
        *topology.node(name), *sites[name].store, name, TransferOptions{},
        sites[name].catalog.get());
  }

  ReplicaDirectory directory(*topology.node("ops"));
  for (const auto& [name, site] : sites) directory.watchCluster(name);
  // Hot datasets want a replica on every cluster, so both west's and
  // south's schedulers stage (and west's path is the flapped one).
  PlacementPolicyOptions policyOptions;
  policyOptions.hotReplicas = 3;
  PlacementPolicy policy(policyOptions);
  for (const char* name : {"/ndn/k8s/data/ref", "/ndn/k8s/data/reads"}) {
    for (int i = 0; i < 3; ++i) policy.recordAccess(ndn::Name(name));
  }
  RepairLoop repair(sim, directory, policy);
  repair.addScheduler("west", sites["west"].scheduler.get());
  repair.addScheduler("south", sites["south"].scheduler.get());

  // Seeded flaps on the east-west staging path while repairs run.
  sim::ChaosEngine chaos(sim, seed);
  chaos.linkFlaps("east-west-flaps", *topology.linkBetween("east", "west"),
                  sim::Time() + sim::Duration::millis(500),
                  sim::Time() + sim::Duration::seconds(30),
                  /*meanUp=*/sim::Duration::millis(700),
                  /*meanDown=*/sim::Duration::millis(700));

  directory.start();
  repair.start();
  sim.runUntil(sim::Time() + sim::Duration::seconds(40));
  directory.stop();
  repair.stop();
  sim.run();

  std::string signature = "== planLog ==\n" + policy.planLog();
  for (const std::string& name : {std::string("south"), std::string("west")}) {
    signature += "== " + name + " ==\n" + sites[name].scheduler->eventLog();
  }
  return signature;
}

TEST(ReplicaDeterminismTest, SameSeedReplaysByteIdentically) {
  const std::string first = runScenario(42);
  const std::string second = runScenario(42);
  EXPECT_EQ(first, second);
  // The run did real work: plans were made and transfers traced.
  EXPECT_NE(first.find("plan#2"), std::string::npos);
  EXPECT_NE(first.find("enqueue /ndn/k8s/data/"), std::string::npos);
}

TEST(ReplicaDeterminismTest, DifferentSeedDivergesTheTrace) {
  EXPECT_NE(runScenario(42), runScenario(1042));
}

}  // namespace
}  // namespace lidc::replica
