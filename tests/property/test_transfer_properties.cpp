// Property sweep over the data-lake transfer path: every combination of
// object size x segment size x window must reassemble byte-identically,
// including edge sizes (0, 1, segment-1, segment, segment+1).
#include <gtest/gtest.h>

#include "datalake/file_server.hpp"
#include "datalake/retriever.hpp"
#include "net/link.hpp"

namespace lidc::datalake {
namespace {

struct TransferParams {
  std::size_t objectSize;
  std::size_t segmentSize;
  std::size_t window;
};

class TransferProperty : public ::testing::TestWithParam<TransferParams> {};

TEST_P(TransferProperty, RoundTripsExactly) {
  const auto [objectSize, segmentSize, window] = GetParam();

  sim::Simulator sim;
  ndn::Forwarder client("client", sim);
  ndn::Forwarder server("server", sim);
  auto [toServer, toClient] = net::Link::connect(
      sim, client, server, net::LinkParams{sim::Duration::millis(1)});
  client.registerPrefix(ndn::Name("/ndn/k8s/data"), toServer);

  k8s::PersistentVolumeClaim pvc("p", ByteSize::fromMiB(32));
  ObjectStore store(pvc);
  FileServer fileServer(server, store, ndn::Name("/ndn/k8s/data"), segmentSize);

  std::vector<std::uint8_t> blob(objectSize);
  Rng rng(objectSize * 31 + segmentSize);
  for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng());
  ASSERT_TRUE(store.put(ndn::Name("/ndn/k8s/data/blob"), blob).ok());

  auto app = std::make_shared<ndn::AppFace>("app://c", sim, 3);
  client.addFace(app);
  RetrieveOptions options;
  options.window = window;
  Retriever retriever(*app, options);

  std::optional<std::vector<std::uint8_t>> fetched;
  retriever.fetch(ndn::Name("/ndn/k8s/data/blob"),
                  [&](Result<std::vector<std::uint8_t>> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    fetched = std::move(*r);
                  });
  sim.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, blob);
}

std::vector<TransferParams> makeSweep() {
  std::vector<TransferParams> sweep;
  for (std::size_t segment : {64u, 1024u}) {
    for (std::size_t size :
         {0u, 1u, static_cast<unsigned>(segment - 1),
          static_cast<unsigned>(segment), static_cast<unsigned>(segment + 1),
          static_cast<unsigned>(segment * 7 + 13), 50'000u}) {
      for (std::size_t window : {1u, 4u, 64u}) {
        sweep.push_back(TransferParams{size, segment, window});
      }
    }
  }
  return sweep;
}

INSTANTIATE_TEST_SUITE_P(SizeSegmentWindowSweep, TransferProperty,
                         ::testing::ValuesIn(makeSweep()));

}  // namespace
}  // namespace lidc::datalake
