// System-level fuzz: a random interleaving of job submissions (valid
// and invalid), status polls, data fetches, cluster failures/recoveries
// and membership churn against a 3-cluster overlay. Invariants:
//   - every client callback eventually fires exactly once (no lost or
//     duplicated completions),
//   - the simulation drains (no runaway event loops),
//   - cluster resource accounting returns to zero once all jobs end,
//   - the run is deterministic for a given seed.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/overlay.hpp"

namespace lidc {
namespace {

struct FuzzOutcome {
  int submitted = 0;
  int submitResolved = 0;
  int fetches = 0;
  int fetchResolved = 0;
  int infoQueries = 0;
  int infoResolved = 0;
  std::map<std::string, int> placements;
};

FuzzOutcome runFuzz(std::uint64_t seed) {
  Rng rng(seed);
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  std::vector<std::string> clusterNames{"c0", "c1", "c2"};
  for (std::size_t i = 0; i < clusterNames.size(); ++i) {
    core::ComputeClusterConfig config;
    config.name = clusterNames[i];
    config.perNode = k8s::Resources{MilliCpu::fromCores(16), ByteSize::fromGiB(32)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [&rng](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(5 + rng.uniform(60));
      if (rng.bernoulli(0.1)) result.status = Status::Internal("flaky");
      result.resultPath = "/ndn/k8s/data/results/r";
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    (void)cluster.store().putText(ndn::Name("/ndn/k8s/data/seeded-object"),
                                  std::string(2'000, 'x'));
    overlay.connect("client-host", config.name,
                    net::LinkParams{sim::Duration::millis(5 + 10 * i)});
    overlay.announceCluster(config.name);
  }

  core::LidcClient client(*overlay.topology().node("client-host"), "fuzzer",
                          core::ClientOptions{}, seed);
  FuzzOutcome outcome;
  std::map<std::string, bool> failedClusters;

  for (int op = 0; op < 150; ++op) {
    const auto dice = rng.uniform(100);
    if (dice < 45) {
      // Submit a job (sometimes malformed).
      ++outcome.submitted;
      core::ComputeRequest request;
      request.app = rng.bernoulli(0.9) ? "sleep" : "no-such-app";
      request.cpu = MilliCpu::fromCores(1 + rng.uniform(4));
      request.memory = ByteSize::fromGiB(1 + rng.uniform(4));
      client.submit(request, [&outcome](Result<core::SubmitResult> r) {
        ++outcome.submitResolved;
        if (r.ok()) ++outcome.placements[r->cluster];
      });
    } else if (dice < 60) {
      // Fetch an object that exists everywhere (or a ghost).
      ++outcome.fetches;
      const char* object =
          rng.bernoulli(0.8) ? "/ndn/k8s/data/seeded-object" : "/ndn/k8s/data/ghost";
      client.fetchData(ndn::Name(object),
                       [&outcome](Result<std::vector<std::uint8_t>>) {
                         ++outcome.fetchResolved;
                       });
    } else if (dice < 72) {
      // Capability query (sometimes for a bogus cluster).
      ++outcome.infoQueries;
      const std::string target = rng.bernoulli(0.8)
                                     ? clusterNames[rng.uniform(3)]
                                     : std::string("phantom");
      client.queryClusterInfo(target, [&outcome](Result<core::ClusterInfo>) {
        ++outcome.infoResolved;
      });
    } else if (dice < 82) {
      // Fail or recover a random cluster.
      const std::string victim = clusterNames[rng.uniform(3)];
      if (failedClusters[victim]) {
        overlay.recoverCluster(victim);
        failedClusters[victim] = false;
      } else {
        overlay.failCluster(victim);
        failedClusters[victim] = true;
      }
    } else if (dice < 92) {
      // Withdraw/re-announce (membership churn without link changes).
      const std::string victim = clusterNames[rng.uniform(3)];
      if (!failedClusters[victim]) {
        overlay.withdrawCluster(victim);
        overlay.announceCluster(victim);
      }
    } else {
      // Idle gap.
    }
    sim.runUntil(sim.now() + sim::Duration::seconds(rng.uniform(8)));
  }

  // Recover everything and drain.
  for (const auto& name : clusterNames) {
    if (failedClusters[name]) overlay.recoverCluster(name);
  }
  sim.run();

  // Resource accounting: all jobs ended, everything returned.
  for (const auto& name : clusterNames) {
    auto& cluster = overlay.cluster(name)->cluster();
    EXPECT_EQ(cluster.runningJobCount(), 0u) << name;
    EXPECT_EQ(cluster.totalAllocated(), k8s::Resources{}) << name;
  }
  return outcome;
}

class SystemFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemFuzz, EveryCallbackFiresAndSimulationDrains) {
  const FuzzOutcome outcome = runFuzz(GetParam());
  EXPECT_EQ(outcome.submitResolved, outcome.submitted);
  EXPECT_EQ(outcome.fetchResolved, outcome.fetches);
  EXPECT_EQ(outcome.infoResolved, outcome.infoQueries);
  EXPECT_GT(outcome.submitted, 0);
}

TEST_P(SystemFuzz, DeterministicPerSeed) {
  const FuzzOutcome a = runFuzz(GetParam());
  const FuzzOutcome b = runFuzz(GetParam());
  EXPECT_EQ(a.submitResolved, b.submitResolved);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.fetchResolved, b.fetchResolved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006));

}  // namespace
}  // namespace lidc
