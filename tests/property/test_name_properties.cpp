// Property tests over NDN names: URI round-trips for arbitrary byte
// components, ordering laws, and prefix-relation invariants, swept over
// random seeds via parameterized gtest.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ndn/name.hpp"

namespace lidc::ndn {
namespace {

Name randomName(Rng& rng, std::size_t maxComponents = 6,
                std::size_t maxComponentLength = 12) {
  const std::size_t count = rng.uniform(maxComponents + 1);
  std::vector<Component> components;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t length = 1 + rng.uniform(maxComponentLength);
    std::vector<std::uint8_t> bytes(length);
    for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng());
    components.emplace_back(std::move(bytes));
  }
  return Name(std::move(components));
}

class NameProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NameProperty, UriRoundTripsArbitraryBytes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Name name = randomName(rng);
    const Name reparsed(name.toUri());
    EXPECT_EQ(reparsed, name) << name.toUri();
    EXPECT_EQ(reparsed.hash(), name.hash());
  }
}

TEST_P(NameProperty, CompareIsAStrictWeakOrder) {
  Rng rng(GetParam() ^ 0x5555);
  std::vector<Name> names;
  for (int i = 0; i < 50; ++i) names.push_back(randomName(rng));
  for (const auto& a : names) {
    EXPECT_EQ(a.compare(a), std::strong_ordering::equal);
    for (const auto& b : names) {
      const auto ab = a.compare(b);
      const auto ba = b.compare(a);
      // Antisymmetry.
      if (ab == std::strong_ordering::less) {
        EXPECT_EQ(ba, std::strong_ordering::greater);
      } else if (ab == std::strong_ordering::greater) {
        EXPECT_EQ(ba, std::strong_ordering::less);
      } else {
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST_P(NameProperty, PrefixRelationLaws) {
  Rng rng(GetParam() ^ 0xAAAA);
  for (int trial = 0; trial < 100; ++trial) {
    const Name name = randomName(rng);
    // Every prefix of a name is a prefix of it, and sorts <= it.
    for (std::size_t len = 0; len <= name.size(); ++len) {
      const Name prefix = name.prefix(len);
      EXPECT_TRUE(prefix.isPrefixOf(name));
      EXPECT_NE(prefix.compare(name), std::strong_ordering::greater);
    }
    // Appending breaks the reverse relation (unless nothing appended).
    Name extended = name;
    extended.append("suffix");
    EXPECT_TRUE(name.isPrefixOf(extended));
    EXPECT_FALSE(extended.isPrefixOf(name));
  }
}

TEST_P(NameProperty, SubNamePartitionReassembles) {
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 100; ++trial) {
    const Name name = randomName(rng);
    if (name.empty()) continue;
    const std::size_t cut = rng.uniform(name.size() + 1);
    Name front = name.prefix(cut);
    front.append(name.subName(cut));
    EXPECT_EQ(front, name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameProperty,
                         ::testing::Values(1, 42, 2024, 0xDEADBEEF, 77777));

}  // namespace
}  // namespace lidc::ndn
