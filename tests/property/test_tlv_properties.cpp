// Property tests over the wire format: packet encode/decode round trips
// for randomized Interests/Data, and decoder robustness against random
// garbage and truncations (fuzz-style; the decoder must fail cleanly,
// never crash or over-read).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ndn/packet.hpp"

namespace lidc::ndn {
namespace {

Name randomName(Rng& rng) {
  Name name;
  const std::size_t count = 1 + rng.uniform(5);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> bytes(1 + rng.uniform(10));
    for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng());
    name.append(Component(std::move(bytes)));
  }
  return name;
}

class WireProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireProperty, InterestRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Interest interest(randomName(rng));
    interest.setCanBePrefix(rng.bernoulli(0.5));
    interest.setMustBeFresh(rng.bernoulli(0.5));
    interest.setNonce(static_cast<std::uint32_t>(rng()));
    interest.setLifetime(sim::Duration::millis(
        static_cast<std::int64_t>(rng.uniform(100'000))));
    interest.setHopLimit(static_cast<std::uint8_t>(rng.uniform(256)));
    if (rng.bernoulli(0.3)) {
      std::vector<std::uint8_t> params(rng.uniform(64));
      for (auto& byte : params) byte = static_cast<std::uint8_t>(rng());
      interest.setApplicationParameters(std::move(params));
    }

    const auto wire = interest.wireEncode();
    auto decoded = Interest::wireDecode(std::span<const std::uint8_t>(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->name(), interest.name());
    EXPECT_EQ(decoded->canBePrefix(), interest.canBePrefix());
    EXPECT_EQ(decoded->mustBeFresh(), interest.mustBeFresh());
    EXPECT_EQ(decoded->nonce(), interest.nonce());
    EXPECT_EQ(decoded->lifetime(), interest.lifetime());
    EXPECT_EQ(decoded->hopLimit(), interest.hopLimit());
    EXPECT_EQ(decoded->applicationParameters(), interest.applicationParameters());
  }
}

TEST_P(WireProperty, DataRoundTripAndSignatureSurvives) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    Data data(randomName(rng));
    std::vector<std::uint8_t> content(rng.uniform(256));
    for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
    data.setContent(std::move(content));
    data.setFreshnessPeriod(sim::Duration::millis(
        static_cast<std::int64_t>(rng.uniform(1'000'000))));
    data.sign();

    const auto wire = data.wireEncode();
    auto decoded = Data::wireDecode(std::span<const std::uint8_t>(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->name(), data.name());
    EXPECT_EQ(decoded->content(), data.content());
    EXPECT_TRUE(decoded->verify());
  }
}

TEST_P(WireProperty, DecoderNeverCrashesOnGarbage) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform(128));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng());
    // Must either decode or return an error — never crash/UB.
    (void)Interest::wireDecode(std::span<const std::uint8_t>(garbage));
    (void)Data::wireDecode(std::span<const std::uint8_t>(garbage));
  }
}

TEST_P(WireProperty, TruncationsOfValidPacketsFailCleanly) {
  Rng rng(GetParam() ^ 0xCAFE);
  Interest interest(randomName(rng));
  interest.setNonce(7);
  const auto wire = interest.wireEncode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto truncated = Interest::wireDecode(
        std::span<const std::uint8_t>(wire.data(), cut));
    EXPECT_FALSE(truncated.ok()) << "cut=" << cut;
  }
  // Bit flips may or may not decode, but must not crash.
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    (void)Interest::wireDecode(std::span<const std::uint8_t>(mutated));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireProperty,
                         ::testing::Values(1, 99, 31337, 8675309));

}  // namespace
}  // namespace lidc::ndn
