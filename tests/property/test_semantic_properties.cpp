// Property tests over the semantic-name grammar: randomized requests
// round-trip through name encoding; canonicalisation is stable and
// order-insensitive; the K8s scheduler conserves resources under random
// pod churn.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/semantic_name.hpp"
#include "k8s/cluster.hpp"

namespace lidc {
namespace {

std::string randomToken(Rng& rng, std::size_t maxLength = 8) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
  const std::size_t length = 1 + rng.uniform(maxLength);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class SemanticProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SemanticProperty, RandomRequestsRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    core::ComputeRequest request;
    request.app = randomToken(rng);
    request.cpu = MilliCpu::fromCores(1 + rng.uniform(64));
    request.memory = ByteSize::fromGiB(1 + rng.uniform(64));
    const std::size_t paramCount = rng.uniform(4);
    for (std::size_t i = 0; i < paramCount; ++i) {
      request.params["p" + randomToken(rng, 4)] = randomToken(rng);
    }
    const std::size_t datasetCount = rng.uniform(3);
    for (std::size_t i = 0; i < datasetCount; ++i) {
      request.datasets.push_back(randomToken(rng));
    }
    std::sort(request.datasets.begin(), request.datasets.end());
    if (rng.bernoulli(0.5)) request.requestId = randomToken(rng);

    auto parsed = core::ComputeRequest::fromName(request.toName());
    ASSERT_TRUE(parsed.ok()) << request.toName().toUri() << " -> "
                             << parsed.status();
    EXPECT_EQ(parsed->app, request.app);
    EXPECT_EQ(parsed->cpu, request.cpu);
    EXPECT_EQ(parsed->memory, request.memory);
    EXPECT_EQ(parsed->params, request.params);
    std::sort(parsed->datasets.begin(), parsed->datasets.end());
    EXPECT_EQ(parsed->datasets, request.datasets);
    EXPECT_EQ(parsed->requestId, request.requestId);
    // Canonicalisation is a fixed point.
    EXPECT_EQ(parsed->canonicalName(), request.canonicalName());
    auto reparsed = core::ComputeRequest::fromName(parsed->toName());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->toName(), parsed->toName());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticProperty,
                         ::testing::Values(11, 222, 3333, 44444));

class SchedulerConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerConservation, ResourcesConservedUnderRandomChurn) {
  Rng rng(GetParam());
  sim::Simulator sim;
  k8s::Cluster cluster("prop", sim);
  const int nodeCount = 1 + static_cast<int>(rng.uniform(4));
  for (int i = 0; i < nodeCount; ++i) {
    cluster.addNode("n" + std::to_string(i),
                    k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  }

  std::vector<std::string> livePods;
  int created = 0;
  for (int op = 0; op < 400; ++op) {
    if (livePods.empty() || rng.bernoulli(0.6)) {
      k8s::PodSpec spec;
      spec.image = "x";
      spec.requests = k8s::Resources{MilliCpu(500 + rng.uniform(4'000)),
                                     ByteSize::fromMiB(256 + rng.uniform(8'000))};
      const std::string name = "pod-" + std::to_string(created++);
      ASSERT_TRUE(cluster.createPod("default", name, spec).ok());
      livePods.push_back(name);
    } else {
      const std::size_t victim = rng.uniform(livePods.size());
      ASSERT_TRUE(cluster.deletePod("default", livePods[victim]).ok());
      livePods.erase(livePods.begin() + static_cast<long>(victim));
    }
    sim.runUntil(sim.now() + sim::Duration::millis(100));

    // Invariants: per-node allocation within allocatable; the cluster
    // total equals the sum over bound pods.
    k8s::Resources boundTotal;
    for (auto* pod : cluster.podsInNamespace("default")) {
      if (!pod->nodeName().empty()) boundTotal += pod->spec().requests;
    }
    EXPECT_EQ(cluster.totalAllocated(), boundTotal);
    for (int i = 0; i < nodeCount; ++i) {
      auto* node = cluster.node("n" + std::to_string(i));
      EXPECT_TRUE(node->allocated().fitsWithin(node->allocatable()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerConservation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace lidc
