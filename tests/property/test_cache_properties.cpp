// Property tests over the caches: under random operation sequences the
// Content Store and ResultCache never exceed capacity, never lose the
// most recently used entry, and expired entries never come back.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/result_cache.hpp"
#include "ndn/cs.hpp"

namespace lidc {
namespace {

struct CacheParams {
  std::uint64_t seed;
  std::size_t capacity;
};

class CsProperty : public ::testing::TestWithParam<CacheParams> {};

TEST_P(CsProperty, InvariantsUnderRandomWorkload) {
  const auto [seed, capacity] = GetParam();
  Rng rng(seed);
  ndn::ContentStore cs(capacity);
  sim::Time now;

  ndn::Name lastInserted;
  for (int op = 0; op < 3'000; ++op) {
    now = now + sim::Duration::millis(static_cast<std::int64_t>(rng.uniform(50)));
    const auto key = rng.uniform(capacity * 3 + 1);
    if (rng.bernoulli(0.6)) {
      ndn::Data data(ndn::Name("/obj").appendNumber(key));
      data.setContent("x");
      data.setFreshnessPeriod(sim::Duration::seconds(1));
      cs.insert(data, now);
      lastInserted = data.name();
    } else {
      ndn::Interest probe(ndn::Name("/obj").appendNumber(key));
      (void)cs.find(probe, now);
    }
    // Invariant: never over capacity.
    ASSERT_LE(cs.size(), capacity);
    // Invariant: the most recently inserted entry is always resident.
    if (!lastInserted.empty() && capacity > 0) {
      ndn::Interest probe(lastInserted);
      ndn::ContentStore& mutableCs = cs;
      EXPECT_TRUE(mutableCs.find(probe, now).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CsProperty,
    ::testing::Values(CacheParams{1, 1}, CacheParams{2, 4}, CacheParams{3, 16},
                      CacheParams{4, 64}, CacheParams{5, 256}));

class ResultCacheProperty : public ::testing::TestWithParam<CacheParams> {};

TEST_P(ResultCacheProperty, InvariantsUnderRandomWorkload) {
  const auto [seed, capacity] = GetParam();
  Rng rng(seed);
  const sim::Duration ttl = sim::Duration::seconds(30);
  core::ResultCache cache(capacity, ttl);
  sim::Time now;

  std::map<std::size_t, sim::Time> insertedAt;
  for (int op = 0; op < 3'000; ++op) {
    now = now + sim::Duration::seconds(1);
    const auto key = rng.uniform(capacity * 2 + 1);
    const ndn::Name name = ndn::Name("/req").appendNumber(key);
    if (rng.bernoulli(0.5)) {
      cache.put(name, core::CachedResult{"job", "/result", 1, now});
      insertedAt[key] = now;
    } else {
      auto hit = cache.get(name, now);
      if (hit.has_value()) {
        // Invariant: whatever get() returns is within TTL.
        ASSERT_LE((now - hit->storedAt).toSeconds(), ttl.toSeconds());
      }
    }
    ASSERT_LE(cache.size(), capacity);
  }

  // Invariant: entries older than the TTL never come back.
  now = now + ttl + sim::Duration::seconds(1);
  for (const auto& [key, at] : insertedAt) {
    EXPECT_FALSE(cache.get(ndn::Name("/req").appendNumber(key), now).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ResultCacheProperty,
    ::testing::Values(CacheParams{7, 1}, CacheParams{8, 8}, CacheParams{9, 32},
                      CacheParams{10, 128}));

}  // namespace
}  // namespace lidc
