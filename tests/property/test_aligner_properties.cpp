// Property sweeps over the MiniBlast aligner: reported alignments always
// satisfy the configured thresholds; alignment rate responds
// monotonically (in expectation) to mutation rate and derived fraction;
// work counters are consistent.
#include <gtest/gtest.h>

#include "genomics/aligner.hpp"
#include "genomics/sequence.hpp"

namespace lidc::genomics {
namespace {

struct AlignSweep {
  double derivedFraction;
  double mutationRate;
};

class AlignerProperty : public ::testing::TestWithParam<AlignSweep> {};

TEST_P(AlignerProperty, ReportsRespectThresholdsAndCounters) {
  const auto [derived, mutation] = GetParam();
  Rng rng(1234);
  const std::string reference = randomBases(rng, 30'000);
  const auto reads =
      generateReads(rng, reference, 300, 100, derived, mutation, "P");

  AlignerOptions options;
  MiniBlastAligner aligner(reference, options);
  std::vector<Alignment> out;
  const AlignerStats stats = aligner.alignAll(reads, out);

  EXPECT_EQ(stats.readsProcessed, reads.size());
  EXPECT_LE(stats.readsAligned, stats.readsProcessed);
  EXPECT_EQ(stats.alignmentsReported, out.size());
  EXPECT_GE(stats.seedHits, stats.extensions);

  for (const auto& alignment : out) {
    EXPECT_GE(alignment.score, options.minScore) << alignment.toRecord();
    EXPECT_GE(alignment.identity(), options.minIdentity) << alignment.toRecord();
    EXPECT_EQ(alignment.matches + alignment.mismatches, alignment.length);
    EXPECT_LE(alignment.refStart + alignment.length, reference.size());
  }

  // Expected alignment-rate band: derived reads mostly align at low
  // mutation; random reads essentially never do.
  const double rate = stats.readsProcessed == 0
                          ? 0.0
                          : static_cast<double>(stats.readsAligned) /
                                static_cast<double>(stats.readsProcessed);
  if (derived == 0.0) {
    EXPECT_LT(rate, 0.05);
  } else if (mutation <= 0.02) {
    EXPECT_GT(rate, derived * 0.8);
    EXPECT_LT(rate, derived * 1.2 + 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FractionMutationSweep, AlignerProperty,
    ::testing::Values(AlignSweep{0.0, 0.0}, AlignSweep{0.25, 0.01},
                      AlignSweep{0.5, 0.02}, AlignSweep{0.75, 0.05},
                      AlignSweep{1.0, 0.0}, AlignSweep{1.0, 0.10}));

class MutationMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationMonotonicity, HigherMutationNeverHelpsAlignment) {
  Rng rng(GetParam());
  const std::string reference = randomBases(rng, 30'000);
  double previousRate = 1.1;
  for (double mutation : {0.0, 0.05, 0.15, 0.30}) {
    Rng readRng(GetParam() ^ 0x77);
    const auto reads =
        generateReads(readRng, reference, 400, 100, 1.0, mutation, "M");
    MiniBlastAligner aligner(reference);
    std::vector<Alignment> out;
    const auto stats = aligner.alignAll(reads, out);
    const double rate = static_cast<double>(stats.readsAligned) / 400.0;
    // Allow small statistical noise but require the broad trend.
    EXPECT_LE(rate, previousRate + 0.05) << "mutation=" << mutation;
    previousRate = rate;
  }
  // At 30% mutation nearly nothing survives the identity filter.
  EXPECT_LT(previousRate, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationMonotonicity, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace lidc::genomics
