// Property sweep over the job state machine: under random mixes of
// succeeding/failing/retrying jobs with random durations, every job
// terminates in a terminal state, resource accounting returns to zero,
// and attempt counts respect backoff limits.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "k8s/cluster.hpp"

namespace lidc::k8s {
namespace {

class JobLifecycleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JobLifecycleProperty, AllJobsTerminateAndResourcesReturn) {
  Rng rng(GetParam());
  sim::Simulator sim;
  Cluster cluster("prop", sim);
  const int nodes = 1 + static_cast<int>(rng.uniform(3));
  for (int i = 0; i < nodes; ++i) {
    cluster.addNode("n" + std::to_string(i),
                    Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)});
  }

  // An app that fails each attempt with the probability encoded in its
  // args, deterministically via the shared Rng.
  cluster.registerApp("chancy", [&rng](AppContext& context) {
    AppResult result;
    result.runtime = sim::Duration::seconds(1 + rng.uniform(30));
    const double failP =
        std::stod(context.spec.args.at("fail_p"));
    if (rng.bernoulli(failP)) {
      result.status = Status::Internal("induced failure");
    }
    return result;
  });

  constexpr int kJobs = 60;
  std::vector<Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.app = "chancy";
    spec.requests = Resources{MilliCpu(500 + rng.uniform(3'000)),
                              ByteSize::fromMiB(256 + rng.uniform(4'000))};
    spec.backoffLimit = static_cast<int>(rng.uniform(3));
    spec.args["fail_p"] = std::to_string(0.3 * rng.uniformDouble());
    auto job = cluster.createJob("default", "job-" + std::to_string(i), spec);
    ASSERT_TRUE(job.ok()) << job.status();
    jobs.push_back(*job);
    // Random arrival spacing.
    sim.runUntil(sim.now() + sim::Duration::seconds(rng.uniform(10)));
  }
  sim.run();

  for (Job* job : jobs) {
    const auto& status = job->status();
    EXPECT_TRUE(status.state == JobState::kCompleted ||
                status.state == JobState::kFailed)
        << job->name();
    EXPECT_GE(status.attempts, 1);
    EXPECT_LE(status.attempts, job->spec().backoffLimit + 1);
    if (status.state == JobState::kCompleted ||
        status.state == JobState::kFailed) {
      EXPECT_GE(status.completionTime.toNanos(), status.submitTime.toNanos());
    }
  }
  // Every core and byte came back.
  EXPECT_EQ(cluster.totalAllocated(), Resources{});
  EXPECT_EQ(cluster.runningJobCount(), 0u);
  EXPECT_EQ(cluster.pendingUnschedulable(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobLifecycleProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace lidc::k8s
