#include "workflow/spec.hpp"

#include <gtest/gtest.h>

namespace lidc::workflow {
namespace {

StageSpec makeStage(std::string name, std::vector<StageInput> inputs = {}) {
  StageSpec stage;
  stage.name = std::move(name);
  stage.app = "transform";
  stage.cpu = MilliCpu::fromCores(1);
  stage.memory = ByteSize::fromGiB(1);
  stage.stageInputs = std::move(inputs);
  return stage;
}

TEST(WorkflowSpecTest, IntermediateNamesAreDeterministic) {
  EXPECT_EQ(intermediatePath("wf1", "align"), "wf/wf1/align");
  EXPECT_EQ(intermediateName("wf1", "align").toUri(),
            "/ndn/k8s/data/wf/wf1/align");
}

TEST(WorkflowSpecTest, LinearChainOrdersInDependencyOrder) {
  WorkflowSpec spec;
  spec.id = "chain";
  spec.addStage(makeStage("c", {{"b", ""}}));
  spec.addStage(makeStage("b", {{"a", ""}}));
  spec.addStage(makeStage("a"));

  auto order = validateAndOrder(spec);
  ASSERT_TRUE(order.ok()) << order.status();
  ASSERT_EQ(order->size(), 3u);
  // a (index 2) before b (index 1) before c (index 0).
  EXPECT_EQ((*order)[0], 2u);
  EXPECT_EQ((*order)[1], 1u);
  EXPECT_EQ((*order)[2], 0u);
}

TEST(WorkflowSpecTest, DiamondDrainsReadySetInDeclarationOrder) {
  WorkflowSpec spec;
  spec.id = "diamond";
  spec.addStage(makeStage("prep"));
  spec.addStage(makeStage("left", {{"prep", "input"}}));
  spec.addStage(makeStage("right", {{"prep", "input"}}));
  spec.addStage(makeStage("merge", {{"left", ""}, {"right", ""}}));

  auto order = validateAndOrder(spec);
  ASSERT_TRUE(order.ok()) << order.status();
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(WorkflowSpecTest, RejectsCycle) {
  WorkflowSpec spec;
  spec.id = "cyclic";
  spec.addStage(makeStage("a", {{"c", ""}}));
  spec.addStage(makeStage("b", {{"a", ""}}));
  spec.addStage(makeStage("c", {{"b", ""}}));

  auto order = validateAndOrder(spec);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(order.status().message().find("cycle"), std::string::npos);
  EXPECT_NE(order.status().message().find("a"), std::string::npos);
}

TEST(WorkflowSpecTest, RejectsDanglingInput) {
  WorkflowSpec spec;
  spec.id = "dangling";
  spec.addStage(makeStage("a", {{"ghost", ""}}));

  auto order = validateAndOrder(spec);
  ASSERT_FALSE(order.ok());
  EXPECT_NE(order.status().message().find("unknown stage 'ghost'"),
            std::string::npos);
}

TEST(WorkflowSpecTest, RejectsSelfReference) {
  WorkflowSpec spec;
  spec.id = "selfie";
  spec.addStage(makeStage("a", {{"a", ""}}));

  auto order = validateAndOrder(spec);
  ASSERT_FALSE(order.ok());
  EXPECT_NE(order.status().message().find("own output"), std::string::npos);
}

TEST(WorkflowSpecTest, RejectsDuplicateStageNames) {
  WorkflowSpec spec;
  spec.id = "dup";
  spec.addStage(makeStage("a"));
  spec.addStage(makeStage("a"));

  auto order = validateAndOrder(spec);
  ASSERT_FALSE(order.ok());
  EXPECT_NE(order.status().message().find("duplicate"), std::string::npos);
}

TEST(WorkflowSpecTest, RejectsUnsafeIdentifiers) {
  WorkflowSpec spec;
  spec.id = "has/slash";
  spec.addStage(makeStage("a"));
  EXPECT_FALSE(validateAndOrder(spec).ok());

  spec.id = "ok";
  spec.stages[0].name = "spaced out";
  EXPECT_FALSE(validateAndOrder(spec).ok());

  spec.stages[0].name = "";
  EXPECT_FALSE(validateAndOrder(spec).ok());
}

TEST(WorkflowSpecTest, RejectsEmptyWorkflowAndMissingApp) {
  WorkflowSpec spec;
  spec.id = "empty";
  EXPECT_FALSE(validateAndOrder(spec).ok());

  StageSpec noApp = makeStage("a");
  noApp.app.clear();
  spec.addStage(std::move(noApp));
  auto order = validateAndOrder(spec);
  ASSERT_FALSE(order.ok());
  EXPECT_NE(order.status().message().find("names no app"), std::string::npos);
}

TEST(WorkflowSpecTest, StageLookupFindsByName) {
  WorkflowSpec spec;
  spec.id = "lookup";
  spec.addStage(makeStage("a"));
  spec.addStage(makeStage("b"));
  ASSERT_NE(spec.stage("b"), nullptr);
  EXPECT_EQ(spec.stage("b")->name, "b");
  EXPECT_EQ(spec.stage("zz"), nullptr);
}

}  // namespace
}  // namespace lidc::workflow
