# Empty compiler generated dependencies file for lidc_net_tests.
# This may be replaced when dependencies are built.
