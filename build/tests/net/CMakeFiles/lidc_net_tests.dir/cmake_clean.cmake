file(REMOVE_RECURSE
  "CMakeFiles/lidc_net_tests.dir/test_link.cpp.o"
  "CMakeFiles/lidc_net_tests.dir/test_link.cpp.o.d"
  "CMakeFiles/lidc_net_tests.dir/test_topology.cpp.o"
  "CMakeFiles/lidc_net_tests.dir/test_topology.cpp.o.d"
  "lidc_net_tests"
  "lidc_net_tests.pdb"
  "lidc_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
