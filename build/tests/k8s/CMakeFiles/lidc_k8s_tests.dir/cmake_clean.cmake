file(REMOVE_RECURSE
  "CMakeFiles/lidc_k8s_tests.dir/test_cluster.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_cluster.cpp.o.d"
  "CMakeFiles/lidc_k8s_tests.dir/test_deployment.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_deployment.cpp.o.d"
  "CMakeFiles/lidc_k8s_tests.dir/test_node_failure.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_node_failure.cpp.o.d"
  "CMakeFiles/lidc_k8s_tests.dir/test_pvc.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_pvc.cpp.o.d"
  "CMakeFiles/lidc_k8s_tests.dir/test_resize.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_resize.cpp.o.d"
  "CMakeFiles/lidc_k8s_tests.dir/test_scheduler.cpp.o"
  "CMakeFiles/lidc_k8s_tests.dir/test_scheduler.cpp.o.d"
  "lidc_k8s_tests"
  "lidc_k8s_tests.pdb"
  "lidc_k8s_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_k8s_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
