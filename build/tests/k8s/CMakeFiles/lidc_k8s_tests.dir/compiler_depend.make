# Empty compiler generated dependencies file for lidc_k8s_tests.
# This may be replaced when dependencies are built.
