# CMake generated Testfile for 
# Source directory: /root/repo/tests/k8s
# Build directory: /root/repo/build/tests/k8s
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/k8s/lidc_k8s_tests[1]_include.cmake")
