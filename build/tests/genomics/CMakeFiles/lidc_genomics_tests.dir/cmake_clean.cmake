file(REMOVE_RECURSE
  "CMakeFiles/lidc_genomics_tests.dir/test_aligner.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_aligner.cpp.o.d"
  "CMakeFiles/lidc_genomics_tests.dir/test_datasets.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_datasets.cpp.o.d"
  "CMakeFiles/lidc_genomics_tests.dir/test_fasta.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_fasta.cpp.o.d"
  "CMakeFiles/lidc_genomics_tests.dir/test_kmer_index.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_kmer_index.cpp.o.d"
  "CMakeFiles/lidc_genomics_tests.dir/test_magic_blast_app.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_magic_blast_app.cpp.o.d"
  "CMakeFiles/lidc_genomics_tests.dir/test_sequence.cpp.o"
  "CMakeFiles/lidc_genomics_tests.dir/test_sequence.cpp.o.d"
  "lidc_genomics_tests"
  "lidc_genomics_tests.pdb"
  "lidc_genomics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_genomics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
