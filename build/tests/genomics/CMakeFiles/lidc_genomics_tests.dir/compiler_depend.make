# Empty compiler generated dependencies file for lidc_genomics_tests.
# This may be replaced when dependencies are built.
