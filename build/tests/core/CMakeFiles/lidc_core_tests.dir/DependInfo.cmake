
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adaptive.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_adaptive.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/core/test_centralized.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_centralized.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_centralized.cpp.o.d"
  "/root/repo/tests/core/test_cluster_info.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_cluster_info.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_cluster_info.cpp.o.d"
  "/root/repo/tests/core/test_compress_app.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_compress_app.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_compress_app.cpp.o.d"
  "/root/repo/tests/core/test_gateway.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_gateway.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_gateway.cpp.o.d"
  "/root/repo/tests/core/test_job_manager.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_job_manager.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_job_manager.cpp.o.d"
  "/root/repo/tests/core/test_overlay.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_overlay.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_overlay.cpp.o.d"
  "/root/repo/tests/core/test_predictor.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_predictor.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/core/test_publish.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_publish.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_publish.cpp.o.d"
  "/root/repo/tests/core/test_replication.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_replication.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/core/test_result_cache.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_result_cache.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_result_cache.cpp.o.d"
  "/root/repo/tests/core/test_semantic_name.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_semantic_name.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_semantic_name.cpp.o.d"
  "/root/repo/tests/core/test_tenancy.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_tenancy.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_tenancy.cpp.o.d"
  "/root/repo/tests/core/test_validators.cpp" "tests/core/CMakeFiles/lidc_core_tests.dir/test_validators.cpp.o" "gcc" "tests/core/CMakeFiles/lidc_core_tests.dir/test_validators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lidc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lidc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/lidc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lidc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
