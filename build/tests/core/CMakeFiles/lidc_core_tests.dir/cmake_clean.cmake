file(REMOVE_RECURSE
  "CMakeFiles/lidc_core_tests.dir/test_adaptive.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_adaptive.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_centralized.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_centralized.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_cluster_info.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_cluster_info.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_compress_app.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_compress_app.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_gateway.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_gateway.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_job_manager.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_job_manager.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_overlay.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_overlay.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_predictor.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_predictor.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_publish.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_publish.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_replication.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_replication.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_result_cache.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_result_cache.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_semantic_name.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_semantic_name.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_tenancy.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_tenancy.cpp.o.d"
  "CMakeFiles/lidc_core_tests.dir/test_validators.cpp.o"
  "CMakeFiles/lidc_core_tests.dir/test_validators.cpp.o.d"
  "lidc_core_tests"
  "lidc_core_tests.pdb"
  "lidc_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
