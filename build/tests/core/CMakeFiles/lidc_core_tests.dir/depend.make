# Empty dependencies file for lidc_core_tests.
# This may be replaced when dependencies are built.
