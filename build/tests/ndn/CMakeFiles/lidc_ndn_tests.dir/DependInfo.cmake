
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ndn/test_app_face.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_app_face.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_app_face.cpp.o.d"
  "/root/repo/tests/ndn/test_cs.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_cs.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_cs.cpp.o.d"
  "/root/repo/tests/ndn/test_dead_nonce_list.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_dead_nonce_list.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_dead_nonce_list.cpp.o.d"
  "/root/repo/tests/ndn/test_fib.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_fib.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_fib.cpp.o.d"
  "/root/repo/tests/ndn/test_forwarder.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_forwarder.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_forwarder.cpp.o.d"
  "/root/repo/tests/ndn/test_name.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_name.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_name.cpp.o.d"
  "/root/repo/tests/ndn/test_packet.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_packet.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/ndn/test_pit.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_pit.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_pit.cpp.o.d"
  "/root/repo/tests/ndn/test_strategy.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_strategy.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_strategy.cpp.o.d"
  "/root/repo/tests/ndn/test_tlv.cpp" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_tlv.cpp.o" "gcc" "tests/ndn/CMakeFiles/lidc_ndn_tests.dir/test_tlv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lidc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lidc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/lidc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lidc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
