# Empty dependencies file for lidc_ndn_tests.
# This may be replaced when dependencies are built.
