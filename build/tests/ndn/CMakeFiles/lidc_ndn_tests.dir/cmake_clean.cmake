file(REMOVE_RECURSE
  "CMakeFiles/lidc_ndn_tests.dir/test_app_face.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_app_face.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_cs.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_cs.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_dead_nonce_list.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_dead_nonce_list.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_fib.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_fib.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_forwarder.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_forwarder.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_name.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_name.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_packet.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_packet.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_pit.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_pit.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_strategy.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_strategy.cpp.o.d"
  "CMakeFiles/lidc_ndn_tests.dir/test_tlv.cpp.o"
  "CMakeFiles/lidc_ndn_tests.dir/test_tlv.cpp.o.d"
  "lidc_ndn_tests"
  "lidc_ndn_tests.pdb"
  "lidc_ndn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_ndn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
