# CMake generated Testfile for 
# Source directory: /root/repo/tests/ndn
# Build directory: /root/repo/build/tests/ndn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ndn/lidc_ndn_tests[1]_include.cmake")
