# Empty dependencies file for lidc_sim_tests.
# This may be replaced when dependencies are built.
