file(REMOVE_RECURSE
  "CMakeFiles/lidc_sim_tests.dir/test_simulator.cpp.o"
  "CMakeFiles/lidc_sim_tests.dir/test_simulator.cpp.o.d"
  "lidc_sim_tests"
  "lidc_sim_tests.pdb"
  "lidc_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
