file(REMOVE_RECURSE
  "CMakeFiles/lidc_common_tests.dir/test_rng.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/lidc_common_tests.dir/test_status.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_status.cpp.o.d"
  "CMakeFiles/lidc_common_tests.dir/test_strings.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_strings.cpp.o.d"
  "CMakeFiles/lidc_common_tests.dir/test_thread_pool.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_thread_pool.cpp.o.d"
  "CMakeFiles/lidc_common_tests.dir/test_units.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_units.cpp.o.d"
  "CMakeFiles/lidc_common_tests.dir/test_workload.cpp.o"
  "CMakeFiles/lidc_common_tests.dir/test_workload.cpp.o.d"
  "lidc_common_tests"
  "lidc_common_tests.pdb"
  "lidc_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
