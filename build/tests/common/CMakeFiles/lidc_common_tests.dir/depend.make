# Empty dependencies file for lidc_common_tests.
# This may be replaced when dependencies are built.
