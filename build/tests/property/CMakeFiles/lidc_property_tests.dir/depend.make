# Empty dependencies file for lidc_property_tests.
# This may be replaced when dependencies are built.
