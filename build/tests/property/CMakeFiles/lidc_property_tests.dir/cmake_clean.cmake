file(REMOVE_RECURSE
  "CMakeFiles/lidc_property_tests.dir/test_aligner_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_aligner_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_cache_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_cache_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_job_lifecycle_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_job_lifecycle_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_name_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_name_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_semantic_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_semantic_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_system_fuzz.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_system_fuzz.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_tlv_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_tlv_properties.cpp.o.d"
  "CMakeFiles/lidc_property_tests.dir/test_transfer_properties.cpp.o"
  "CMakeFiles/lidc_property_tests.dir/test_transfer_properties.cpp.o.d"
  "lidc_property_tests"
  "lidc_property_tests.pdb"
  "lidc_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
