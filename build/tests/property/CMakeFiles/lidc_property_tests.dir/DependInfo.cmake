
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/test_aligner_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_aligner_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_aligner_properties.cpp.o.d"
  "/root/repo/tests/property/test_cache_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_cache_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_cache_properties.cpp.o.d"
  "/root/repo/tests/property/test_job_lifecycle_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_job_lifecycle_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_job_lifecycle_properties.cpp.o.d"
  "/root/repo/tests/property/test_name_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_name_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_name_properties.cpp.o.d"
  "/root/repo/tests/property/test_semantic_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_semantic_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_semantic_properties.cpp.o.d"
  "/root/repo/tests/property/test_system_fuzz.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_system_fuzz.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_system_fuzz.cpp.o.d"
  "/root/repo/tests/property/test_tlv_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_tlv_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_tlv_properties.cpp.o.d"
  "/root/repo/tests/property/test_transfer_properties.cpp" "tests/property/CMakeFiles/lidc_property_tests.dir/test_transfer_properties.cpp.o" "gcc" "tests/property/CMakeFiles/lidc_property_tests.dir/test_transfer_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lidc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lidc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/lidc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lidc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
