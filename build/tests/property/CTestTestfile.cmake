# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/property/lidc_property_tests[1]_include.cmake")
