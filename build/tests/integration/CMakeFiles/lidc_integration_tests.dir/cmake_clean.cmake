file(REMOVE_RECURSE
  "CMakeFiles/lidc_integration_tests.dir/test_caching.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_caching.cpp.o.d"
  "CMakeFiles/lidc_integration_tests.dir/test_cross_cluster_data.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_cross_cluster_data.cpp.o.d"
  "CMakeFiles/lidc_integration_tests.dir/test_lossy_network.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_lossy_network.cpp.o.d"
  "CMakeFiles/lidc_integration_tests.dir/test_multi_cluster.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_multi_cluster.cpp.o.d"
  "CMakeFiles/lidc_integration_tests.dir/test_node_failure_workflow.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_node_failure_workflow.cpp.o.d"
  "CMakeFiles/lidc_integration_tests.dir/test_workflow.cpp.o"
  "CMakeFiles/lidc_integration_tests.dir/test_workflow.cpp.o.d"
  "lidc_integration_tests"
  "lidc_integration_tests.pdb"
  "lidc_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
