# Empty dependencies file for lidc_integration_tests.
# This may be replaced when dependencies are built.
