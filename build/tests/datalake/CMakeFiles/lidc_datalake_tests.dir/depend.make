# Empty dependencies file for lidc_datalake_tests.
# This may be replaced when dependencies are built.
