file(REMOVE_RECURSE
  "CMakeFiles/lidc_datalake_tests.dir/test_file_transfer.cpp.o"
  "CMakeFiles/lidc_datalake_tests.dir/test_file_transfer.cpp.o.d"
  "CMakeFiles/lidc_datalake_tests.dir/test_object_store.cpp.o"
  "CMakeFiles/lidc_datalake_tests.dir/test_object_store.cpp.o.d"
  "CMakeFiles/lidc_datalake_tests.dir/test_security.cpp.o"
  "CMakeFiles/lidc_datalake_tests.dir/test_security.cpp.o.d"
  "lidc_datalake_tests"
  "lidc_datalake_tests.pdb"
  "lidc_datalake_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_datalake_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
