file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_latency.dir/bench_placement_latency.cpp.o"
  "CMakeFiles/bench_placement_latency.dir/bench_placement_latency.cpp.o.d"
  "bench_placement_latency"
  "bench_placement_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
