# Empty compiler generated dependencies file for bench_placement_latency.
# This may be replaced when dependencies are built.
