file(REMOVE_RECURSE
  "CMakeFiles/bench_result_cache.dir/bench_result_cache.cpp.o"
  "CMakeFiles/bench_result_cache.dir/bench_result_cache.cpp.o.d"
  "bench_result_cache"
  "bench_result_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_result_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
