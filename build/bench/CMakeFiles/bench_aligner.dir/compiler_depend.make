# Empty compiler generated dependencies file for bench_aligner.
# This may be replaced when dependencies are built.
