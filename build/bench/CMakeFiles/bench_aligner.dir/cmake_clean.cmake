file(REMOVE_RECURSE
  "CMakeFiles/bench_aligner.dir/bench_aligner.cpp.o"
  "CMakeFiles/bench_aligner.dir/bench_aligner.cpp.o.d"
  "bench_aligner"
  "bench_aligner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aligner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
