file(REMOVE_RECURSE
  "CMakeFiles/bench_datalake.dir/bench_datalake.cpp.o"
  "CMakeFiles/bench_datalake.dir/bench_datalake.cpp.o.d"
  "bench_datalake"
  "bench_datalake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
