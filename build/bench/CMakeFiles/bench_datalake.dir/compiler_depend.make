# Empty compiler generated dependencies file for bench_datalake.
# This may be replaced when dependencies are built.
