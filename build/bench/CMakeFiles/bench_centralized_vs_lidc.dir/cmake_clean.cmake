file(REMOVE_RECURSE
  "CMakeFiles/bench_centralized_vs_lidc.dir/bench_centralized_vs_lidc.cpp.o"
  "CMakeFiles/bench_centralized_vs_lidc.dir/bench_centralized_vs_lidc.cpp.o.d"
  "bench_centralized_vs_lidc"
  "bench_centralized_vs_lidc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_centralized_vs_lidc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
