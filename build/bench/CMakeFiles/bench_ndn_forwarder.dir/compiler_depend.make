# Empty compiler generated dependencies file for bench_ndn_forwarder.
# This may be replaced when dependencies are built.
