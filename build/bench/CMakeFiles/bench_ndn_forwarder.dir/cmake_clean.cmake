file(REMOVE_RECURSE
  "CMakeFiles/bench_ndn_forwarder.dir/bench_ndn_forwarder.cpp.o"
  "CMakeFiles/bench_ndn_forwarder.dir/bench_ndn_forwarder.cpp.o.d"
  "bench_ndn_forwarder"
  "bench_ndn_forwarder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndn_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
