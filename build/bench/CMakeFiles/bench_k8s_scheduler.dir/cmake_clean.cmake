file(REMOVE_RECURSE
  "CMakeFiles/bench_k8s_scheduler.dir/bench_k8s_scheduler.cpp.o"
  "CMakeFiles/bench_k8s_scheduler.dir/bench_k8s_scheduler.cpp.o.d"
  "bench_k8s_scheduler"
  "bench_k8s_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k8s_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
