# Empty dependencies file for bench_k8s_scheduler.
# This may be replaced when dependencies are built.
