# Empty dependencies file for bench_dynamic_clusters.
# This may be replaced when dependencies are built.
