file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_clusters.dir/bench_dynamic_clusters.cpp.o"
  "CMakeFiles/bench_dynamic_clusters.dir/bench_dynamic_clusters.cpp.o.d"
  "bench_dynamic_clusters"
  "bench_dynamic_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
