# Empty compiler generated dependencies file for lidc_datalake.
# This may be replaced when dependencies are built.
