
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalake/file_server.cpp" "src/datalake/CMakeFiles/lidc_datalake.dir/file_server.cpp.o" "gcc" "src/datalake/CMakeFiles/lidc_datalake.dir/file_server.cpp.o.d"
  "/root/repo/src/datalake/object_store.cpp" "src/datalake/CMakeFiles/lidc_datalake.dir/object_store.cpp.o" "gcc" "src/datalake/CMakeFiles/lidc_datalake.dir/object_store.cpp.o.d"
  "/root/repo/src/datalake/retriever.cpp" "src/datalake/CMakeFiles/lidc_datalake.dir/retriever.cpp.o" "gcc" "src/datalake/CMakeFiles/lidc_datalake.dir/retriever.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
