file(REMOVE_RECURSE
  "liblidc_datalake.a"
)
