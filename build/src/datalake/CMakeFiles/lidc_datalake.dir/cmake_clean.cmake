file(REMOVE_RECURSE
  "CMakeFiles/lidc_datalake.dir/file_server.cpp.o"
  "CMakeFiles/lidc_datalake.dir/file_server.cpp.o.d"
  "CMakeFiles/lidc_datalake.dir/object_store.cpp.o"
  "CMakeFiles/lidc_datalake.dir/object_store.cpp.o.d"
  "CMakeFiles/lidc_datalake.dir/retriever.cpp.o"
  "CMakeFiles/lidc_datalake.dir/retriever.cpp.o.d"
  "liblidc_datalake.a"
  "liblidc_datalake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_datalake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
