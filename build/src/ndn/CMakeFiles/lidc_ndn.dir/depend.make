# Empty dependencies file for lidc_ndn.
# This may be replaced when dependencies are built.
