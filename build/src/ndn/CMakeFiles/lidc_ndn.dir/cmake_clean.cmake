file(REMOVE_RECURSE
  "CMakeFiles/lidc_ndn.dir/app_face.cpp.o"
  "CMakeFiles/lidc_ndn.dir/app_face.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/cs.cpp.o"
  "CMakeFiles/lidc_ndn.dir/cs.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/fib.cpp.o"
  "CMakeFiles/lidc_ndn.dir/fib.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/forwarder.cpp.o"
  "CMakeFiles/lidc_ndn.dir/forwarder.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/name.cpp.o"
  "CMakeFiles/lidc_ndn.dir/name.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/packet.cpp.o"
  "CMakeFiles/lidc_ndn.dir/packet.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/pit.cpp.o"
  "CMakeFiles/lidc_ndn.dir/pit.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/strategy.cpp.o"
  "CMakeFiles/lidc_ndn.dir/strategy.cpp.o.d"
  "CMakeFiles/lidc_ndn.dir/tlv.cpp.o"
  "CMakeFiles/lidc_ndn.dir/tlv.cpp.o.d"
  "liblidc_ndn.a"
  "liblidc_ndn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_ndn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
