file(REMOVE_RECURSE
  "liblidc_ndn.a"
)
