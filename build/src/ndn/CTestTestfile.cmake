# CMake generated Testfile for 
# Source directory: /root/repo/src/ndn
# Build directory: /root/repo/build/src/ndn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
