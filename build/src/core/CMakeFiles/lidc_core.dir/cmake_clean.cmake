file(REMOVE_RECURSE
  "CMakeFiles/lidc_core.dir/adaptive.cpp.o"
  "CMakeFiles/lidc_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/lidc_core.dir/centralized.cpp.o"
  "CMakeFiles/lidc_core.dir/centralized.cpp.o.d"
  "CMakeFiles/lidc_core.dir/client.cpp.o"
  "CMakeFiles/lidc_core.dir/client.cpp.o.d"
  "CMakeFiles/lidc_core.dir/compute_cluster.cpp.o"
  "CMakeFiles/lidc_core.dir/compute_cluster.cpp.o.d"
  "CMakeFiles/lidc_core.dir/gateway.cpp.o"
  "CMakeFiles/lidc_core.dir/gateway.cpp.o.d"
  "CMakeFiles/lidc_core.dir/job_manager.cpp.o"
  "CMakeFiles/lidc_core.dir/job_manager.cpp.o.d"
  "CMakeFiles/lidc_core.dir/overlay.cpp.o"
  "CMakeFiles/lidc_core.dir/overlay.cpp.o.d"
  "CMakeFiles/lidc_core.dir/predictor.cpp.o"
  "CMakeFiles/lidc_core.dir/predictor.cpp.o.d"
  "CMakeFiles/lidc_core.dir/replication.cpp.o"
  "CMakeFiles/lidc_core.dir/replication.cpp.o.d"
  "CMakeFiles/lidc_core.dir/result_cache.cpp.o"
  "CMakeFiles/lidc_core.dir/result_cache.cpp.o.d"
  "CMakeFiles/lidc_core.dir/semantic_name.cpp.o"
  "CMakeFiles/lidc_core.dir/semantic_name.cpp.o.d"
  "CMakeFiles/lidc_core.dir/validators.cpp.o"
  "CMakeFiles/lidc_core.dir/validators.cpp.o.d"
  "liblidc_core.a"
  "liblidc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
