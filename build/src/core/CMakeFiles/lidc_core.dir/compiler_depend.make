# Empty compiler generated dependencies file for lidc_core.
# This may be replaced when dependencies are built.
