file(REMOVE_RECURSE
  "liblidc_core.a"
)
