
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/lidc_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/centralized.cpp" "src/core/CMakeFiles/lidc_core.dir/centralized.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/centralized.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/lidc_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/client.cpp.o.d"
  "/root/repo/src/core/compute_cluster.cpp" "src/core/CMakeFiles/lidc_core.dir/compute_cluster.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/compute_cluster.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/core/CMakeFiles/lidc_core.dir/gateway.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/gateway.cpp.o.d"
  "/root/repo/src/core/job_manager.cpp" "src/core/CMakeFiles/lidc_core.dir/job_manager.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/job_manager.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/lidc_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/lidc_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/lidc_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/replication.cpp.o.d"
  "/root/repo/src/core/result_cache.cpp" "src/core/CMakeFiles/lidc_core.dir/result_cache.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/result_cache.cpp.o.d"
  "/root/repo/src/core/semantic_name.cpp" "src/core/CMakeFiles/lidc_core.dir/semantic_name.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/semantic_name.cpp.o.d"
  "/root/repo/src/core/validators.cpp" "src/core/CMakeFiles/lidc_core.dir/validators.cpp.o" "gcc" "src/core/CMakeFiles/lidc_core.dir/validators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lidc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/lidc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lidc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
