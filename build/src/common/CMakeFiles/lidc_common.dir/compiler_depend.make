# Empty compiler generated dependencies file for lidc_common.
# This may be replaced when dependencies are built.
