file(REMOVE_RECURSE
  "CMakeFiles/lidc_common.dir/logging.cpp.o"
  "CMakeFiles/lidc_common.dir/logging.cpp.o.d"
  "CMakeFiles/lidc_common.dir/rng.cpp.o"
  "CMakeFiles/lidc_common.dir/rng.cpp.o.d"
  "CMakeFiles/lidc_common.dir/status.cpp.o"
  "CMakeFiles/lidc_common.dir/status.cpp.o.d"
  "CMakeFiles/lidc_common.dir/strings.cpp.o"
  "CMakeFiles/lidc_common.dir/strings.cpp.o.d"
  "CMakeFiles/lidc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/lidc_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lidc_common.dir/units.cpp.o"
  "CMakeFiles/lidc_common.dir/units.cpp.o.d"
  "liblidc_common.a"
  "liblidc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
