file(REMOVE_RECURSE
  "liblidc_common.a"
)
