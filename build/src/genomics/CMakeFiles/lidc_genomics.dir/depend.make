# Empty dependencies file for lidc_genomics.
# This may be replaced when dependencies are built.
