file(REMOVE_RECURSE
  "CMakeFiles/lidc_genomics.dir/aligner.cpp.o"
  "CMakeFiles/lidc_genomics.dir/aligner.cpp.o.d"
  "CMakeFiles/lidc_genomics.dir/datasets.cpp.o"
  "CMakeFiles/lidc_genomics.dir/datasets.cpp.o.d"
  "CMakeFiles/lidc_genomics.dir/fasta.cpp.o"
  "CMakeFiles/lidc_genomics.dir/fasta.cpp.o.d"
  "CMakeFiles/lidc_genomics.dir/kmer_index.cpp.o"
  "CMakeFiles/lidc_genomics.dir/kmer_index.cpp.o.d"
  "CMakeFiles/lidc_genomics.dir/magic_blast_app.cpp.o"
  "CMakeFiles/lidc_genomics.dir/magic_blast_app.cpp.o.d"
  "CMakeFiles/lidc_genomics.dir/sequence.cpp.o"
  "CMakeFiles/lidc_genomics.dir/sequence.cpp.o.d"
  "liblidc_genomics.a"
  "liblidc_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
