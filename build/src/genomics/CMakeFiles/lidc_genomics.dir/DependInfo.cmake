
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/aligner.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/aligner.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/aligner.cpp.o.d"
  "/root/repo/src/genomics/datasets.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/datasets.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/datasets.cpp.o.d"
  "/root/repo/src/genomics/fasta.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/fasta.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/fasta.cpp.o.d"
  "/root/repo/src/genomics/kmer_index.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/kmer_index.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/kmer_index.cpp.o.d"
  "/root/repo/src/genomics/magic_blast_app.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/magic_blast_app.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/magic_blast_app.cpp.o.d"
  "/root/repo/src/genomics/sequence.cpp" "src/genomics/CMakeFiles/lidc_genomics.dir/sequence.cpp.o" "gcc" "src/genomics/CMakeFiles/lidc_genomics.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
