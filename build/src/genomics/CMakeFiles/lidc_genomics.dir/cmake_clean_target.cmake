file(REMOVE_RECURSE
  "liblidc_genomics.a"
)
