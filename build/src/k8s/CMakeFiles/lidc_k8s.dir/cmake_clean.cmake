file(REMOVE_RECURSE
  "CMakeFiles/lidc_k8s.dir/cluster.cpp.o"
  "CMakeFiles/lidc_k8s.dir/cluster.cpp.o.d"
  "CMakeFiles/lidc_k8s.dir/deployment.cpp.o"
  "CMakeFiles/lidc_k8s.dir/deployment.cpp.o.d"
  "CMakeFiles/lidc_k8s.dir/job.cpp.o"
  "CMakeFiles/lidc_k8s.dir/job.cpp.o.d"
  "CMakeFiles/lidc_k8s.dir/pod.cpp.o"
  "CMakeFiles/lidc_k8s.dir/pod.cpp.o.d"
  "CMakeFiles/lidc_k8s.dir/pvc.cpp.o"
  "CMakeFiles/lidc_k8s.dir/pvc.cpp.o.d"
  "CMakeFiles/lidc_k8s.dir/scheduler.cpp.o"
  "CMakeFiles/lidc_k8s.dir/scheduler.cpp.o.d"
  "liblidc_k8s.a"
  "liblidc_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
