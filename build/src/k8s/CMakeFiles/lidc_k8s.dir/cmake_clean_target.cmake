file(REMOVE_RECURSE
  "liblidc_k8s.a"
)
