
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/cluster.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/cluster.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/cluster.cpp.o.d"
  "/root/repo/src/k8s/deployment.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/deployment.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/deployment.cpp.o.d"
  "/root/repo/src/k8s/job.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/job.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/job.cpp.o.d"
  "/root/repo/src/k8s/pod.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/pod.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/pod.cpp.o.d"
  "/root/repo/src/k8s/pvc.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/pvc.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/pvc.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/k8s/CMakeFiles/lidc_k8s.dir/scheduler.cpp.o" "gcc" "src/k8s/CMakeFiles/lidc_k8s.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
