# Empty dependencies file for lidc_k8s.
# This may be replaced when dependencies are built.
