file(REMOVE_RECURSE
  "CMakeFiles/lidc_sim.dir/simulator.cpp.o"
  "CMakeFiles/lidc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/lidc_sim.dir/time.cpp.o"
  "CMakeFiles/lidc_sim.dir/time.cpp.o.d"
  "liblidc_sim.a"
  "liblidc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
