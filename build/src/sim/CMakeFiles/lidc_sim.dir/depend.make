# Empty dependencies file for lidc_sim.
# This may be replaced when dependencies are built.
