file(REMOVE_RECURSE
  "liblidc_sim.a"
)
