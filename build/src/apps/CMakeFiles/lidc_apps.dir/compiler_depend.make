# Empty compiler generated dependencies file for lidc_apps.
# This may be replaced when dependencies are built.
