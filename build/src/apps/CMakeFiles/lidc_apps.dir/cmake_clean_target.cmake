file(REMOVE_RECURSE
  "liblidc_apps.a"
)
