file(REMOVE_RECURSE
  "CMakeFiles/lidc_apps.dir/compress_app.cpp.o"
  "CMakeFiles/lidc_apps.dir/compress_app.cpp.o.d"
  "liblidc_apps.a"
  "liblidc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
