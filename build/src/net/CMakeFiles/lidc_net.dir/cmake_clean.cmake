file(REMOVE_RECURSE
  "CMakeFiles/lidc_net.dir/link.cpp.o"
  "CMakeFiles/lidc_net.dir/link.cpp.o.d"
  "CMakeFiles/lidc_net.dir/topology.cpp.o"
  "CMakeFiles/lidc_net.dir/topology.cpp.o.d"
  "liblidc_net.a"
  "liblidc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
