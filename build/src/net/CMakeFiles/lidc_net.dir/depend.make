# Empty dependencies file for lidc_net.
# This may be replaced when dependencies are built.
