file(REMOVE_RECURSE
  "liblidc_net.a"
)
