file(REMOVE_RECURSE
  "CMakeFiles/multi_cluster_overlay.dir/multi_cluster_overlay.cpp.o"
  "CMakeFiles/multi_cluster_overlay.dir/multi_cluster_overlay.cpp.o.d"
  "multi_cluster_overlay"
  "multi_cluster_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cluster_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
