# Empty compiler generated dependencies file for multi_cluster_overlay.
# This may be replaced when dependencies are built.
