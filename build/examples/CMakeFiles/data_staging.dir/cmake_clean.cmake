file(REMOVE_RECURSE
  "CMakeFiles/data_staging.dir/data_staging.cpp.o"
  "CMakeFiles/data_staging.dir/data_staging.cpp.o.d"
  "data_staging"
  "data_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
