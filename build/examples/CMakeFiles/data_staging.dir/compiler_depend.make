# Empty compiler generated dependencies file for data_staging.
# This may be replaced when dependencies are built.
