file(REMOVE_RECURSE
  "CMakeFiles/genomics_workflow.dir/genomics_workflow.cpp.o"
  "CMakeFiles/genomics_workflow.dir/genomics_workflow.cpp.o.d"
  "genomics_workflow"
  "genomics_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
