# Empty dependencies file for genomics_workflow.
# This may be replaced when dependencies are built.
