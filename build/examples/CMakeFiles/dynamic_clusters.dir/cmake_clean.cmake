file(REMOVE_RECURSE
  "CMakeFiles/dynamic_clusters.dir/dynamic_clusters.cpp.o"
  "CMakeFiles/dynamic_clusters.dir/dynamic_clusters.cpp.o.d"
  "dynamic_clusters"
  "dynamic_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
