# Empty compiler generated dependencies file for dynamic_clusters.
# This may be replaced when dependencies are built.
