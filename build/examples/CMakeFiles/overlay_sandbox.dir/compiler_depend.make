# Empty compiler generated dependencies file for overlay_sandbox.
# This may be replaced when dependencies are built.
