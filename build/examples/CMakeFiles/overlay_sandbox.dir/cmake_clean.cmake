file(REMOVE_RECURSE
  "CMakeFiles/overlay_sandbox.dir/overlay_sandbox.cpp.o"
  "CMakeFiles/overlay_sandbox.dir/overlay_sandbox.cpp.o.d"
  "overlay_sandbox"
  "overlay_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
