
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/overlay_sandbox.cpp" "examples/CMakeFiles/overlay_sandbox.dir/overlay_sandbox.cpp.o" "gcc" "examples/CMakeFiles/overlay_sandbox.dir/overlay_sandbox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lidc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lidc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/lidc_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lidc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/datalake/CMakeFiles/lidc_datalake.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/lidc_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lidc_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lidc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lidc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
